//! Sparse LU factorization of the simplex basis, plus the product-form
//! eta file that absorbs pivots between refactorizations.
//!
//! ## Representation
//!
//! The basis matrix `B` is `m × m`; its column `i` is the (sparse)
//! constraint column of the variable basic in row `i`. [`LuFactors`] holds
//! `B = P · L · U · Q` implicitly:
//!
//! * columns are eliminated in increasing-nonzero-count order (`Q`, a
//!   cheap fill-reducing heuristic — slack singletons go first and never
//!   create fill);
//! * rows are chosen by partial pivoting at each step (`P`);
//! * `L` is unit lower triangular, stored as one sparse column per
//!   elimination step over *original* row indices;
//! * `U` is upper triangular, stored as one sparse column per step over
//!   *step* indices plus a dense diagonal.
//!
//! The numeric phase is Gilbert–Peierls left-looking elimination: the
//! nonzero pattern of each column's triangular solve is discovered by a
//! depth-first search over the column DAG of `L`, so factorization work is
//! proportional to the *fill-in flops*, not to `m²` — the property the
//! micro-benchmarks (`lu_factorize_*`) and `crates/lp/tests/sparse_scaling.rs`
//! lock in.
//!
//! Between refactorizations each basis exchange appends an eta to the
//! [`EtaFile`]: `B_new = B_old · E` where `E` is the identity with column
//! `r` replaced by `w = B_old⁻¹ a_q`. FTRAN applies `E⁻¹` after the LU
//! solves, BTRAN applies them transposed in reverse order before the LU
//! solves. The file is reset on every refactorization, so its length — and
//! with it the per-iteration cost drift — is bounded by
//! [`SimplexOptions::refactor_every`](crate::SimplexOptions::refactor_every).
//!
//! Both [`LuFactors`] and [`EtaFile`] keep their per-column / per-eta data
//! in *flat* arrays (one contiguous entry pool plus end offsets) rather
//! than nested `Vec`s: refactorization via [`LuFactors::factorize_into`]
//! and [`EtaFile::clear`] recycle the pools, so the simplex pivot loop is
//! allocation-free in steady state and FTRAN/BTRAN walk memory linearly.

/// A sparse matrix column: `(row, coefficient)` pairs, rows strictly
/// increasing.
pub type SparseCol = Vec<(usize, f64)>;

/// Sparse LU factors of a basis matrix (see module docs).
///
/// `L` and `U` columns live in flat entry pools sliced by cumulative end
/// offsets, so [`factorize_into`](LuFactors::factorize_into) can rebuild
/// the factors without allocating once the pools have warmed up.
#[derive(Clone, Debug, Default)]
pub struct LuFactors {
    m: usize,
    /// `colorder[k]` = basis position eliminated at step `k`.
    colorder: Vec<usize>,
    /// End offset into `lentries` of each step's L column.
    lends: Vec<usize>,
    /// L columns, flattened: `(original_row, multiplier)` for rows not yet
    /// pivotal at that step. Unit diagonal is implicit.
    lentries: Vec<(usize, f64)>,
    /// End offset into `uentries` of each step's U column.
    uends: Vec<usize>,
    /// U columns, flattened: `(earlier_step, value)` entries above the
    /// diagonal.
    uentries: Vec<(usize, f64)>,
    /// U diagonal (the pivots), one per step.
    udiag: Vec<f64>,
    /// Pivot row (original index) of each step.
    prow: Vec<usize>,
}

/// Scratch buffers for [`LuFactors::ftran`] / [`LuFactors::btran`] /
/// [`LuFactors::factorize`], reused across calls so the hot loop never
/// allocates.
#[derive(Clone, Debug, Default)]
pub struct LuWorkspace {
    /// Dense accumulator indexed by original row.
    row: Vec<f64>,
    /// Dense accumulator indexed by elimination step.
    step: Vec<f64>,
    /// DFS stack: `(step, next_child_index)`.
    stack: Vec<(usize, usize)>,
    /// Visit markers (generation counter avoids clearing).
    mark: Vec<u64>,
    generation: u64,
    /// Topological order of steps touched by the current column.
    topo: Vec<usize>,
    /// original row -> step at which it became pivotal (factorize only).
    row_step: Vec<usize>,
}

impl LuWorkspace {
    /// Workspace sized for `m`-row factors (grows on demand).
    pub fn new(m: usize) -> Self {
        let mut w = LuWorkspace::default();
        w.resize(m);
        w
    }

    fn resize(&mut self, m: usize) {
        if self.row.len() < m {
            self.row.resize(m, 0.0);
            self.step.resize(m, 0.0);
            self.mark.resize(m, 0);
        }
    }
}

impl LuFactors {
    /// Factorize the basis whose column at position `i` is `col(i)`.
    /// Returns `None` when the basis is numerically singular (no pivot of
    /// magnitude `>= pivot_tol` in some column).
    pub fn factorize<'a>(
        m: usize,
        col: impl Fn(usize) -> &'a [(usize, f64)],
        pivot_tol: f64,
        ws: &mut LuWorkspace,
    ) -> Option<LuFactors> {
        let mut f = LuFactors::default();
        if f.factorize_into(m, col, pivot_tol, ws) {
            Some(f)
        } else {
            None
        }
    }

    /// [`factorize`](LuFactors::factorize) into `self`, recycling the entry
    /// pools from the previous factorization so a refactorization inside
    /// the pivot loop does not allocate. Returns `false` when the basis is
    /// numerically singular, leaving `self` cleared (callers keep the old
    /// factors elsewhere — see `refactorize` in the simplex).
    pub fn factorize_into<'a>(
        &mut self,
        m: usize,
        col: impl Fn(usize) -> &'a [(usize, f64)],
        pivot_tol: f64,
        ws: &mut LuWorkspace,
    ) -> bool {
        ws.resize(m);
        ws.row_step.clear();
        ws.row_step.resize(m, usize::MAX);
        self.m = m;
        // Fill-reducing column order: fewest nonzeros first (slack and
        // artificial singletons eliminate for free). The `(len, i)` key
        // makes the unstable sort reproduce stable-sort tie order without
        // the merge-sort scratch allocation.
        self.colorder.clear();
        self.colorder.extend(0..m);
        self.colorder.sort_unstable_by_key(|&i| (col(i).len(), i));

        self.lends.clear();
        self.lentries.clear();
        self.uends.clear();
        self.uentries.clear();
        self.udiag.clear();
        self.udiag.resize(m, 0.0);
        self.prow.clear();
        self.prow.resize(m, usize::MAX);

        for k in 0..m {
            let a = col(self.colorder[k]);
            // --- symbolic: reachable steps, topological order ---
            ws.generation += 1;
            let generation = ws.generation;
            ws.topo.clear();
            for &(r, _) in a {
                let s0 = ws.row_step[r];
                if s0 == usize::MAX || ws.mark[s0] == generation {
                    continue;
                }
                // DFS from s0 over the L column DAG
                ws.mark[s0] = generation;
                ws.stack.push((s0, 0));
                while let Some(&mut (s, ref mut child)) = ws.stack.last_mut() {
                    let lcol = self.lcol(s);
                    let mut descended = false;
                    while *child < lcol.len() {
                        let rr = lcol[*child].0;
                        *child += 1;
                        let ss = ws.row_step[rr];
                        if ss != usize::MAX && ws.mark[ss] != generation {
                            ws.mark[ss] = generation;
                            ws.stack.push((ss, 0));
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        ws.stack.pop();
                        ws.topo.push(s);
                    }
                }
            }
            // ws.topo is in reverse topological order: dependencies last.

            // --- numeric: sparse triangular solve L x = a ---
            for &(r, v) in a {
                ws.row[r] = v;
            }
            for idx in (0..ws.topo.len()).rev() {
                let s = ws.topo[idx];
                let xp = ws.row[self.prow[s]];
                if xp != 0.0 {
                    for &(r, lv) in self.lcol(s) {
                        ws.row[r] -= xp * lv;
                    }
                }
            }

            // --- pivot: largest remaining entry in a non-pivotal row ---
            let mut piv_row = usize::MAX;
            let mut piv_val = 0.0f64;
            // candidate rows: original pattern + fill (rows of visited L cols)
            // collect via topo + original pattern
            let consider = |r: usize, row: &[f64], piv_row: &mut usize, piv_val: &mut f64| {
                if ws.row_step[r] == usize::MAX {
                    let v = row[r].abs();
                    if v > *piv_val {
                        *piv_val = v;
                        *piv_row = r;
                    }
                }
            };
            for &(r, _) in a {
                consider(r, &ws.row, &mut piv_row, &mut piv_val);
            }
            for &s in &ws.topo {
                for &(r, _) in self.lcol(s) {
                    consider(r, &ws.row, &mut piv_row, &mut piv_val);
                }
            }
            if piv_val < pivot_tol {
                // clean the work vector before bailing
                for &(r, _) in a {
                    ws.row[r] = 0.0;
                }
                for &s in &ws.topo {
                    for idx in self.lrange(s) {
                        ws.row[self.lentries[idx].0] = 0.0;
                    }
                }
                return false;
            }
            let pivot = ws.row[piv_row];

            // --- gather U column (pivotal rows) and L column (the rest),
            // appended to the flat pools (this step's slices stay
            // contiguous: only completed steps are read below) ---
            for &(r, _) in a {
                harvest(self, ws, r, piv_row, pivot);
            }
            for ti in 0..ws.topo.len() {
                let s = ws.topo[ti];
                for idx in self.lrange(s) {
                    let r = self.lentries[idx].0;
                    harvest(self, ws, r, piv_row, pivot);
                }
            }
            ws.row[piv_row] = 0.0;

            self.udiag[k] = pivot;
            self.prow[k] = piv_row;
            ws.row_step[piv_row] = k;
            self.lends.push(self.lentries.len());
            self.uends.push(self.uentries.len());
        }

        true
    }

    /// Byte range of step `k`'s L column in the flat pool.
    #[inline]
    fn lrange(&self, k: usize) -> std::ops::Range<usize> {
        let start = if k == 0 { 0 } else { self.lends[k - 1] };
        start..self.lends[k]
    }

    /// Step `k`'s L column: `(original_row, multiplier)` entries.
    #[inline]
    fn lcol(&self, k: usize) -> &[(usize, f64)] {
        &self.lentries[self.lrange(k)]
    }

    /// Step `k`'s U column: `(earlier_step, value)` entries.
    #[inline]
    fn ucol(&self, k: usize) -> &[(usize, f64)] {
        let start = if k == 0 { 0 } else { self.uends[k - 1] };
        &self.uentries[start..self.uends[k]]
    }

    /// Number of rows (= columns) of the factored basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Stored nonzeros across `L` and `U` (implicit unit diagonal of `L`
    /// excluded, diagonal of `U` included).
    pub fn nnz(&self) -> usize {
        self.lentries.len() + self.uentries.len() + self.m
    }

    /// FTRAN: solve `B x = b`.
    ///
    /// `rhs` is indexed by original row; `out` receives the solution
    /// indexed by **basis position** (so `out[i]` pairs with the variable
    /// basic in row `i`). Both must have length at least `dim()`; only the
    /// first `dim()` entries are read and written.
    pub fn ftran(&self, rhs: &[f64], out: &mut [f64], ws: &mut LuWorkspace) {
        ws.resize(self.m);
        ws.row[..self.m].copy_from_slice(&rhs[..self.m]);
        // L solve (forward, original-row space)
        for k in 0..self.m {
            let xp = ws.row[self.prow[k]];
            if xp != 0.0 {
                for &(r, lv) in self.lcol(k) {
                    ws.row[r] -= xp * lv;
                }
            }
        }
        // gather into step space
        for k in 0..self.m {
            ws.step[k] = ws.row[self.prow[k]];
            ws.row[self.prow[k]] = 0.0;
        }
        // U solve (backward, step space)
        for k in (0..self.m).rev() {
            let yk = ws.step[k] / self.udiag[k];
            ws.step[k] = yk;
            if yk != 0.0 {
                for &(j, uv) in self.ucol(k) {
                    ws.step[j] -= uv * yk;
                }
            }
        }
        // scatter to basis positions
        for k in 0..self.m {
            out[self.colorder[k]] = ws.step[k];
        }
    }

    /// BTRAN: solve `yᵀ B = cᵀ` (equivalently `Bᵀ y = c`).
    ///
    /// `c` is indexed by basis position (e.g. the basic cost vector);
    /// `out` receives the duals indexed by **original row**.
    pub fn btran(&self, c: &[f64], out: &mut [f64], ws: &mut LuWorkspace) {
        ws.resize(self.m);
        // Uᵀ solve (forward, step space)
        for k in 0..self.m {
            let mut v = c[self.colorder[k]];
            for &(j, uv) in self.ucol(k) {
                v -= uv * ws.step[j];
            }
            ws.step[k] = v / self.udiag[k];
        }
        // Lᵀ solve (backward): rows in L column `k` are pivotal at steps
        // > k, so their dual values are already final at step k.
        for k in (0..self.m).rev() {
            let mut v = ws.step[k];
            for &(r, lv) in self.lcol(k) {
                v -= lv * out[r];
            }
            out[self.prow[k]] = v;
        }
    }
}

/// Move `ws.row[r]` into the current step's L or U column of `f` (zeroing
/// the work entry): not-yet-pivotal rows become L multipliers, pivotal rows
/// become U entries at their step index.
#[inline]
fn harvest(f: &mut LuFactors, ws: &mut LuWorkspace, r: usize, piv_row: usize, pivot: f64) {
    let v = ws.row[r];
    ws.row[r] = 0.0;
    if v == 0.0 || r == piv_row {
        return;
    }
    match ws.row_step[r] {
        usize::MAX => f.lentries.push((r, v / pivot)),
        s => f.uentries.push((s, v)),
    }
}

/// The eta file: product-form updates appended since the last
/// refactorization, applied after (FTRAN) or before (BTRAN) the LU solves.
///
/// Storage is flat — one `(pivot_position, pivot_value, end_offset)` head
/// per eta over a shared entry pool — so [`push`](EtaFile::push) in the
/// pivot loop is allocation-free once the pool has warmed up and the apply
/// loops walk memory linearly instead of chasing one heap `Vec` per eta.
#[derive(Clone, Debug, Default)]
pub struct EtaFile {
    /// Per eta: basis position `r` of the exchange, pivot element `w[r]`,
    /// and the end offset of its nonzeros in `entries` (start = previous
    /// eta's end).
    heads: Vec<(usize, f64, usize)>,
    /// `(position, w[position])` for every eta's off-pivot nonzeros.
    entries: Vec<(usize, f64)>,
    nnz: usize,
}

/// Entries of `w` smaller than this are dropped when an eta is recorded;
/// they are far below every pivot/feasibility tolerance in use and carry
/// only rounding noise.
pub const ETA_DROP_TOL: f64 = 1e-13;

impl EtaFile {
    /// An empty file.
    pub fn new() -> Self {
        EtaFile::default()
    }

    /// Forget all updates (called on refactorization). Keeps the pool
    /// capacity, so steady-state pivoting never reallocates.
    pub fn clear(&mut self) {
        self.heads.clear();
        self.entries.clear();
        self.nnz = 0;
    }

    /// Number of updates currently in the file.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// `true` when no updates are pending.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Total stored nonzeros (pivots included).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Record the exchange at position `r` with FTRAN image `w`
    /// (dense, basis-position indexed). Returns the nonzeros stored.
    pub fn push(&mut self, r: usize, w: &[f64]) -> usize {
        let start = self.entries.len();
        for (i, &v) in w.iter().enumerate() {
            if i != r && v.abs() > ETA_DROP_TOL {
                self.entries.push((i, v));
            }
        }
        let stored = self.entries.len() - start + 1;
        self.nnz += stored;
        self.heads.push((r, w[r], self.entries.len()));
        stored
    }

    /// Apply the file to an FTRAN result (in basis-position space):
    /// `x ← Eₖ⁻¹ … E₁⁻¹ x` in recording order.
    pub fn apply_ftran(&self, x: &mut [f64]) {
        let mut start = 0;
        for &(r, wr, end) in &self.heads {
            let xr = x[r];
            if xr != 0.0 {
                let t = xr / wr;
                x[r] = t;
                for &(i, wi) in &self.entries[start..end] {
                    x[i] -= wi * t;
                }
            }
            start = end;
        }
    }

    /// Apply the file to a BTRAN input (basis-position space), newest
    /// first: `cᵀ ← cᵀ Eₖ⁻¹` for k descending.
    pub fn apply_btran(&self, c: &mut [f64]) {
        for (k, &(r, wr, end)) in self.heads.iter().enumerate().rev() {
            let start = if k == 0 { 0 } else { self.heads[k - 1].2 };
            let mut v = c[r];
            for &(i, wi) in &self.entries[start..end] {
                v -= c[i] * wi;
            }
            c[r] = v / wr;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Dense reference multiply `B x` for verification.
    fn mat_vec(m: usize, cols: &[SparseCol], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (i, col) in cols.iter().enumerate() {
            for &(r, a) in col {
                out[r] += a * x[i];
            }
        }
        out
    }

    fn check_roundtrip(m: usize, cols: &[SparseCol]) {
        let mut ws = LuWorkspace::new(m);
        let lu = LuFactors::factorize(m, |i| &cols[i], 1e-12, &mut ws).expect("nonsingular");
        // FTRAN: B x = b  →  B x must reproduce b
        let b: Vec<f64> = (0..m).map(|i| (i as f64) - 1.5).collect();
        let mut x = vec![0.0; m];
        lu.ftran(&b, &mut x, &mut ws);
        let bx = mat_vec(m, cols, &x);
        for i in 0..m {
            assert!((bx[i] - b[i]).abs() < 1e-9, "ftran row {i}: {} vs {}", bx[i], b[i]);
        }
        // BTRAN: yᵀ B = cᵀ  →  check column-wise
        let c: Vec<f64> = (0..m).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let mut y = vec![0.0; m];
        lu.btran(&c, &mut y, &mut ws);
        for (i, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, a)| y[r] * a).sum();
            assert!((dot - c[i]).abs() < 1e-9, "btran col {i}: {dot} vs {}", c[i]);
        }
    }

    #[test]
    fn identity_roundtrip() {
        let cols: Vec<SparseCol> = (0..5).map(|i| vec![(i, 1.0)]).collect();
        check_roundtrip(5, &cols);
    }

    #[test]
    fn permuted_scaled_diagonal() {
        let cols: Vec<SparseCol> = vec![
            vec![(3, 2.0)],
            vec![(0, -1.0)],
            vec![(2, 0.5)],
            vec![(1, 4.0)],
        ];
        check_roundtrip(4, &cols);
    }

    #[test]
    fn dense_ish_matrix_roundtrip() {
        // deterministic pseudo-random nonsingular matrix
        let m = 12;
        let mut cols: Vec<SparseCol> = Vec::new();
        let mut seed = 9_u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..m {
            let mut col: SparseCol = Vec::new();
            for r in 0..m {
                let v = rng();
                if v.abs() > 0.55 || r == i {
                    // diagonal kept to guarantee nonsingularity
                    col.push((r, if r == i { v + 3.0 } else { v }));
                }
            }
            cols.push(col);
        }
        check_roundtrip(m, &cols);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // two identical columns
        let cols: Vec<SparseCol> = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(0, 1.0), (1, 1.0)],
            vec![(2, 1.0)],
        ];
        let mut ws = LuWorkspace::new(3);
        assert!(LuFactors::factorize(3, |i| &cols[i], 1e-12, &mut ws).is_none());
        // the workspace must be clean for the next factorization
        let good: Vec<SparseCol> = (0..3).map(|i| vec![(i, 1.0)]).collect();
        assert!(LuFactors::factorize(3, |i| &good[i], 1e-12, &mut ws).is_some());
    }

    #[test]
    fn eta_file_tracks_basis_exchanges() {
        // B0 = I (3x3); exchange position 1 with a column whose ftran
        // image is w = [0.5, 2.0, -1.0].
        let cols: Vec<SparseCol> = (0..3).map(|i| vec![(i, 1.0)]).collect();
        let mut ws = LuWorkspace::new(3);
        let lu = LuFactors::factorize(3, |i| &cols[i], 1e-12, &mut ws).unwrap();
        let mut etas = EtaFile::new();
        let w = [0.5, 2.0, -1.0];
        etas.push(1, &w);
        assert_eq!(etas.len(), 1);
        assert_eq!(etas.nnz(), 3);

        // new basis: columns [e0, w, e2] (since B0 = I). Solve B x = b.
        let b = [1.0, 4.0, 2.0];
        let mut x = vec![0.0; 3];
        lu.ftran(&b, &mut x, &mut ws);
        etas.apply_ftran(&mut x);
        // verify: e0*x0 + w*x1 + e2*x2 = b
        assert!((x[0] + 0.5 * x[1] - 1.0).abs() < 1e-12);
        assert!((2.0 * x[1] - 4.0).abs() < 1e-12);
        assert!((x[2] - 1.0 * x[1] - 2.0).abs() < 1e-12);

        // btran: yT Bnew = cT
        let c = [3.0, 1.0, -2.0];
        let mut ct = c.to_vec();
        etas.apply_btran(&mut ct);
        let mut y = vec![0.0; 3];
        lu.btran(&ct, &mut y, &mut ws);
        assert!((y[0] - 3.0).abs() < 1e-12, "col 0: {}", y[0]);
        let dot_w = 0.5 * y[0] + 2.0 * y[1] - 1.0 * y[2];
        assert!((dot_w - 1.0).abs() < 1e-12, "col w: {dot_w}");
        assert!((y[2] - (-2.0)).abs() < 1e-12, "col 2: {}", y[2]);

        etas.clear();
        assert!(etas.is_empty());
        assert_eq!(etas.nnz(), 0);
    }
}
