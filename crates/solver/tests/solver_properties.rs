//! Property tests across the solver stack: on random small problems, the
//! exact formulation's optimum bounds every realized schedule, extraction
//! is always constraint-feasible, and the pool algorithms never exceed the
//! model bound.

use proptest::prelude::*;
use rasa_lp::Deadline;
use rasa_model::{gained_affinity, validate, FeatureMask, Problem, ProblemBuilder, ResourceVec};
use rasa_solver::{ColumnGeneration, FormulationKind, MipBased, RasaFormulation, Scheduler};

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (
        2usize..6,                                // services
        proptest::collection::vec(1u32..5, 2..6), // replicas
        2usize..5,                                // machines
        1.0f64..4.0,                              // per-container cpu
        6.0f64..16.0,                             // machine cpu
        proptest::collection::vec((0usize..6, 0usize..6, 0.5f64..10.0), 1..6),
    )
        .prop_map(|(n, replicas, m, cpu, cap, raw_edges)| {
            let mut b = ProblemBuilder::new();
            for i in 0..n {
                b.add_service(
                    format!("s{i}"),
                    replicas[i % replicas.len()],
                    ResourceVec::cpu_mem(cpu, cpu),
                );
            }
            b.add_machines(m, ResourceVec::cpu_mem(cap, cap), FeatureMask::EMPTY);
            let mut seen = std::collections::HashSet::new();
            for (a, bidx, w) in raw_edges {
                let (a, bidx) = (a % n, bidx % n);
                if a != bidx && seen.insert((a.min(bidx), a.max(bidx))) {
                    b.add_affinity(
                        rasa_model::ServiceId(a.min(bidx) as u32),
                        rasa_model::ServiceId(a.max(bidx) as u32),
                        w,
                    );
                }
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn extraction_is_always_feasible(problem in problem_strategy()) {
        for kind in [FormulationKind::PerMachine, FormulationKind::MachineGroup] {
            let f = RasaFormulation::build(&problem, kind, false);
            let sol = f.mip().solve();
            if sol.has_incumbent() {
                let placement = f.extract_placement(&problem, &sol.x);
                let violations = validate(&problem, &placement, false);
                prop_assert!(violations.is_empty(), "{kind:?}: {violations:?}");
                // no service over its SLA
                for svc in &problem.services {
                    prop_assert!(placement.placed_count(svc.id) <= svc.replicas);
                }
            }
        }
    }

    #[test]
    fn exact_model_bounds_every_realized_schedule(problem in problem_strategy()) {
        let exact = RasaFormulation::build(&problem, FormulationKind::PerMachine, false);
        let bound = exact.mip().solve();
        prop_assume!(bound.has_incumbent());
        // exact optimum (within gap) dominates whatever any algorithm realizes
        let mip = MipBased::new().schedule(&problem, Deadline::none());
        let cg = ColumnGeneration::new().schedule(&problem, Deadline::none());
        let ceiling = bound.best_bound + 1e-6;
        prop_assert!(mip.gained_affinity <= ceiling,
            "MIP realized {} above exact bound {}", mip.gained_affinity, bound.best_bound);
        prop_assert!(cg.gained_affinity <= ceiling,
            "CG realized {} above exact bound {}", cg.gained_affinity, bound.best_bound);
    }

    #[test]
    fn aggregated_bound_dominates_exact_bound(problem in problem_strategy()) {
        // aggregation relaxes per-machine structure, so its optimum is an
        // upper bound on the exact model's
        let exact = RasaFormulation::build(&problem, FormulationKind::PerMachine, false);
        let agg = RasaFormulation::build(&problem, FormulationKind::MachineGroup, false);
        let se = exact.mip().solve();
        let sa = agg.mip().solve();
        prop_assume!(se.has_incumbent() && sa.has_incumbent());
        prop_assert!(sa.best_bound >= se.objective - 1e-6,
            "aggregated bound {} below exact optimum {}", sa.best_bound, se.objective);
    }

    #[test]
    fn reported_objective_matches_model_for_exact_solutions(problem in problem_strategy()) {
        let f = RasaFormulation::build(&problem, FormulationKind::PerMachine, false);
        let sol = f.mip().solve();
        prop_assume!(sol.status == rasa_mip::MipStatus::Optimal);
        let placement = f.extract_placement(&problem, &sol.x);
        // per-machine model: extraction realizes the model objective exactly
        let realized = gained_affinity(&problem, &placement);
        prop_assert!((realized - sol.objective).abs() < 1e-6,
            "realized {} vs model {}", realized, sol.objective);
    }
}
