//! The common interface every scheduling algorithm in this repository
//! implements — RASA's pool members and all baselines.

use rasa_lp::Deadline;
use rasa_model::{gained_affinity, normalized_gained_affinity, Placement, Problem};
use std::time::Duration;

/// Result of running a scheduling algorithm on a problem.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// The computed container-to-machine mapping. May be partial (SLA not
    /// fully met) when the deadline fired or capacity ran out; callers run
    /// [`complete_placement`](crate::complete_placement) or fall back to the
    /// cluster's default scheduler, as the paper does.
    pub placement: Placement,
    /// Absolute gained affinity of `placement` (Definition 1).
    pub gained_affinity: f64,
    /// Gained affinity normalized by the problem's total affinity.
    pub normalized_gained_affinity: f64,
    /// Wall-clock the algorithm consumed.
    pub elapsed: Duration,
    /// `true` if the algorithm ran to completion; `false` if it returned a
    /// best-so-far under the deadline (or, for all-or-nothing baselines,
    /// failed entirely — then `placement` is empty).
    pub completed: bool,
}

impl ScheduleOutcome {
    /// Evaluate a placement against `problem` and wrap it.
    pub fn evaluate(
        problem: &Problem,
        placement: Placement,
        elapsed: Duration,
        completed: bool,
    ) -> Self {
        let ga = gained_affinity(problem, &placement);
        let nga = normalized_gained_affinity(problem, &placement);
        ScheduleOutcome {
            placement,
            gained_affinity: ga,
            normalized_gained_affinity: nga,
            elapsed,
            completed,
        }
    }
}

/// A scheduling algorithm: computes a placement for a problem under a
/// deadline. Implemented by the MIP-based and column-generation algorithms
/// here and by POP / K8s+ / APPLSCI19 / ORIGINAL in `rasa-baselines`.
pub trait Scheduler {
    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Compute a placement. Implementations must respect `deadline`
    /// best-effort and never return an infeasible placement (partial is
    /// allowed; infeasible is not).
    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{FeatureMask, MachineId, ProblemBuilder, ResourceVec, ServiceId};

    #[test]
    fn evaluate_computes_both_objectives() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 8.0);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        x.add(ServiceId(0), MachineId(0), 1);
        x.add(ServiceId(1), MachineId(0), 1);
        let out = ScheduleOutcome::evaluate(&p, x, Duration::from_millis(5), true);
        assert_eq!(out.gained_affinity, 8.0);
        assert_eq!(out.normalized_gained_affinity, 1.0);
        assert!(out.completed);
    }
}
