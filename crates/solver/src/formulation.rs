//! The RASA MIP formulation (Expressions (2)–(9) of the paper).
//!
//! Two flavors share one code path:
//!
//! * [`FormulationKind::PerMachine`] — the exact formulation: one
//!   `x_{s,m}` per service × machine and one `a_{s,s',m}` per edge ×
//!   machine. Used for small instances and as the ground truth the
//!   aggregated model is validated against in tests.
//! * [`FormulationKind::MachineGroup`] — machines with identical capacity
//!   and features are aggregated into groups (the paper's index `g`,
//!   Table I), shrinking the model by the group size. For a group of `K`
//!   identical machines an even spread of `x_{s,g}` containers achieves
//!   gained affinity `w · min(x_{s,g}/d_s, x_{s',g}/d_{s'})` — exactly the
//!   group-level linearization — so the aggregation is tight up to integer
//!   rounding during de-aggregation.
//!
//! The builder drops *trivial* variables up front: services without
//! affinity edges cannot contribute to the objective (the paper's
//! non-affinity partition makes the same observation), so by default they
//! are left to the completion pass / default scheduler.

use rasa_mip::{MipModel, VarId};
use rasa_model::{
    MachineGroup, Placement, Problem, RasaError, ResourceVec, ServiceId, NUM_RESOURCES,
};
use std::collections::HashMap;

/// Which formulation to build.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FormulationKind {
    /// Exact: one variable block per machine.
    PerMachine,
    /// Aggregated: one variable block per machine group.
    MachineGroup,
}

/// A built RASA MIP plus the maps needed to recover a [`Placement`].
pub struct RasaFormulation {
    mip: MipModel,
    groups: Vec<MachineGroup>,
    /// `x` variables: `(service, group index) -> VarId`.
    x_vars: HashMap<(ServiceId, usize), VarId>,
    /// Services that received variables, in id order.
    active_services: Vec<ServiceId>,
}

/// Maximum containers of `service` that fit on one machine with capacity
/// `cap`, considering resources and singleton anti-affinity rules.
pub fn per_machine_cap(problem: &Problem, service: ServiceId, cap: &ResourceVec) -> u32 {
    let svc = &problem.services[service.idx()];
    let mut fit = svc.replicas; // never need more than d_s on one machine
    for r in 0..NUM_RESOURCES {
        let dem = svc.demand.0[r];
        if dem > 0.0 {
            let by_res = ((cap.0[r] + 1e-9) / dem).floor();
            fit = fit.min(if by_res < 0.0 { 0 } else { by_res as u32 });
        }
    }
    for rule in &problem.anti_affinity {
        // any rule containing the service caps it: other members contribute
        // ≥ 0 to the rule's per-machine count, so this is a valid clamp
        if rule.services.contains(&service) {
            fit = fit.min(rule.max_per_machine);
        }
    }
    fit
}

impl RasaFormulation {
    /// Build the formulation for `problem`.
    ///
    /// `include_non_affinity` also creates variables for services without
    /// affinity edges (needed when the MIP must produce a *complete*
    /// schedule on its own; the default `false` matches the paper, which
    /// hands trivial services to the default scheduler).
    pub fn build(problem: &Problem, kind: FormulationKind, include_non_affinity: bool) -> Self {
        let groups: Vec<MachineGroup> = match kind {
            FormulationKind::PerMachine => problem
                .machines
                .iter()
                .map(|m| MachineGroup {
                    capacity: m.capacity,
                    features: m.features,
                    members: vec![m.id],
                })
                .collect(),
            FormulationKind::MachineGroup => problem.machine_groups(),
        };

        let has_edge = {
            let mut v = vec![false; problem.num_services()];
            for e in &problem.affinity_edges {
                v[e.a.idx()] = true;
                v[e.b.idx()] = true;
            }
            v
        };
        let active_services: Vec<ServiceId> = problem
            .services
            .iter()
            .filter(|s| include_non_affinity || has_edge[s.id.idx()])
            .map(|s| s.id)
            .collect();

        let mut mip = MipModel::new();
        let mut x_vars: HashMap<(ServiceId, usize), VarId> = HashMap::new();

        // x_{s,g} — integral placement counts (Expression (9)).
        for &s in &active_services {
            let svc = &problem.services[s.idx()];
            for (gi, g) in groups.iter().enumerate() {
                if !svc.required_features.subset_of(g.features) {
                    continue; // schedulable constraint (6) as a missing variable
                }
                let cap1 = per_machine_cap(problem, s, &g.capacity);
                let ub = (u64::from(cap1) * g.members.len() as u64).min(u64::from(svc.replicas));
                if ub == 0 {
                    continue;
                }
                let v = mip.add_int_var(0.0, ub as f64, 0.0);
                x_vars.insert((s, gi), v);
            }
        }

        // SLA coverage (Expression (3), relaxed to <= so partial deployment
        // degrades gracefully instead of making the model infeasible; the
        // completion pass finishes the job — Section IV-B5).
        for &s in &active_services {
            let coeffs: Vec<(VarId, f64)> = groups
                .iter()
                .enumerate()
                .filter_map(|(gi, _)| x_vars.get(&(s, gi)).map(|&v| (v, 1.0)))
                .collect();
            if !coeffs.is_empty() {
                mip.add_row_le(coeffs, f64::from(problem.services[s.idx()].replicas));
            }
        }

        // Resource capacity per group (Expression (4), aggregated over the
        // group's members).
        for (gi, g) in groups.iter().enumerate() {
            for r in 0..NUM_RESOURCES {
                let budget = g.capacity.0[r] * g.members.len() as f64;
                let coeffs: Vec<(VarId, f64)> = active_services
                    .iter()
                    .filter_map(|&s| {
                        let dem = problem.services[s.idx()].demand.0[r];
                        if dem > 0.0 {
                            x_vars.get(&(s, gi)).map(|&v| (v, dem))
                        } else {
                            None
                        }
                    })
                    .collect();
                if !coeffs.is_empty() {
                    mip.add_row_le(coeffs, budget);
                }
            }
        }

        // Anti-affinity (Expression (5), aggregated: h_k per machine → h_k·K
        // per group; per-machine exactness is restored at de-aggregation).
        for rule in &problem.anti_affinity {
            for (gi, g) in groups.iter().enumerate() {
                let coeffs: Vec<(VarId, f64)> = rule
                    .services
                    .iter()
                    .filter_map(|&s| x_vars.get(&(s, gi)).map(|&v| (v, 1.0)))
                    .collect();
                if !coeffs.is_empty() {
                    mip.add_row_le(
                        coeffs,
                        f64::from(rule.max_per_machine) * g.members.len() as f64,
                    );
                }
            }
        }

        // Gained-affinity epigraph variables and linearization rows
        // (objective (2) with Expressions (7)–(8)).
        //
        // The aggregated model additionally needs *per-machine-cap* rows:
        // when a service's single-machine cap `c` (resources or a spread
        // anti-affinity rule) is below `d_s`, each machine hosting the
        // partner contributes at most `w·c/d_s` to the pair's gained
        // affinity, and the partner occupies at most `x_partner` machines —
        // so `a ≤ w·(c_a/d_a)·x_b` (and symmetrically). Without these the
        // group relaxation promises affinity no per-machine placement can
        // realize (e.g. a spread-constrained hub with `h = 1`).
        for e in &problem.affinity_edges {
            let da = f64::from(problem.services[e.a.idx()].replicas);
            let db = f64::from(problem.services[e.b.idx()].replicas);
            if da == 0.0 || db == 0.0 {
                continue;
            }
            for (gi, g) in groups.iter().enumerate() {
                let (Some(&xa), Some(&xb)) = (x_vars.get(&(e.a, gi)), x_vars.get(&(e.b, gi)))
                else {
                    continue;
                };
                let a = mip.add_var(0.0, e.weight, 1.0);
                mip.add_row_le(vec![(a, 1.0), (xa, -e.weight / da)], 0.0);
                mip.add_row_le(vec![(a, 1.0), (xb, -e.weight / db)], 0.0);
                let ca = f64::from(per_machine_cap(problem, e.a, &g.capacity));
                let cb = f64::from(per_machine_cap(problem, e.b, &g.capacity));
                if ca < da {
                    mip.add_row_le(vec![(a, 1.0), (xb, -e.weight * ca / da)], 0.0);
                }
                if cb < db {
                    mip.add_row_le(vec![(a, 1.0), (xa, -e.weight * cb / db)], 0.0);
                }
            }
        }

        RasaFormulation {
            mip,
            groups,
            x_vars,
            active_services,
        }
    }

    /// The underlying MIP (maximization of total gained affinity).
    pub fn mip(&self) -> &MipModel {
        &self.mip
    }

    /// Services that received variables.
    pub fn active_services(&self) -> &[ServiceId] {
        &self.active_services
    }

    /// Machine groups of this formulation (size-1 groups for
    /// [`FormulationKind::PerMachine`]).
    pub fn groups(&self) -> &[MachineGroup] {
        &self.groups
    }

    /// Turn a MIP solution vector into a concrete per-machine [`Placement`].
    ///
    /// Group counts are de-aggregated onto member machines by spreading each
    /// service's containers as evenly as possible (which realizes the
    /// group-level affinity bound), while re-checking *exact* per-machine
    /// resource and anti-affinity limits; containers that do not fit are
    /// dropped (the paper accepts a small number of failed deployments,
    /// Section IV-B5).
    ///
    /// Panics if `x` is shorter than the formulation's variable count or
    /// contains non-finite entries; use [`Self::try_extract_placement`]
    /// for a checked variant.
    pub fn extract_placement(&self, problem: &Problem, x: &[f64]) -> Placement {
        self.try_extract_placement(problem, x)
            .expect("invariant: solution vector matches the formulation it was solved from")
    }

    /// Checked variant of [`extract_placement`](Self::extract_placement):
    /// rejects solution vectors that do not match the formulation (too
    /// short, or non-finite values) with [`RasaError::SolverInvariant`]
    /// instead of panicking. The fault-isolated pipeline uses this so a
    /// malformed solver result degrades one subproblem, not the run.
    pub fn try_extract_placement(
        &self,
        problem: &Problem,
        x: &[f64],
    ) -> Result<Placement, RasaError> {
        for &v in self.x_vars.values() {
            match x.get(v.0) {
                None => {
                    return Err(RasaError::SolverInvariant(format!(
                        "solution vector has {} entries but the formulation references x[{}]",
                        x.len(),
                        v.0
                    )))
                }
                Some(val) if !val.is_finite() => {
                    return Err(RasaError::SolverInvariant(format!(
                        "solution vector entry x[{}] is {val}",
                        v.0
                    )))
                }
                Some(_) => {}
            }
        }
        Ok(self.extract_placement_unchecked(problem, x))
    }

    fn extract_placement_unchecked(&self, problem: &Problem, x: &[f64]) -> Placement {
        // Apportion each service's (possibly fractional — e.g. from an LP
        // relaxation) group shares to integers by floor + largest
        // remainder, preserving the service's total. Independent per-group
        // rounding would drop containers whose mass is thinly spread
        // (six groups at 0.4 each would all round to zero).
        let mut per_group: Vec<Vec<(ServiceId, u32)>> = vec![Vec::new(); self.groups.len()];
        for &s in &self.active_services {
            let mut shares: Vec<(usize, f64)> = Vec::new();
            for gi in 0..self.groups.len() {
                if let Some(&v) = self.x_vars.get(&(s, gi)) {
                    let val = x[v.0].max(0.0);
                    if val > 1e-9 {
                        shares.push((gi, val));
                    }
                }
            }
            if shares.is_empty() {
                continue;
            }
            let d = problem.services[s.idx()].replicas;
            let total: f64 = shares.iter().map(|&(_, v)| v).sum();
            let target = (total.round() as u32).min(d);
            let mut counts: Vec<(usize, u32, f64)> = shares
                .iter()
                .map(|&(gi, v)| (gi, v.floor() as u32, v - v.floor()))
                .collect();
            let mut assigned: u32 = counts.iter().map(|&(_, c, _)| c).sum();
            // trim if floors already exceed the target (cannot happen from a
            // feasible model solution, but guard caller-supplied vectors)
            while assigned > target {
                if let Some(slot) = counts
                    .iter_mut()
                    .filter(|c| c.1 > 0)
                    .min_by(|a, b| a.2.total_cmp(&b.2))
                {
                    slot.1 -= 1;
                    assigned -= 1;
                } else {
                    break;
                }
            }
            counts.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
            let mut i = 0;
            let len = counts.len();
            while assigned < target && len > 0 {
                counts[i % len].1 += 1;
                assigned += 1;
                i += 1;
            }
            for (gi, c, _) in counts {
                if c > 0 {
                    per_group[gi].push((s, c));
                }
            }
        }
        let mut placement = Placement::empty_for(problem);
        for (gi, g) in self.groups.iter().enumerate() {
            let mut counts = std::mem::take(&mut per_group[gi]);
            counts.sort_by_key(|&(s, _)| s);
            deaggregate_group(problem, g, &counts, &mut placement);
        }
        placement
    }
}

/// De-aggregate group-level counts onto concrete machines.
///
/// The group model only fixes *how many* containers of each service land in
/// the group; realizing its `Σ_e w_e · min(x_{s,g}/d_s, x_{s',g}/d_{s'})`
/// promise depends on how containers align across the member machines.
/// Naive even spreading loses a little affinity per edge to integer
/// rounding, which adds up over hundreds of edges — so instead each
/// container is placed greedily on the member machine with the largest
/// *marginal* realized-affinity gain (packing as the tie-break), followed
/// by a bounded hill-climbing pass that relocates single containers while
/// that strictly improves the realized objective. Exact per-machine
/// resource and anti-affinity limits hold throughout; containers that fit
/// nowhere are dropped (the paper accepts a few failed deployments,
/// Section IV-B5).
pub(crate) fn deaggregate_group(
    problem: &Problem,
    g: &MachineGroup,
    counts: &[(ServiceId, u32)],
    placement: &mut Placement,
) {
    let k = g.members.len();
    if k == 0 || counts.is_empty() {
        return;
    }
    let mut usage: Vec<ResourceVec> = g
        .members
        .iter()
        .map(|&m| {
            // account for anything already on these machines (e.g. other
            // subproblem solutions merged earlier)
            let mut u = ResourceVec::ZERO;
            for (si, svc) in problem.services.iter().enumerate() {
                let c = placement.count(ServiceId(si as u32), m);
                if c > 0 {
                    u += svc.demand * f64::from(c);
                }
            }
            u
        })
        .collect();
    // per-rule, per-member anti-affinity counters
    let mut aa_counts: Vec<Vec<u32>> = problem
        .anti_affinity
        .iter()
        .map(|rule| {
            g.members
                .iter()
                .map(|&m| rule.services.iter().map(|&s| placement.count(s, m)).sum())
                .collect()
        })
        .collect();
    let rules_of: Vec<Vec<usize>> = {
        let mut map = vec![Vec::new(); problem.num_services()];
        for (ri, rule) in problem.anti_affinity.iter().enumerate() {
            for &s in &rule.services {
                map[s.idx()].push(ri);
            }
        }
        map
    };
    let adjacency = problem.edge_adjacency();

    // marginal realized-affinity change if x_{s,m} changes by `delta` (±1)
    let marginal =
        |placement: &Placement, s: ServiceId, m: rasa_model::MachineId, delta: i64| -> f64 {
            let ds = f64::from(problem.services[s.idx()].replicas).max(1.0);
            let x_self = f64::from(placement.count(s, m));
            let x_new = (x_self + delta as f64).max(0.0);
            let mut change = 0.0;
            for &eid in &adjacency[s.idx()] {
                let e = &problem.affinity_edges[eid.idx()];
                let other = e.other(s);
                let x_other = f64::from(placement.count(other, m));
                if x_other == 0.0 {
                    continue;
                }
                let d_other = f64::from(problem.services[other.idx()].replicas).max(1.0);
                let before = (x_self / ds).min(x_other / d_other);
                let after = (x_new / ds).min(x_other / d_other);
                change += e.weight * (after - before);
            }
            change
        };

    let feasible =
        |usage: &[ResourceVec], aa_counts: &[Vec<u32>], s: ServiceId, mi: usize| -> bool {
            let svc = &problem.services[s.idx()];
            (usage[mi] + svc.demand).fits_within(&g.capacity, 1e-6)
                && rules_of[s.idx()]
                    .iter()
                    .all(|&ri| aa_counts[ri][mi] < problem.anti_affinity[ri].max_per_machine)
        };

    // --- aligned insertion over the minimal feasible machine subset ---
    //
    // Spread every service evenly over the same `K*` members (all cursors
    // start at member 0), where `K*` is the smallest count that satisfies
    // aggregate resources, per-service single-machine caps, and
    // anti-affinity loads. An even aligned spread realizes the group-level
    // `min()` for every edge simultaneously up to integer rounding; the
    // hill-climbing pass below then repairs the rounding misalignments.
    let mut k_star = 1usize;
    {
        let mut total = ResourceVec::ZERO;
        for &(s, c) in counts {
            total += problem.services[s.idx()].demand * f64::from(c);
        }
        for r in 0..NUM_RESOURCES {
            let cap = g.capacity.0[r];
            if cap > 0.0 && total.0[r] > 0.0 {
                // 20% headroom above the resource-minimal subset: packed-full
                // machines would leave the hill-climbing repair pass no room
                // to relocate containers
                k_star = k_star.max((1.2 * total.0[r] / cap - 1e-9).ceil() as usize);
            } else if total.0[r] > 0.0 {
                k_star = k;
            }
        }
        for &(s, c) in counts {
            let cap1 = per_machine_cap(problem, s, &g.capacity);
            if cap1 > 0 {
                k_star = k_star.max(c.div_ceil(cap1) as usize);
            }
        }
        for rule in &problem.anti_affinity {
            if rule.max_per_machine == 0 {
                continue;
            }
            let load: u32 = counts
                .iter()
                .filter(|(s, _)| rule.services.contains(s))
                .map(|&(_, c)| c)
                .sum();
            k_star = k_star.max(load.div_ceil(rule.max_per_machine) as usize);
        }
        k_star = k_star.min(k).max(1);
    }
    // Insertion order: scarce services first (fewest containers) — they
    // anchor the layout; plentiful services then *chase* their partners by
    // marginal gain, stacking proportionally where the scarce side sits
    // (realizing min() needs the abundant side concentrated on the scarce
    // side's machines). Zero-gain containers fall back to the aligned
    // round-robin so unrelated services still interleave consistently.
    let totals = problem.all_service_total_affinities();
    let mut order: Vec<(ServiceId, u32)> = counts.to_vec();
    order.sort_by(|a, b| {
        a.1.cmp(&b.1)
            .then(
                totals[b.0.idx()]
                    .partial_cmp(&totals[a.0.idx()])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.0.cmp(&b.0))
    });
    for &(s, c) in &order {
        let svc = &problem.services[s.idx()];
        let mut cursor = 0usize;
        for _ in 0..c {
            // best marginal-gain machine, if any strictly positive
            let mut best: Option<(usize, f64)> = None;
            for mi in 0..k {
                if !feasible(&usage, &aa_counts, s, mi) {
                    continue;
                }
                let gain = marginal(placement, s, g.members[mi], 1);
                if gain > 1e-12 && best.map_or(true, |(_, bg)| gain > bg + 1e-12) {
                    best = Some((mi, gain));
                }
            }
            let chosen = match best {
                Some((mi, _)) => Some(mi),
                None => {
                    // aligned round-robin fallback
                    let mut found = None;
                    for probe in 0..k {
                        let mi = if probe < k_star {
                            (cursor + probe) % k_star
                        } else {
                            probe
                        };
                        if feasible(&usage, &aa_counts, s, mi) {
                            if mi < k_star {
                                cursor = (mi + 1) % k_star;
                            }
                            found = Some(mi);
                            break;
                        }
                    }
                    found
                }
            };
            let Some(mi) = chosen else {
                break; // cannot fit anywhere in the group — drop
            };
            placement.add(s, g.members[mi], 1);
            usage[mi] += svc.demand;
            for &ri in &rules_of[s.idx()] {
                aa_counts[ri][mi] += 1;
            }
        }
    }

    // --- hill climbing: relocate single containers while it pays ---
    let mut debug_moves = 0usize;
    for pass in 0..8 {
        let mut improved = false;
        for &(s, _) in &order {
            let svc = &problem.services[s.idx()];
            let hosts: Vec<usize> = (0..k)
                .filter(|&mi| placement.count(s, g.members[mi]) > 0)
                .collect();
            for mi in hosts {
                let m_from = g.members[mi];
                let remove_delta = marginal(placement, s, m_from, -1);
                // try the best destination
                let mut best: Option<(usize, f64)> = None;
                for mj in 0..k {
                    if mj == mi || !feasible(&usage, &aa_counts, s, mj) {
                        continue;
                    }
                    let gain = marginal(placement, s, g.members[mj], 1);
                    let delta = gain + remove_delta;
                    if delta > 1e-9 && best.map_or(true, |(_, bd)| delta > bd) {
                        best = Some((mj, delta));
                    }
                }
                if let Some((mj, _)) = best {
                    placement.remove(s, m_from, 1);
                    usage[mi] -= svc.demand;
                    for &ri in &rules_of[s.idx()] {
                        aa_counts[ri][mi] -= 1;
                    }
                    placement.add(s, g.members[mj], 1);
                    usage[mj] += svc.demand;
                    for &ri in &rules_of[s.idx()] {
                        aa_counts[ri][mj] += 1;
                    }
                    improved = true;
                    debug_moves += 1;
                }
            }
        }
        // eviction subpass: push zero-marginal containers off the most
        // loaded machines onto the least loaded feasible ones, so the next
        // relocation pass has room to co-locate real pairs
        if pass % 2 == 0 {
            for &(s, _) in &order {
                let svc = &problem.services[s.idx()];
                for mi in 0..k {
                    let m_from = g.members[mi];
                    if placement.count(s, m_from) == 0 {
                        continue;
                    }
                    if marginal(placement, s, m_from, -1) < -1e-12 {
                        continue; // removing here would cost affinity
                    }
                    // destination: least-loaded feasible member
                    let dest = (0..k)
                        .filter(|&mj| mj != mi && feasible(&usage, &aa_counts, s, mj))
                        .min_by(|&a, &b| {
                            usage[a]
                                .dominant_share(&g.capacity)
                                .total_cmp(&usage[b].dominant_share(&g.capacity))
                        });
                    let Some(mj) = dest else { continue };
                    // only evict toward emptier machines, and never at an
                    // affinity price
                    if usage[mj].dominant_share(&g.capacity)
                        + svc.demand.dominant_share(&g.capacity)
                        >= usage[mi].dominant_share(&g.capacity)
                    {
                        continue;
                    }
                    if marginal(placement, s, g.members[mj], 1) + marginal(placement, s, m_from, -1)
                        < -1e-12
                    {
                        continue;
                    }
                    placement.remove(s, m_from, 1);
                    usage[mi] -= svc.demand;
                    for &ri in &rules_of[s.idx()] {
                        aa_counts[ri][mi] -= 1;
                    }
                    placement.add(s, g.members[mj], 1);
                    usage[mj] += svc.demand;
                    for &ri in &rules_of[s.idx()] {
                        aa_counts[ri][mj] += 1;
                    }
                }
            }
        } else if !improved {
            break;
        }
    }
    if std::env::var("RASA_DEBUG").is_ok() {
        eprintln!("[deagg] group k={k} moves={debug_moves}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_mip::MipStatus;
    use rasa_model::{gained_affinity, validate, FeatureMask, MachineId, ProblemBuilder};

    /// Two services with an affinity edge, machines with room for both.
    fn small_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let a = b.add_service("A", 2, ResourceVec::cpu_mem(2.0, 2.0));
        let c = b.add_service("B", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(a, c, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn per_machine_cap_respects_resources_and_singleton_rules() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("s", 10, ResourceVec::cpu_mem(3.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 100.0), FeatureMask::EMPTY);
        b.add_anti_affinity(vec![s], 2);
        let p = b.build().unwrap();
        // resources allow 3 (floor 10/3); singleton anti-affinity caps at 2
        assert_eq!(per_machine_cap(&p, s, &p.machines[0].capacity), 2);
    }

    #[test]
    fn per_machine_cap_zero_when_too_big() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("s", 1, ResourceVec::cpu_mem(100.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 100.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        assert_eq!(per_machine_cap(&p, s, &p.machines[0].capacity), 0);
    }

    #[test]
    fn exact_formulation_solves_fig2_to_full_affinity() {
        let p = small_problem();
        let f = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        let sol = f.mip().solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        // full collocation is possible: one machine holds 2×A (4 cpu) + 4×B (4 cpu)
        assert!(
            (sol.objective - 1.0).abs() < 1e-5,
            "obj = {}",
            sol.objective
        );
        let placement = f.extract_placement(&p, &sol.x);
        assert!((gained_affinity(&p, &placement) - 1.0).abs() < 1e-5);
        assert!(validate(&p, &placement, false).is_empty());
    }

    #[test]
    fn aggregated_formulation_matches_exact_on_identical_machines() {
        let p = small_problem();
        let exact = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        let agg = RasaFormulation::build(&p, FormulationKind::MachineGroup, false);
        assert_eq!(agg.groups().len(), 1, "identical machines form one group");
        assert!(
            agg.mip().num_vars() < exact.mip().num_vars(),
            "aggregation must shrink the model"
        );
        let se = exact.mip().solve();
        let sa = agg.mip().solve();
        assert!((se.objective - sa.objective).abs() < 1e-5);
        // de-aggregated placement achieves the model objective here
        let placement = agg.extract_placement(&p, &sa.x);
        assert!((gained_affinity(&p, &placement) - sa.objective).abs() < 1e-5);
    }

    #[test]
    fn schedulable_constraints_suppress_variables() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "needs-gpu", 2, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(3)),
        );
        let s1 = b.add_service("plain", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY); // no gpu
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(3)); // gpu
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let f = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        let sol = f.mip().solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        let placement = f.extract_placement(&p, &sol.x);
        // s0 must never land on machine 0
        assert_eq!(placement.count(s0, MachineId(0)), 0);
        assert!(validate(&p, &placement, false).is_empty());
        // full collocation still achievable on the gpu machine
        assert!((gained_affinity(&p, &placement) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn anti_affinity_limits_collocation() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("x", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("y", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(100.0, 100.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        // at most 2 containers from {x, y} per machine
        b.add_anti_affinity(vec![s0, s1], 2);
        let p = b.build().unwrap();
        let f = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        let sol = f.mip().solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        // best: 1×x + 1×y on each machine → per machine min(1/2,1/2) = 0.5·w each → 1.0 total
        assert!((sol.objective - 1.0).abs() < 1e-5);
        let placement = f.extract_placement(&p, &sol.x);
        assert!(validate(&p, &placement, false).is_empty());
    }

    #[test]
    fn non_affinity_services_excluded_by_default() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("loner", 5, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let f = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        assert_eq!(f.active_services(), &[s0, s1]);
        let f_all = RasaFormulation::build(&p, FormulationKind::PerMachine, true);
        assert_eq!(f_all.active_services().len(), 3);
    }

    #[test]
    fn deaggregation_respects_per_machine_capacity() {
        // group constraint admits 3 containers of a 5-cpu service on a
        // 2-machine group with 8 cpu each (15 <= 16), but per machine only 1
        // fits — de-aggregation must drop the third container.
        let mut b = ProblemBuilder::new();
        let s = b.add_service("fat", 3, ResourceVec::cpu_mem(5.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 64.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let g = &p.machine_groups()[0];
        let mut placement = Placement::empty_for(&p);
        deaggregate_group(&p, g, &[(s, 3)], &mut placement);
        assert_eq!(placement.placed_count(s), 2);
        assert!(validate(&p, &placement, false).is_empty());
    }

    #[test]
    fn deaggregation_places_all_affinity_free_containers() {
        // a service with no affinity edges: placement must be complete and
        // feasible; the exact spread is load-balancing territory, not an
        // affinity concern.
        let mut b = ProblemBuilder::new();
        let s = b.add_service("svc", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let g = &p.machine_groups()[0];
        let mut placement = Placement::empty_for(&p);
        deaggregate_group(&p, g, &[(s, 4)], &mut placement);
        assert_eq!(placement.placed_count(s), 4);
        assert!(validate(&p, &placement, true).is_empty());
    }

    #[test]
    fn deaggregation_aligns_pairs_across_the_subset() {
        // two services, each 2 containers of 4 cpu → K* = 2 machines of
        // 8 cpu; aligned spread must put one of each on both machines.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(4.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(4.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 64.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let g = &p.machine_groups()[0];
        let mut placement = Placement::empty_for(&p);
        deaggregate_group(&p, g, &[(s0, 2), (s1, 2)], &mut placement);
        assert_eq!(placement.count(s0, MachineId(0)), 1);
        assert_eq!(placement.count(s1, MachineId(0)), 1);
        assert_eq!(placement.count(s0, MachineId(1)), 1);
        assert_eq!(placement.count(s1, MachineId(1)), 1);
        assert!((gained_affinity(&p, &placement) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sla_is_upper_bounded_not_forced() {
        // machine too small for every container — model stays feasible and
        // places what fits.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 10, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 10, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let f = RasaFormulation::build(&p, FormulationKind::PerMachine, false);
        let sol = f.mip().solve();
        assert_eq!(sol.status, MipStatus::Optimal);
        // best: 2 + 2 containers → min(2/10, 2/10) = 0.2
        assert!((sol.objective - 0.2).abs() < 1e-5, "obj {}", sol.objective);
        let placement = f.extract_placement(&p, &sol.x);
        assert!(validate(&p, &placement, false).is_empty());
        assert_eq!(placement.total_placed(), 4);
    }
}
