//! The MIP-based scheduling algorithm (Section IV-C1): build the RASA
//! formulation and hand it to branch-and-bound.

use crate::completion::complete_placement;
use crate::formulation::{FormulationKind, RasaFormulation};
use crate::scheduler::{ScheduleOutcome, Scheduler};
use rasa_lp::Deadline;
use rasa_mip::{MipOptions, MipStatus};
use rasa_model::{Placement, Problem};
use std::time::Instant;

/// Options for [`MipBased`].
#[derive(Clone, Debug)]
pub struct MipBasedOptions {
    /// Formulation flavor. `None` (the default) picks automatically: the
    /// *exact* per-machine formulation while its row count stays within
    /// [`MipBasedOptions::max_exact_rows`], otherwise the machine-group
    /// aggregation (the paper's `a_{s,s',g}` indexing). Exactness matters:
    /// the aggregated model's bound is not always realizable per machine,
    /// and the paper aims the MIP algorithm at small subproblems where
    /// exact solving is affordable.
    pub kind: Option<FormulationKind>,
    /// Row budget for choosing the exact formulation automatically.
    pub max_exact_rows: usize,
    /// Branch-and-bound knobs.
    pub mip: MipOptions,
    /// Run the default-scheduler completion pass on the result so trivial
    /// services and failed deployments are placed too.
    pub complete: bool,
    /// Also create variables for services without affinity edges.
    pub include_non_affinity: bool,
}

impl Default for MipBasedOptions {
    fn default() -> Self {
        MipBasedOptions {
            kind: None,
            max_exact_rows: 2_600,
            mip: MipOptions::default(),
            complete: true,
            include_non_affinity: false,
        }
    }
}

impl MipBasedOptions {
    /// Resolve the formulation kind for `problem`.
    pub fn kind_for(&self, problem: &Problem) -> FormulationKind {
        if let Some(kind) = self.kind {
            return kind;
        }
        // estimated dominant row count of the exact model: 2 affinity rows
        // per edge per machine plus resources
        let m = problem.num_machines();
        let est = problem.num_services() + 4 * m + 2 * problem.affinity_edges.len() * m;
        if est <= self.max_exact_rows {
            FormulationKind::PerMachine
        } else {
            FormulationKind::MachineGroup
        }
    }
}

/// The MIP-based member of the scheduling algorithm pool.
///
/// *Characteristics* (paper): optimal within tolerance, exponential runtime
/// — right for small subproblems with significant total affinity.
#[derive(Clone, Debug, Default)]
pub struct MipBased {
    /// Options for this run.
    pub options: MipBasedOptions,
}

impl MipBased {
    /// MIP-based algorithm with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// With a specific formulation kind.
    pub fn with_kind(kind: FormulationKind) -> Self {
        MipBased {
            options: MipBasedOptions {
                kind: Some(kind),
                ..Default::default()
            },
        }
    }
}

impl Scheduler for MipBased {
    fn name(&self) -> &'static str {
        "MIP"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let kind = self.options.kind_for(problem);
        let _fs = rasa_obs::flight::span_with(
            "solve.mip",
            &[("formulation", format!("{kind:?}"))],
        );
        let formulation = RasaFormulation::build(problem, kind, self.options.include_non_affinity);

        // Anytime floor: the LP relaxation's fractional solution, repaired
        // by `extract_placement`'s exact per-machine de-aggregation, is a
        // strong feasible schedule available after a single LP solve —
        // branch-and-bound then only has to beat it within the deadline.
        let lp_sol = formulation
            .mip()
            .lp()
            .solve_with(&self.options.mip.lp, deadline);
        let mut placement = if lp_sol.feasible {
            formulation.extract_placement(problem, &lp_sol.x)
        } else {
            Placement::empty_for(problem)
        };

        let sol = formulation.mip().solve_with(&self.options.mip, deadline);
        if sol.has_incumbent() {
            let bb_placement = formulation.extract_placement(problem, &sol.x);
            if rasa_model::gained_affinity(problem, &bb_placement)
                > rasa_model::gained_affinity(problem, &placement)
            {
                placement = bb_placement;
            }
        }
        if self.options.complete {
            complete_placement(problem, &mut placement);
        }
        ScheduleOutcome::evaluate(
            problem,
            placement,
            start.elapsed(),
            sol.status == MipStatus::Optimal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};
    use std::time::Duration;

    fn chain_problem() -> Problem {
        // four services in a weighted chain; machines fit two services' worth
        let mut b = ProblemBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(2.0, 2.0)))
            .collect();
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s[0], s[1], 10.0);
        b.add_affinity(s[1], s[2], 1.0);
        b.add_affinity(s[2], s[3], 10.0);
        b.build().unwrap()
    }

    #[test]
    fn solves_chain_optimally() {
        let p = chain_problem();
        let out = MipBased::new().schedule(&p, Deadline::none());
        assert!(out.completed);
        // Collocate (s0,s1) and (s2,s3) fully: 10 + 10 gained; middle edge
        // worth 1 at most partially. Optimal keeps the heavy edges whole.
        assert!(
            out.gained_affinity >= 20.0 - 1e-6,
            "gained {}",
            out.gained_affinity
        );
        assert!(
            validate(&p, &out.placement, true).is_empty(),
            "SLA complete"
        );
    }

    #[test]
    fn exact_and_aggregated_agree_on_objective() {
        let p = chain_problem();
        let exact = MipBased::with_kind(FormulationKind::PerMachine).schedule(&p, Deadline::none());
        let agg = MipBased::with_kind(FormulationKind::MachineGroup).schedule(&p, Deadline::none());
        assert!(
            (exact.gained_affinity - agg.gained_affinity).abs() < 1e-6,
            "exact {} vs aggregated {}",
            exact.gained_affinity,
            agg.gained_affinity
        );
    }

    #[test]
    fn completion_places_trivial_services() {
        let mut b = ProblemBuilder::new();
        let a = b.add_service("a", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let c = b.add_service("b", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("trivial", 3, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(a, c, 1.0);
        let p = b.build().unwrap();
        let out = MipBased::new().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
        assert_eq!(out.placement.total_placed(), 5);
    }

    #[test]
    fn deadline_zero_still_returns_valid_outcome() {
        let p = chain_problem();
        let out = MipBased::new().schedule(&p, Deadline::after(Duration::ZERO));
        // nothing from the MIP, but completion still yields a feasible placement
        assert!(validate(&p, &out.placement, false).is_empty());
        assert!(!out.completed);
    }
}
