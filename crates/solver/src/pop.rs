//! POP as a first-class strategy rung (Narayanan et al., SOSP'21 \[23\]):
//! randomly sub-sample the subproblem into `k` shards, solve the shards in
//! parallel under wave-sliced deadlines, and union the results. The random
//! split deliberately ignores the affinity graph, so it is cheap and
//! embarrassingly parallel — and loses exactly the cross-shard affinity
//! Fig 9 shows. The portfolio selector learns to deploy it where that loss
//! is small: dense, poorly-cut subproblems where whole-problem solvers
//! drown.
//!
//! [`split_services`] is the *single* shard-split implementation, shared
//! with the `Pop` baseline in `rasa-baselines` so rung and baseline cannot
//! drift (same seed → same split, by construction and by cross-check test).

use crate::mip_algorithm::{MipBased, MipBasedOptions};
use crate::scheduler::{ScheduleOutcome, Scheduler};
use crate::completion::complete_placement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_lp::Deadline;
use rasa_model::{Placement, Problem, ServiceId, SubproblemMapping};
use rasa_obs::flight;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// POP's random service split (client granularity): deal every service
/// into one of `parts` buckets with a seeded RNG, then drop empty buckets.
/// `parts` is clamped to `[1, num_services]`.
///
/// This is the shared shard-split used by both the POP *baseline*
/// (`rasa-baselines`) and the POP *strategy rung* ([`PopStrategy`]):
/// identical `(parts, seed)` always produces identical splits.
pub fn split_services(problem: &Problem, parts: usize, seed: u64) -> Vec<Vec<ServiceId>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = parts.max(1).min(problem.num_services().max(1));
    let mut service_sets: Vec<Vec<ServiceId>> = vec![Vec::new(); k];
    for svc in &problem.services {
        service_sets[rng.gen_range(0..k)].push(svc.id);
    }
    service_sets.retain(|s| !s.is_empty());
    service_sets
}

/// Total affinity weight on edges whose endpoints land in different shards
/// of `service_sets` — an upper bound on what the split forfeits (the
/// shards can never recover a cross-shard edge).
pub fn split_affinity_loss(problem: &Problem, service_sets: &[Vec<ServiceId>]) -> f64 {
    let mut part = vec![usize::MAX; problem.num_services()];
    for (pi, set) in service_sets.iter().enumerate() {
        for s in set {
            part[s.idx()] = pi;
        }
    }
    problem
        .affinity_edges
        .iter()
        .filter(|e| part[e.a.idx()] != part[e.b.idx()])
        .map(|e| e.weight)
        .sum()
}

/// Knobs for the [`PopStrategy`] rung.
#[derive(Clone, Debug)]
pub struct PopOptions {
    /// Number of random shards `k`. The pipeline applies POP to
    /// already-partitioned subproblems, so the default is smaller than the
    /// whole-problem baseline's 8.
    pub parts: usize,
    /// RNG seed for the shard split. Fixed per config, so a re-solve of
    /// the same subproblem shards identically (determinism the solve cache
    /// and the bench gates rely on).
    pub seed: u64,
    /// Run the completion pass on the union (off when the pipeline runs
    /// its own global pass, mirroring the MIP/CG pool members).
    pub complete: bool,
    /// Options for the per-shard MIP sub-solver.
    pub sub_mip: MipBasedOptions,
}

impl Default for PopOptions {
    fn default() -> Self {
        PopOptions {
            parts: 4,
            seed: 0,
            complete: false,
            sub_mip: MipBasedOptions::default(),
        }
    }
}

/// The POP strategy rung: split → solve shards in parallel under
/// wave-sliced deadlines → union. As a [`Scheduler`] it slots into
/// `guarded_schedule` like every other rung, so panic isolation, Gate 2
/// certification, and `solve.rung` flight recording come from the ladder,
/// not from this type.
#[derive(Clone, Debug, Default)]
pub struct PopStrategy {
    /// Configuration.
    pub options: PopOptions,
}

impl PopStrategy {
    /// A rung with the given options.
    pub fn new(options: PopOptions) -> Self {
        PopStrategy { options }
    }

    /// The same wave-fairness slice as the pipeline's parallel solve path:
    /// shard `index` of `total`, pulled from a shared queue by `threads`
    /// workers, gets the live remaining budget divided by the number of
    /// waves still to run. One thread reduces this to the sequential
    /// equal-slice formula the baseline uses.
    fn wave_slice(deadline: Deadline, index: usize, total: usize, threads: usize) -> Deadline {
        let waves = total.saturating_sub(index).div_ceil(threads.max(1)).max(1);
        match deadline.remaining() {
            Some(rem) => deadline.min_with(rem / waves as u32),
            None => Deadline::none(),
        }
    }
}

impl Scheduler for PopStrategy {
    fn name(&self) -> &'static str {
        "POP"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let obs = rasa_obs::global();
        obs.inc("strategy.pop.runs");
        let service_sets = split_services(problem, self.options.parts, self.options.seed);
        let machine_sets = rasa_partition::assign_machines(problem, &service_sets);
        obs.add("strategy.pop.shards", service_sets.len() as u64);
        obs.record(
            "strategy.pop.split_loss",
            split_affinity_loss(problem, &service_sets),
        );
        let _fs = flight::span_with(
            "strategy.pop",
            &[("shards", service_sets.len().to_string())],
        );

        let shards: Vec<(Problem, SubproblemMapping)> = service_sets
            .iter()
            .zip(&machine_sets)
            .map(|(svcs, machines)| problem.induced_subproblem(svcs, machines))
            .collect();
        let total = shards.len();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(total)
            .max(1);
        let solver = MipBased {
            options: self.options.sub_mip.clone(),
        };
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScheduleOutcome>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        // A shard panic propagates out of the scope join and up through
        // this call — the fallback ladder's catch_unwind owns recovery.
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    if pos >= total {
                        break;
                    }
                    let slice = Self::wave_slice(deadline, pos, total, threads);
                    let out = solver.schedule(&shards[pos].0, slice);
                    *slots[pos]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(out);
                });
            }
        });

        let mut placement = Placement::empty_for(problem);
        let mut all_done = true;
        for ((_, mapping), slot) in shards.iter().zip(&slots) {
            match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(out) => {
                    placement.merge_subplacement(
                        &out.placement,
                        &mapping.service_to_parent,
                        &mapping.machine_to_parent,
                    );
                    if !out.completed {
                        obs.inc("strategy.pop.shard_incomplete");
                        all_done = false;
                    }
                }
                None => {
                    obs.inc("strategy.pop.shard_incomplete");
                    all_done = false;
                }
            }
        }
        if self.options.complete {
            complete_placement(problem, &mut placement);
        }
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), all_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};

    fn coupled_problem() -> Problem {
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..12)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(8, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..6 {
            b.add_affinity(svcs[2 * i], svcs[2 * i + 1], 10.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn split_is_deterministic_and_covers_every_service() {
        let p = coupled_problem();
        for seed in 0..4 {
            let a = split_services(&p, 4, seed);
            let b = split_services(&p, 4, seed);
            assert_eq!(a, b, "same seed must produce the same split");
            let mut seen: Vec<ServiceId> = a.iter().flatten().copied().collect();
            seen.sort();
            assert_eq!(seen.len(), p.num_services(), "every service in one shard");
            assert!(a.iter().all(|s| !s.is_empty()));
        }
        assert_ne!(
            split_services(&p, 4, 0),
            split_services(&p, 4, 1),
            "different seeds should shuffle (12 services, 4 parts)"
        );
    }

    #[test]
    fn split_loss_counts_only_cross_shard_weight() {
        let p = coupled_problem();
        // one shard → nothing crosses
        assert_eq!(split_affinity_loss(&p, &split_services(&p, 1, 0)), 0.0);
        // per-service shards → everything crosses
        let singleton = split_services(&p, p.num_services(), 0);
        let total: f64 = p.affinity_edges.iter().map(|e| e.weight).sum();
        let loss = split_affinity_loss(&p, &singleton);
        assert!(loss <= total + 1e-9);
        assert!(loss > 0.0);
    }

    #[test]
    fn rung_produces_feasible_placements() {
        let p = coupled_problem();
        for parts in [1, 3, 4] {
            let out = PopStrategy::new(PopOptions {
                parts,
                complete: true,
                ..Default::default()
            })
            .schedule(&p, Deadline::none());
            assert!(
                validate(&p, &out.placement, true).is_empty(),
                "parts={parts}"
            );
            assert!(out.completed);
        }
    }

    #[test]
    fn single_shard_equals_plain_mip() {
        let p = coupled_problem();
        let pop = PopStrategy::new(PopOptions {
            parts: 1,
            complete: true,
            ..Default::default()
        })
        .schedule(&p, Deadline::none());
        let mip = MipBased::new().schedule(&p, Deadline::none());
        assert!(
            (pop.gained_affinity - mip.gained_affinity).abs() < 1e-6,
            "pop {} vs mip {}",
            pop.gained_affinity,
            mip.gained_affinity
        );
    }

    #[test]
    fn wave_slice_matches_sequential_fairness_for_one_thread() {
        use std::time::Duration;
        assert!(PopStrategy::wave_slice(Deadline::none(), 0, 4, 2)
            .remaining()
            .is_none());
        let budget = Duration::from_millis(400);
        // 8 shards on 2 threads = 4 waves → first slot gets about 1/4
        let first = PopStrategy::wave_slice(Deadline::after(budget), 0, 8, 2)
            .remaining()
            .expect("finite");
        assert!(first <= budget / 4 + Duration::from_millis(5));
        // expired budget stays expired
        assert!(PopStrategy::wave_slice(Deadline::after(Duration::ZERO), 0, 3, 2).expired());
    }
}
