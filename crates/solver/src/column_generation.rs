//! The column-generation scheduling algorithm (Section IV-C2, Algorithm 1).
//!
//! RASA's *cutting-stock formulation*: a **pattern** is a feasible placement
//! of service containers on a single machine (resources, anti-affinity and
//! schedulable constraints all hold), valued at the gained affinity it
//! realizes, `v_p = Σ_e w_e · min(p_s/d_s, p_{s'}/d_{s'})`. The restricted
//! master problem (RMP) chooses how many machines of each group use each
//! pattern:
//!
//! ```text
//! max  Σ_{g,p} v_p · y_{g,p}
//! s.t. Σ_p y_{g,p}            <= K_g   ∀ groups g         (dual μ_g)
//!      Σ_{g,p} p_s · y_{g,p}  <= d_s   ∀ services s       (dual π_s)
//!      y >= 0
//! ```
//!
//! Each round solves the RMP's LP relaxation (`SolveCuttingStock`), then for
//! every machine group solves a pricing MIP (`GenPattern`) that searches for
//! a single-machine pattern with positive reduced cost
//! `v_p − Σ_s π_s p_s − μ_g`. When no group can price out a new pattern (or
//! the deadline fires — `IsTerminate`), the master is re-solved as an
//! integer program over the generated columns (`Round`), falling back to a
//! greedy rounding if branch-and-bound cannot finish in time.

use crate::column_cache::{CgWarmStart, PatternCounts};
use crate::completion::complete_placement;
use crate::formulation::per_machine_cap;
use crate::scheduler::{ScheduleOutcome, Scheduler};
use rasa_lp::{Basis, Deadline, LpStatus, SimplexOptions};
use rasa_mip::{MipModel, MipOptions};
use rasa_model::{MachineGroup, Placement, Problem, ResourceVec, ServiceId, NUM_RESOURCES};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Options for [`ColumnGeneration`].
#[derive(Clone, Debug)]
pub struct CgOptions {
    /// Maximum pricing rounds (`while` iterations of Algorithm 1).
    pub max_rounds: usize,
    /// Branch-and-bound knobs for the pricing subproblems (kept small — a
    /// pricing MIP covers one machine).
    pub pricing_mip: MipOptions,
    /// Wall-clock slice granted to each pricing MIP.
    pub pricing_slice: Duration,
    /// Simplex knobs for the master LP.
    pub master_lp: SimplexOptions,
    /// Branch-and-bound knobs for the final integral rounding.
    pub rounding_mip: MipOptions,
    /// Reduced-cost threshold for accepting a new pattern.
    pub reduced_cost_tol: f64,
    /// Run the completion pass afterwards.
    pub complete: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        let pricing_mip = MipOptions {
            max_nodes: 2_000,
            ..MipOptions::default()
        };
        let rounding_mip = MipOptions {
            max_nodes: 20_000,
            ..MipOptions::default()
        };
        CgOptions {
            max_rounds: 60,
            pricing_mip,
            pricing_slice: Duration::from_millis(500),
            master_lp: SimplexOptions::default(),
            rounding_mip,
            reduced_cost_tol: 1e-6,
            complete: true,
        }
    }
}

/// Counters describing a column-generation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgStats {
    /// Pricing rounds executed.
    pub rounds: usize,
    /// Total patterns in the final master.
    pub patterns: usize,
    /// Master LP solves.
    pub master_solves: usize,
    /// Pricing MIP solves.
    pub pricing_solves: usize,
    /// Patterns admitted from a [`ColumnCache`](crate::ColumnCache) pool
    /// (still feasible under the current machine groups and not already
    /// produced by the seed heuristics).
    pub seeded_patterns: usize,
}

/// A single-machine placement pattern for one machine group.
#[derive(Clone, Debug, PartialEq)]
struct Pattern {
    /// `(service, containers)` with positive counts, sorted by service.
    counts: Vec<(ServiceId, u32)>,
    /// Exact gained affinity of this pattern on one machine.
    value: f64,
}

/// The column-generation member of the scheduling algorithm pool.
///
/// *Characteristics* (paper): sub-optimal quality, acceptable runtime —
/// right for medium-scale subproblems with non-negligible affinity.
#[derive(Clone, Debug, Default)]
pub struct ColumnGeneration {
    /// Options for this run.
    pub options: CgOptions,
    /// Optional cross-round column-pool handle. When set, the run seeds
    /// its restricted master from the cached pool under `warm.key` (each
    /// pattern re-validated against the current machine groups) and stores
    /// its final pool back under the same key.
    pub warm: Option<CgWarmStart>,
}

impl ColumnGeneration {
    /// Column generation with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run and additionally report statistics.
    pub fn schedule_with_stats(
        &self,
        problem: &Problem,
        deadline: Deadline,
    ) -> (ScheduleOutcome, CgStats) {
        let start = Instant::now();
        let _fs = rasa_obs::flight::span("cg.solve");
        let mut stats = CgStats::default();

        let groups = problem.machine_groups();
        let edge_weight: HashMap<(ServiceId, ServiceId), f64> = problem
            .affinity_edges
            .iter()
            .map(|e| ((e.a, e.b), e.weight))
            .collect();
        let active: Vec<ServiceId> = {
            let mut has_edge = vec![false; problem.num_services()];
            for e in &problem.affinity_edges {
                has_edge[e.a.idx()] = true;
                has_edge[e.b.idx()] = true;
            }
            problem
                .services
                .iter()
                .filter(|s| has_edge[s.id.idx()])
                .map(|s| s.id)
                .collect()
        };

        let mut patterns: Vec<Vec<Pattern>> = groups
            .iter()
            .map(|g| initial_patterns(problem, g, &active, &edge_weight))
            .collect();
        let mut seen: Vec<HashSet<Vec<(ServiceId, u32)>>> = patterns
            .iter()
            .map(|ps| ps.iter().map(|p| p.counts.clone()).collect())
            .collect();

        // ---- seed the master from a cached pool (warm start) ----
        let mut cache_hit = false;
        if let Some(warm) = &self.warm {
            if let Some(pool) = warm.cache.get(warm.key) {
                cache_hit = true;
                for counts in pool {
                    for (gi, g) in groups.iter().enumerate() {
                        if pattern_feasible(problem, g, &counts) && seen[gi].insert(counts.clone())
                        {
                            let value = pattern_value(problem, &counts, &edge_weight);
                            patterns[gi].push(Pattern {
                                counts: counts.clone(),
                                value,
                            });
                            stats.seeded_patterns += 1;
                        }
                    }
                }
            }
        }
        if let Some(warm) = &self.warm {
            let (hit, key) = (cache_hit, warm.key);
            rasa_obs::flight::emit(|| {
                rasa_obs::TraceEvent::cache_lookup(hit, "column_cache", key)
            });
        }

        // ---- Algorithm 1 main loop ----
        // The master LP warm-starts each round from the previous round's
        // final basis, remapped onto the grown column set.
        let mut master_basis: Option<(Basis, Vec<usize>)> = None;
        let master_rows = groups.len() + active.len();
        let mut converged = false;
        for _round in 0..self.options.max_rounds {
            if deadline.expired() {
                break;
            }
            stats.rounds += 1;
            let counts_now: Vec<usize> = patterns.iter().map(Vec::len).collect();
            let warm_basis = master_basis
                .as_ref()
                .and_then(|(b, old)| remap_master_basis(b, old, &counts_now, master_rows));
            let Some((duals, final_basis)) = self.solve_master_lp(
                problem,
                &groups,
                &patterns,
                &active,
                deadline,
                warm_basis.as_ref(),
            ) else {
                break;
            };
            master_basis = final_basis.map(|b| (b, counts_now));
            stats.master_solves += 1;

            let mut added_any = false;
            let mut added_this_round = 0u64;
            let mut best_reduced_cost = f64::NEG_INFINITY;
            for (gi, g) in groups.iter().enumerate() {
                if deadline.expired() {
                    break;
                }
                stats.pricing_solves += 1;
                let mu = duals.group[gi];
                if let Some((p, reduced_cost)) = self.price_pattern(
                    problem,
                    g,
                    &active,
                    &edge_weight,
                    &duals.service,
                    mu,
                    deadline,
                ) {
                    best_reduced_cost = best_reduced_cost.max(reduced_cost);
                    if seen[gi].insert(p.counts.clone()) {
                        patterns[gi].push(p);
                        added_any = true;
                        added_this_round += 1;
                    }
                }
            }
            {
                let round = stats.rounds as u64;
                let total_columns: u64 = patterns.iter().map(|ps| ps.len() as u64).sum();
                let rc = if best_reduced_cost.is_finite() {
                    best_reduced_cost
                } else {
                    0.0 // no pricing MIP produced a column this round
                };
                rasa_obs::flight::emit(|| {
                    rasa_obs::TraceEvent::cg_pricing_round(
                        round,
                        added_this_round,
                        total_columns,
                        rc,
                    )
                });
            }
            if !added_any {
                converged = true;
                break; // no pattern with negative reduced cost remains
            }
        }

        stats.patterns = patterns.iter().map(Vec::len).sum();

        // ---- persist the final pool for the next round ----
        if let Some(warm) = &self.warm {
            let mut dedup: HashSet<PatternCounts> = HashSet::new();
            let mut pool: Vec<PatternCounts> = Vec::new();
            for ps in &patterns {
                for p in ps {
                    if dedup.insert(p.counts.clone()) {
                        pool.push(p.counts.clone());
                    }
                }
            }
            warm.cache.put(warm.key, pool);
        }

        // ---- Round: integral master over the generated columns ----
        let mut placement = self.round_master(problem, &groups, &patterns, &active, deadline);
        if self.options.complete {
            complete_placement(problem, &mut placement);
        }
        let outcome = ScheduleOutcome::evaluate(problem, placement, start.elapsed(), converged);
        let obs = rasa_obs::global();
        if obs.enabled() {
            obs.add("cg.solves", 1);
            obs.add("cg.rounds", stats.rounds as u64);
            obs.add("cg.master_solves", stats.master_solves as u64);
            obs.add("cg.pricing_solves", stats.pricing_solves as u64);
            obs.add("cg.patterns", stats.patterns as u64);
            if self.warm.is_some() {
                obs.add(
                    if cache_hit {
                        "cg.cache_hits"
                    } else {
                        "cg.cache_misses"
                    },
                    1,
                );
                obs.add("cg.cache_seeded_patterns", stats.seeded_patterns as u64);
            }
            obs.record_duration("cg.solve_seconds", outcome.elapsed);
        }
        (outcome, stats)
    }

    /// Solve the RMP LP relaxation (optionally warm-started from the
    /// previous round's basis) and return its duals plus the final basis.
    fn solve_master_lp(
        &self,
        problem: &Problem,
        groups: &[MachineGroup],
        patterns: &[Vec<Pattern>],
        active: &[ServiceId],
        deadline: Deadline,
        warm: Option<&Basis>,
    ) -> Option<(MasterDuals, Option<Basis>)> {
        let (lp, _vars) = build_master(problem, groups, patterns, active, false);
        let sol = lp.lp().solve_warm(&self.options.master_lp, deadline, warm);
        if sol.status != LpStatus::Optimal {
            return None;
        }
        let g = groups.len();
        let duals = MasterDuals {
            group: sol.duals[..g].to_vec(),
            service: active
                .iter()
                .enumerate()
                .map(|(k, &s)| (s, sol.duals[g + k]))
                .collect(),
        };
        Some((duals, sol.basis))
    }

    /// `GenPattern`: price a new pattern for group `g`. Returns the
    /// pattern together with its (positive) reduced cost when one beats
    /// the tolerance.
    #[allow(clippy::too_many_arguments)]
    fn price_pattern(
        &self,
        problem: &Problem,
        g: &MachineGroup,
        active: &[ServiceId],
        edge_weight: &HashMap<(ServiceId, ServiceId), f64>,
        pi: &HashMap<ServiceId, f64>,
        mu: f64,
        deadline: Deadline,
    ) -> Option<(Pattern, f64)> {
        let mut mip = MipModel::new();
        let mut p_vars: HashMap<ServiceId, rasa_mip::VarId> = HashMap::new();
        for &s in active {
            let svc = &problem.services[s.idx()];
            if !svc.required_features.subset_of(g.features) {
                continue;
            }
            let cap1 = per_machine_cap(problem, s, &g.capacity).min(svc.replicas);
            if cap1 == 0 {
                continue;
            }
            let price = -pi.get(&s).copied().unwrap_or(0.0);
            p_vars.insert(s, mip.add_int_var(0.0, f64::from(cap1), price));
        }
        if p_vars.is_empty() {
            return None;
        }
        // single-machine resources
        for r in 0..NUM_RESOURCES {
            let coeffs: Vec<_> = p_vars
                .iter()
                .filter_map(|(&s, &v)| {
                    let dem = problem.services[s.idx()].demand.0[r];
                    (dem > 0.0).then_some((v, dem))
                })
                .collect();
            if !coeffs.is_empty() {
                mip.add_row_le(coeffs, g.capacity.0[r]);
            }
        }
        // anti-affinity on one machine
        for rule in &problem.anti_affinity {
            let coeffs: Vec<_> = rule
                .services
                .iter()
                .filter_map(|s| p_vars.get(s).map(|&v| (v, 1.0)))
                .collect();
            if !coeffs.is_empty() {
                mip.add_row_le(coeffs, f64::from(rule.max_per_machine));
            }
        }
        // affinity epigraph
        for e in &problem.affinity_edges {
            let (Some(&va), Some(&vb)) = (p_vars.get(&e.a), p_vars.get(&e.b)) else {
                continue;
            };
            let da = f64::from(problem.services[e.a.idx()].replicas);
            let db = f64::from(problem.services[e.b.idx()].replicas);
            let a = mip.add_var(0.0, e.weight, 1.0);
            mip.add_row_le(vec![(a, 1.0), (va, -e.weight / da)], 0.0);
            mip.add_row_le(vec![(a, 1.0), (vb, -e.weight / db)], 0.0);
        }

        let slice = deadline.min_with(self.options.pricing_slice);
        let sol = mip.solve_with(&self.options.pricing_mip, slice);
        if !sol.has_incumbent() {
            return None;
        }
        let counts: Vec<(ServiceId, u32)> = {
            let mut c: Vec<_> = p_vars
                .iter()
                .filter_map(|(&s, &v)| {
                    let n = sol.x[v.0].round().max(0.0) as u32;
                    (n > 0).then_some((s, n))
                })
                .collect();
            c.sort_by_key(|&(s, _)| s);
            c
        };
        if counts.is_empty() {
            return None;
        }
        let value = pattern_value(problem, &counts, edge_weight);
        let priced: f64 = counts
            .iter()
            .map(|(s, n)| pi.get(s).copied().unwrap_or(0.0) * f64::from(*n))
            .sum();
        let reduced_cost = value - priced - mu;
        (reduced_cost > self.options.reduced_cost_tol)
            .then_some((Pattern { counts, value }, reduced_cost))
    }

    /// `Round`: solve the master as an integer program; greedy fallback.
    fn round_master(
        &self,
        problem: &Problem,
        groups: &[MachineGroup],
        patterns: &[Vec<Pattern>],
        active: &[ServiceId],
        deadline: Deadline,
    ) -> Placement {
        let (mip, vars) = build_master(problem, groups, patterns, active, true);
        let sol = mip.solve_with(&self.options.rounding_mip, deadline);
        let copies: Vec<Vec<u32>> = if sol.has_incumbent() {
            vars.iter()
                .map(|per_g| {
                    per_g
                        .iter()
                        .map(|&v| sol.x[v.0].round().max(0.0) as u32)
                        .collect()
                })
                .collect()
        } else {
            greedy_round(problem, groups, patterns)
        };

        let mut placement = Placement::empty_for(problem);
        for (gi, g) in groups.iter().enumerate() {
            let mut member_cursor = 0usize;
            // honor remaining coverage when expanding (defensive: the
            // integral master already enforces it)
            let mut remaining: HashMap<ServiceId, u32> = problem
                .services
                .iter()
                .map(|s| {
                    (
                        s.id,
                        s.replicas.saturating_sub(placement.placed_count(s.id)),
                    )
                })
                .collect();
            for (pi_, pattern) in patterns[gi].iter().enumerate() {
                for _ in 0..copies[gi][pi_] {
                    if member_cursor >= g.members.len() {
                        break;
                    }
                    let m = g.members[member_cursor];
                    member_cursor += 1;
                    for &(s, c) in &pattern.counts {
                        let left = remaining.get_mut(&s).expect("known service");
                        let take = c.min(*left);
                        if take > 0 {
                            placement.add(s, m, take);
                            *left -= take;
                        }
                    }
                }
            }
        }
        placement
    }
}

impl Scheduler for ColumnGeneration {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        self.schedule_with_stats(problem, deadline).0
    }
}

struct MasterDuals {
    group: Vec<f64>,
    service: HashMap<ServiceId, f64>,
}

/// Can a cached pattern still run on one machine of group `g` under the
/// *current* problem? Checks service existence, schedulability, per-service
/// caps, joint resource fit, and anti-affinity.
fn pattern_feasible(problem: &Problem, g: &MachineGroup, counts: &[(ServiceId, u32)]) -> bool {
    if counts.is_empty() {
        return false;
    }
    let mut used = ResourceVec::ZERO;
    for &(s, c) in counts {
        if c == 0 || s.idx() >= problem.num_services() {
            return false;
        }
        let svc = &problem.services[s.idx()];
        if !svc.required_features.subset_of(g.features) {
            return false;
        }
        if c > per_machine_cap(problem, s, &g.capacity).min(svc.replicas) {
            return false;
        }
        used += svc.demand * f64::from(c);
    }
    if !used.fits_within(&g.capacity, 1e-6) {
        return false;
    }
    problem.anti_affinity.iter().all(|rule| {
        let total: u32 = counts
            .iter()
            .filter(|(s, _)| rule.services.contains(s))
            .map(|&(_, c)| c)
            .sum();
        total <= rule.max_per_machine
    })
}

/// Remap a master-LP basis exported when per-group pattern counts were
/// `old_counts` onto the layout implied by `new_counts`. Master variables
/// are laid out group-by-group and patterns are only ever *appended* within
/// a group, so a pattern keeps its in-group index and only the group
/// offsets shift; slacks shift uniformly by the total growth. `m` is the
/// (stable) number of master rows.
fn remap_master_basis(
    basis: &Basis,
    old_counts: &[usize],
    new_counts: &[usize],
    m: usize,
) -> Option<Basis> {
    if old_counts.len() != new_counts.len() {
        return None;
    }
    let n_old: usize = old_counts.iter().sum();
    let n_new: usize = new_counts.iter().sum();
    if basis.basic.len() != m || basis.at_upper.len() != n_old + m {
        return None;
    }
    let mut map = vec![usize::MAX; n_old + m];
    let (mut off_old, mut off_new) = (0usize, 0usize);
    for (gi, &c_old) in old_counts.iter().enumerate() {
        if new_counts[gi] < c_old {
            return None; // a pattern was removed: layouts are incompatible
        }
        for p in 0..c_old {
            map[off_old + p] = off_new + p;
        }
        off_old += c_old;
        off_new += new_counts[gi];
    }
    for i in 0..m {
        map[n_old + i] = n_new + i;
    }
    let mut at_upper = vec![false; n_new + m];
    for (j, &nj) in map.iter().enumerate() {
        if nj != usize::MAX {
            at_upper[nj] = basis.at_upper[j];
        }
    }
    let basic: Vec<usize> = basis
        .basic
        .iter()
        .map(|&j| map.get(j).copied().unwrap_or(usize::MAX))
        .collect();
    if basic.contains(&usize::MAX) {
        return None;
    }
    Some(Basis { basic, at_upper })
}

/// Exact gained affinity of a pattern on one machine.
fn pattern_value(
    problem: &Problem,
    counts: &[(ServiceId, u32)],
    edge_weight: &HashMap<(ServiceId, ServiceId), f64>,
) -> f64 {
    let mut value = 0.0;
    for (i, &(sa, ca)) in counts.iter().enumerate() {
        let da = f64::from(problem.services[sa.idx()].replicas);
        for &(sb, cb) in &counts[i + 1..] {
            let key = if sa < sb { (sa, sb) } else { (sb, sa) };
            if let Some(&w) = edge_weight.get(&key) {
                let db = f64::from(problem.services[sb.idx()].replicas);
                value += w * (f64::from(ca) / da).min(f64::from(cb) / db);
            }
        }
    }
    value
}

/// Seed patterns: per group, singleton packs plus one balanced pack per
/// affinity edge (both endpoints schedulable).
fn initial_patterns(
    problem: &Problem,
    g: &MachineGroup,
    active: &[ServiceId],
    edge_weight: &HashMap<(ServiceId, ServiceId), f64>,
) -> Vec<Pattern> {
    let mut out = Vec::new();
    let mut seen: HashSet<Vec<(ServiceId, u32)>> = HashSet::new();
    let cap1 = |s: ServiceId| -> u32 {
        let svc = &problem.services[s.idx()];
        if !svc.required_features.subset_of(g.features) {
            return 0;
        }
        per_machine_cap(problem, s, &g.capacity).min(svc.replicas)
    };
    for &s in active {
        let c = cap1(s);
        if c > 0 {
            let counts = vec![(s, c)];
            if seen.insert(counts.clone()) {
                out.push(Pattern { counts, value: 0.0 });
            }
        }
    }
    for e in &problem.affinity_edges {
        let (ca, cb) = (cap1(e.a), cap1(e.b));
        if ca == 0 || cb == 0 {
            continue;
        }
        // grow the pair keeping p_a/d_a ≈ p_b/d_b while one machine fits
        let da = f64::from(problem.services[e.a.idx()].replicas);
        let db = f64::from(problem.services[e.b.idx()].replicas);
        let mut pa = 0u32;
        let mut pb = 0u32;
        let mut used = rasa_model::ResourceVec::ZERO;
        // adding one more container of `s` must not break any anti-affinity
        // rule, counting both endpoints' contributions on the same machine
        let aa_allows = |s: ServiceId, pa: u32, pb: u32| -> bool {
            problem.anti_affinity.iter().all(|rule| {
                if !rule.services.contains(&s) {
                    return true;
                }
                let mut count = 0u32;
                if rule.services.contains(&e.a) {
                    count += pa;
                }
                if rule.services.contains(&e.b) {
                    count += pb;
                }
                count < rule.max_per_machine
            })
        };
        loop {
            // next container: whichever endpoint has the lower filled ratio
            let ra = if pa >= ca {
                f64::INFINITY
            } else {
                f64::from(pa) / da
            };
            let rb = if pb >= cb {
                f64::INFINITY
            } else {
                f64::from(pb) / db
            };
            let (svc, which_a) = if ra <= rb {
                if pa >= ca {
                    break;
                }
                (&problem.services[e.a.idx()], true)
            } else {
                if pb >= cb {
                    break;
                }
                (&problem.services[e.b.idx()], false)
            };
            if !(used + svc.demand).fits_within(&g.capacity, 1e-6) {
                break;
            }
            if !aa_allows(svc.id, pa, pb) {
                break;
            }
            used += svc.demand;
            if which_a {
                pa += 1;
            } else {
                pb += 1;
            }
        }
        if pa > 0 && pb > 0 {
            let mut counts = vec![(e.a, pa), (e.b, pb)];
            counts.sort_by_key(|&(s, _)| s);
            if seen.insert(counts.clone()) {
                let value = pattern_value(problem, &counts, edge_weight);
                out.push(Pattern { counts, value });
            }
        }
    }
    out
}

/// Build the master problem. With `integral = false` the returned model's
/// LP is the relaxation (y continuous); with `true`, y is integer. Row
/// order: one row per group, then one row per active service — duals are
/// read positionally.
fn build_master(
    problem: &Problem,
    groups: &[MachineGroup],
    patterns: &[Vec<Pattern>],
    active: &[ServiceId],
    integral: bool,
) -> (MipModel, Vec<Vec<rasa_mip::VarId>>) {
    let mut mip = MipModel::new();
    let mut vars: Vec<Vec<rasa_mip::VarId>> = Vec::with_capacity(groups.len());
    for (gi, g) in groups.iter().enumerate() {
        let k = g.members.len() as f64;
        let per_g: Vec<_> = patterns[gi]
            .iter()
            .map(|p| {
                if integral {
                    mip.add_int_var(0.0, k, p.value)
                } else {
                    mip.add_var(0.0, k, p.value)
                }
            })
            .collect();
        vars.push(per_g);
    }
    // group machine-count rows (order matters for duals)
    for (gi, g) in groups.iter().enumerate() {
        let coeffs: Vec<_> = vars[gi].iter().map(|&v| (v, 1.0)).collect();
        mip.add_row_le(coeffs, g.members.len() as f64);
    }
    // service coverage rows
    for &s in active {
        let mut coeffs = Vec::new();
        for (gi, per_g) in vars.iter().enumerate() {
            for (pi_, &v) in per_g.iter().enumerate() {
                if let Some(&(_, c)) = patterns[gi][pi_].counts.iter().find(|&&(ps, _)| ps == s) {
                    coeffs.push((v, f64::from(c)));
                }
            }
        }
        // always add the row (possibly empty → 0 <= d_s) so dual indexing
        // stays positional
        mip.add_row_le(coeffs, f64::from(problem.services[s.idx()].replicas));
    }
    (mip, vars)
}

/// Greedy integral rounding used when the rounding MIP cannot finish:
/// take patterns in decreasing value order while machines and coverage last.
fn greedy_round(
    problem: &Problem,
    groups: &[MachineGroup],
    patterns: &[Vec<Pattern>],
) -> Vec<Vec<u32>> {
    let mut copies: Vec<Vec<u32>> = patterns.iter().map(|ps| vec![0; ps.len()]).collect();
    let mut remaining: Vec<u32> = problem.services.iter().map(|s| s.replicas).collect();
    for (gi, g) in groups.iter().enumerate() {
        let mut machines_left = g.members.len() as u32;
        let mut order: Vec<usize> = (0..patterns[gi].len()).collect();
        order.sort_by(|&a, &b| {
            patterns[gi][b]
                .value
                .partial_cmp(&patterns[gi][a].value)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for pi_ in order {
            let p = &patterns[gi][pi_];
            if p.value <= 0.0 {
                break;
            }
            while machines_left > 0 && p.counts.iter().all(|&(s, c)| remaining[s.idx()] >= c) {
                copies[gi][pi_] += 1;
                machines_left -= 1;
                for &(s, c) in &p.counts {
                    remaining[s.idx()] -= c;
                }
            }
        }
    }
    copies
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};

    fn pair_problem(weight: f64) -> Problem {
        let mut b = ProblemBuilder::new();
        let a = b.add_service("A", 2, ResourceVec::cpu_mem(2.0, 2.0));
        let c = b.add_service("B", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(a, c, weight);
        b.build().unwrap()
    }

    #[test]
    fn pattern_value_is_min_scaled() {
        let p = pair_problem(10.0);
        let ew: HashMap<_, _> = p
            .affinity_edges
            .iter()
            .map(|e| ((e.a, e.b), e.weight))
            .collect();
        let v = pattern_value(&p, &[(ServiceId(0), 1), (ServiceId(1), 2)], &ew);
        assert!((v - 5.0).abs() < 1e-12); // 10 · min(1/2, 2/4)
    }

    #[test]
    fn initial_patterns_include_pairs() {
        let p = pair_problem(1.0);
        let ew: HashMap<_, _> = p
            .affinity_edges
            .iter()
            .map(|e| ((e.a, e.b), e.weight))
            .collect();
        let g = &p.machine_groups()[0];
        let pats = initial_patterns(&p, g, &[ServiceId(0), ServiceId(1)], &ew);
        assert!(pats.iter().any(|p| p.counts.len() == 2 && p.value > 0.0));
    }

    #[test]
    fn cg_reaches_full_affinity_on_small_problem() {
        let p = pair_problem(1.0);
        let (out, stats) = ColumnGeneration::new().schedule_with_stats(&p, Deadline::none());
        assert!(
            (out.gained_affinity - 1.0).abs() < 1e-6,
            "gained {}",
            out.gained_affinity
        );
        assert!(validate(&p, &out.placement, true).is_empty());
        assert!(stats.rounds >= 1);
        assert!(stats.patterns > 0);
    }

    #[test]
    fn cg_matches_mip_on_chain() {
        use crate::mip_algorithm::MipBased;
        use crate::scheduler::Scheduler as _;
        let mut b = ProblemBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(2.0, 2.0)))
            .collect();
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s[0], s[1], 10.0);
        b.add_affinity(s[1], s[2], 1.0);
        b.add_affinity(s[2], s[3], 10.0);
        let p = b.build().unwrap();
        let cg = ColumnGeneration::new().schedule(&p, Deadline::none());
        let mip = MipBased::new().schedule(&p, Deadline::none());
        assert!(
            cg.gained_affinity >= mip.gained_affinity * 0.95 - 1e-9,
            "CG {} too far below MIP {}",
            cg.gained_affinity,
            mip.gained_affinity
        );
        assert!(validate(&p, &cg.placement, true).is_empty());
    }

    #[test]
    fn greedy_round_respects_coverage_and_machines() {
        let p = pair_problem(1.0);
        let groups = p.machine_groups();
        let patterns = vec![vec![
            Pattern {
                counts: vec![(ServiceId(0), 1), (ServiceId(1), 2)],
                value: 0.5,
            },
            Pattern {
                counts: vec![(ServiceId(1), 4)],
                value: 0.0,
            },
        ]];
        let copies = greedy_round(&p, &groups, &patterns);
        // d_A = 2 allows two copies of the pair pattern (uses 2 of 3 machines)
        assert_eq!(copies[0][0], 2);
        assert_eq!(copies[0][1], 0, "zero-value patterns are skipped");
    }

    #[test]
    fn cg_with_zero_deadline_still_valid() {
        let p = pair_problem(1.0);
        let out = ColumnGeneration::new().schedule(&p, Deadline::after(Duration::ZERO));
        assert!(validate(&p, &out.placement, false).is_empty());
    }

    #[test]
    fn warm_cache_round_trips_pool_and_preserves_quality() {
        use crate::column_cache::{CgWarmStart, ColumnCache};
        use std::sync::Arc;
        let mut b = ProblemBuilder::new();
        let s: Vec<_> = (0..4)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(2.0, 2.0)))
            .collect();
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s[0], s[1], 10.0);
        b.add_affinity(s[1], s[2], 1.0);
        b.add_affinity(s[2], s[3], 10.0);
        let p = b.build().unwrap();

        let cache = Arc::new(ColumnCache::new());
        let cg = ColumnGeneration {
            warm: Some(CgWarmStart {
                cache: cache.clone(),
                key: 42,
            }),
            ..ColumnGeneration::new()
        };
        let (cold, cold_stats) = cg.schedule_with_stats(&p, Deadline::none());
        let pool = cache.get(42).expect("pool stored after first run");
        assert_eq!(pool.len(), cold_stats.patterns, "pool = final master");

        let (warm, warm_stats) = cg.schedule_with_stats(&p, Deadline::none());
        assert!(
            warm.gained_affinity >= cold.gained_affinity - 1e-9,
            "warm {} < cold {}",
            warm.gained_affinity,
            cold.gained_affinity
        );
        // the seeded master starts at (or past) the cold run's final pool,
        // so pricing converges in no more rounds than the cold run took
        assert!(warm_stats.rounds <= cold_stats.rounds);
        assert!(validate(&p, &warm.placement, true).is_empty());
    }

    #[test]
    fn infeasible_cached_patterns_are_filtered_out() {
        use crate::column_cache::{CgWarmStart, ColumnCache};
        use std::sync::Arc;
        let p = pair_problem(1.0);
        let cache = Arc::new(ColumnCache::new());
        // poison the pool: out-of-range service, zero count, over-capacity
        cache.put(
            7,
            vec![
                vec![(ServiceId(99), 1)],
                vec![(ServiceId(0), 0)],
                vec![(ServiceId(0), 1000)],
                vec![(ServiceId(0), 1), (ServiceId(1), 2)], // this one is fine
            ],
        );
        let cg = ColumnGeneration {
            warm: Some(CgWarmStart {
                cache: cache.clone(),
                key: 7,
            }),
            ..ColumnGeneration::new()
        };
        let (out, stats) = cg.schedule_with_stats(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
        // only the feasible pattern may seed (and only if the heuristics
        // did not already produce it)
        assert!(stats.seeded_patterns <= 1);
        assert!((out.gained_affinity - 1.0).abs() < 1e-6);
    }

    #[test]
    fn remap_master_basis_shifts_group_offsets() {
        // 2 groups, counts 2|1 → grown to 3|2; 2 master rows.
        let basis = Basis {
            basic: vec![1, 3], // var 1 (g0,p1) and slack 0 (old col 3+0)
            at_upper: vec![true, false, true, false, true],
        };
        let remapped = remap_master_basis(&basis, &[2, 1], &[3, 2], 2).expect("remaps");
        // g0 vars keep indices 0..2; g1 var 2 → 3; slacks 3,4 → 5,6
        assert_eq!(remapped.basic, vec![1, 5]);
        assert_eq!(remapped.at_upper.len(), 5 + 2);
        assert!(remapped.at_upper[0]); // (g0,p0) kept
        assert!(remapped.at_upper[3]); // (g1,p0): old col 2 → new col 3
        assert!(remapped.at_upper[6]); // old slack col 4 → new col 6
        assert!(!remapped.at_upper[5], "old slack col 3 stays at lower");
        assert!(!remapped.at_upper[4], "new pattern cols default to lower");

        // shrunk counts are rejected
        assert!(remap_master_basis(&basis, &[2, 1], &[1, 1], 2).is_none());
        // row-count mismatch is rejected
        assert!(remap_master_basis(&basis, &[2, 1], &[3, 2], 3).is_none());
    }

    #[test]
    fn cg_handles_problem_without_edges() {
        let mut b = ProblemBuilder::new();
        b.add_service("only", 3, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let out = ColumnGeneration::new().schedule(&p, Deadline::none());
        assert_eq!(out.gained_affinity, 0.0);
        // completion still satisfies the SLA
        assert!(validate(&p, &out.placement, true).is_empty());
    }
}
