//! Cross-round column pool persistence for column generation.
//!
//! A [`ColumnCache`] stores, per subproblem *service-set fingerprint* (see
//! `rasa-partition`), the pattern pool a previous column-generation run
//! ended with. The next round seeds its restricted master from that pool
//! instead of the cheap singleton/pair heuristics, typically entering the
//! pricing loop one or two rounds from convergence.
//!
//! Keys are service-set fingerprints rather than full problem fingerprints
//! on purpose: patterns are per-*service* container counts, so a pool stays
//! a useful candidate set even after machines died or capacities moved —
//! each pattern is re-validated against the current machine groups before
//! it is admitted (see [`ColumnGeneration`](crate::ColumnGeneration)).

use rasa_model::ServiceId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// The raw content of a pattern: `(service, containers)` pairs with
/// positive counts, sorted by service id. Values are not stored — gained
/// affinity is recomputed against the current problem when seeding.
pub type PatternCounts = Vec<(ServiceId, u32)>;

/// Hard cap on stored patterns per cache entry; pools beyond this keep
/// their first `MAX_PATTERNS_PER_ENTRY` patterns (insertion order — the
/// order the master accumulated them, so seeds and early pricing wins
/// survive truncation).
pub const MAX_PATTERNS_PER_ENTRY: usize = 4096;

/// Thread-safe pattern-pool store keyed by service-set fingerprint.
#[derive(Debug, Default)]
pub struct ColumnCache {
    pools: Mutex<HashMap<u64, Vec<PatternCounts>>>,
}

/// A shared handle to a [`ColumnCache`] plus the fingerprint key one
/// particular solve should read and write. Attached to
/// [`ColumnGeneration::warm`](crate::ColumnGeneration) by the pipeline.
#[derive(Clone, Debug)]
pub struct CgWarmStart {
    /// The shared cross-round cache.
    pub cache: Arc<ColumnCache>,
    /// Service-set fingerprint of the subproblem being solved.
    pub key: u64,
}

impl ColumnCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn pools(&self) -> MutexGuard<'_, HashMap<u64, Vec<PatternCounts>>> {
        // A solve that panicked inside the fault-isolation layer may have
        // poisoned the lock; the map itself is always in a consistent
        // state (single insert/read operations), so recover it.
        self.pools
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The stored pool for `key`, if any.
    pub fn get(&self, key: u64) -> Option<Vec<PatternCounts>> {
        self.pools().get(&key).cloned()
    }

    /// Replace the pool stored under `key` (truncated to
    /// [`MAX_PATTERNS_PER_ENTRY`]).
    pub fn put(&self, key: u64, mut patterns: Vec<PatternCounts>) {
        patterns.truncate(MAX_PATTERNS_PER_ENTRY);
        self.pools().insert(key, patterns);
    }

    /// Drop every entry whose key is not in `live`, returning how many
    /// were evicted. The pipeline calls this after each round with the
    /// keys of the current partition.
    pub fn retain_keys(&self, live: &std::collections::HashSet<u64>) -> usize {
        let mut pools = self.pools();
        let before = pools.len();
        pools.retain(|k, _| live.contains(k));
        before - pools.len()
    }

    /// Number of stored pools.
    pub fn len(&self) -> usize {
        self.pools().len()
    }

    /// `true` when no pool is stored.
    pub fn is_empty(&self) -> bool {
        self.pools().is_empty()
    }

    /// Remove all entries.
    pub fn clear(&self) {
        self.pools().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u32, u32)]) -> PatternCounts {
        pairs.iter().map(|&(s, c)| (ServiceId(s), c)).collect()
    }

    #[test]
    fn put_get_round_trip() {
        let cache = ColumnCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
        cache.put(1, vec![counts(&[(0, 2), (1, 1)])]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1), Some(vec![counts(&[(0, 2), (1, 1)])]));
    }

    #[test]
    fn put_overwrites_and_truncates() {
        let cache = ColumnCache::new();
        let big: Vec<PatternCounts> = (0..MAX_PATTERNS_PER_ENTRY as u32 + 10)
            .map(|i| counts(&[(i, 1)]))
            .collect();
        cache.put(7, big);
        let stored = cache.get(7).expect("entry");
        assert_eq!(stored.len(), MAX_PATTERNS_PER_ENTRY);
        cache.put(7, vec![counts(&[(0, 1)])]);
        assert_eq!(cache.get(7).expect("entry").len(), 1);
    }

    #[test]
    fn retain_keys_evicts_stale_entries() {
        let cache = ColumnCache::new();
        cache.put(1, vec![counts(&[(0, 1)])]);
        cache.put(2, vec![counts(&[(1, 1)])]);
        cache.put(3, vec![counts(&[(2, 1)])]);
        let live: std::collections::HashSet<u64> = [1, 3].into_iter().collect();
        assert_eq!(cache.retain_keys(&live), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
    }
}
