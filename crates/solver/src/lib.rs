#![warn(missing_docs)]
// solver code runs inside the fault-isolated solve layer: invariants
// surface as `RasaError` or `expect` with an invariant message, never as
// a bare unwrap
#![warn(clippy::unwrap_used)]

//! # rasa-solver
//!
//! The solver-based scheduling algorithms of the RASA paper's *algorithm
//! pool* (Section IV-C):
//!
//! * [`formulation`] — builds the paper's MIP (Expressions (2)–(9)) from a
//!   [`Problem`](rasa_model::Problem), in two flavors: the exact
//!   **per-machine** formulation and the **machine-group aggregated**
//!   formulation the paper's own notation (`a_{s,s',g}`, Table I) implies.
//!   Also owns de-aggregation of a group-level solution into concrete
//!   machines.
//! * [`mip_algorithm`] — the *MIP-based algorithm*: feed the formulation to
//!   the branch-and-bound solver, extract the placement (Section IV-C1).
//! * [`column_generation`] — the *column generation algorithm*
//!   (Algorithm 1): cutting-stock restricted master problem over per-machine
//!   *patterns*, pattern-pricing subproblems solved as small MIPs, and
//!   integral rounding of the final master (Section IV-C2).
//! * [`completion`] — the affinity-aware first-fit completion pass standing
//!   in for the cluster's default scheduler, which the paper lets absorb the
//!   few containers a subproblem fails to deploy (Section IV-B5). Also
//!   exposed as the [`GreedyScheduler`] pool member (the portfolio's
//!   cheapest arm).
//! * [`pop`] — POP (SOSP'21) as a first-class strategy rung: random k-way
//!   shard split, parallel per-shard MIP solves under wave-sliced
//!   deadlines, union. The shard split is shared with the `rasa-baselines`
//!   POP baseline so the two cannot drift.
//! * [`scheduler`] — the [`Scheduler`] trait shared by these algorithms and
//!   every baseline in `rasa-baselines`, plus [`ScheduleOutcome`].

pub mod column_cache;
pub mod column_generation;
pub mod completion;
pub mod formulation;
pub mod mip_algorithm;
pub mod pop;
pub mod scheduler;

pub use column_cache::{CgWarmStart, ColumnCache, PatternCounts};
pub use column_generation::{CgOptions, CgStats, ColumnGeneration};
pub use completion::{complete_placement, GreedyScheduler};
pub use formulation::{per_machine_cap, FormulationKind, RasaFormulation};
pub use mip_algorithm::{MipBased, MipBasedOptions};
pub use pop::{split_affinity_loss, split_services, PopOptions, PopStrategy};
pub use scheduler::{ScheduleOutcome, Scheduler};
