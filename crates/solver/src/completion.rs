//! Affinity-aware first-fit completion: the stand-in for the cluster's
//! *default scheduler*, which the paper lets place whatever the optimizer
//! did not (trivial services, and the occasional failed deployment —
//! Sections III-A and IV-B5).

use crate::scheduler::{ScheduleOutcome, Scheduler};
use rasa_lp::Deadline;
use rasa_model::{Placement, Problem, ResourceVec, ServiceId};
use std::time::Instant;

/// Place every still-missing container (up to each service's `d_s`) using
/// first-fit over machines, preferring machines that already host affinity
/// neighbors (score = potential marginal gained affinity), then machines
/// with the lowest dominant resource share. Respects all constraints;
/// containers that fit nowhere stay unplaced.
///
/// Returns the number of containers placed by this pass.
pub fn complete_placement(problem: &Problem, placement: &mut Placement) -> u64 {
    let num_machines = problem.num_machines();
    let mut usage = placement.machine_usage(problem);
    // per-rule per-machine anti-affinity counts
    let mut aa_counts: Vec<Vec<u32>> = problem
        .anti_affinity
        .iter()
        .map(|rule| {
            (0..num_machines)
                .map(|mi| {
                    rule.services
                        .iter()
                        .map(|&s| placement.count(s, rasa_model::MachineId(mi as u32)))
                        .sum()
                })
                .collect()
        })
        .collect();
    let rules_of: Vec<Vec<usize>> = {
        let mut map = vec![Vec::new(); problem.num_services()];
        for (ri, rule) in problem.anti_affinity.iter().enumerate() {
            for &s in &rule.services {
                map[s.idx()].push(ri);
            }
        }
        map
    };
    let adjacency = problem.edge_adjacency();

    // Services with the largest total affinity first, so high-value
    // leftovers get the best spots.
    let totals = problem.all_service_total_affinities();
    let mut order: Vec<ServiceId> = problem.services.iter().map(|s| s.id).collect();
    order.sort_by(|a, b| {
        totals[b.idx()]
            .partial_cmp(&totals[a.idx()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });

    let mut placed_total = 0u64;
    for s in order {
        let svc = &problem.services[s.idx()];
        let missing = svc.replicas.saturating_sub(placement.placed_count(s));
        for _ in 0..missing {
            // score every machine
            let mut best: Option<(usize, f64, f64)> = None; // (machine, score, -load)
            for mi in 0..num_machines {
                let machine = &problem.machines[mi];
                if !machine.can_host(svc.required_features) {
                    continue;
                }
                if !(usage[mi] + svc.demand).fits_within(&machine.capacity, 1e-6) {
                    continue;
                }
                if !rules_of[s.idx()]
                    .iter()
                    .all(|&ri| aa_counts[ri][mi] < problem.anti_affinity[ri].max_per_machine)
                {
                    continue;
                }
                let m = rasa_model::MachineId(mi as u32);
                // marginal affinity gain of adding one container of s here
                let mut score = 0.0;
                for &eid in &adjacency[s.idx()] {
                    let e = &problem.affinity_edges[eid.idx()];
                    let other = e.other(s);
                    let x_other = placement.count(other, m);
                    if x_other == 0 {
                        continue;
                    }
                    let ds = f64::from(svc.replicas);
                    let d_other = f64::from(problem.services[other.idx()].replicas);
                    let x_self = f64::from(placement.count(s, m));
                    let before = (x_self / ds).min(f64::from(x_other) / d_other);
                    let after = ((x_self + 1.0) / ds).min(f64::from(x_other) / d_other);
                    score += e.weight * (after - before);
                }
                let load = (usage[mi] + svc.demand).dominant_share(&machine.capacity);
                let better = match best {
                    None => true,
                    Some((_, bs, bl)) => score > bs + 1e-12 || (score > bs - 1e-12 && -load > bl),
                };
                if better {
                    best = Some((mi, score, -load));
                }
            }
            match best {
                Some((mi, _, _)) => {
                    let m = rasa_model::MachineId(mi as u32);
                    placement.add(s, m, 1);
                    usage[mi] += svc.demand;
                    for &ri in &rules_of[s.idx()] {
                        aa_counts[ri][mi] += 1;
                    }
                    placed_total += 1;
                }
                None => break, // no machine fits this service at all
            }
        }
    }
    placed_total
}

/// The completion pass as a standalone pool member: start from an empty
/// placement and let affinity-aware first-fit place everything. The
/// cheapest arm of the strategy portfolio — no LP, no search — and the
/// same code the fallback ladder already uses as its floor, so selecting
/// GREEDY is "skip straight to the floor, spend the budget elsewhere".
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyScheduler;

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &'static str {
        "GREEDY"
    }

    fn schedule(&self, problem: &Problem, _deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let mut placement = Placement::empty_for(problem);
        complete_placement(problem, &mut placement);
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), true)
    }
}

/// Free capacity per machine under `placement` (helper shared with tests
/// and the migration planner).
pub fn free_capacity(problem: &Problem, placement: &Placement) -> Vec<ResourceVec> {
    placement
        .machine_usage(problem)
        .into_iter()
        .zip(&problem.machines)
        .map(|(used, m)| m.capacity - used)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, MachineId, ProblemBuilder};

    #[test]
    fn completes_an_empty_placement() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("svc", 5, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        let placed = complete_placement(&p, &mut x);
        assert_eq!(placed, 5);
        assert_eq!(x.placed_count(s), 5);
        assert!(validate(&p, &x, true).is_empty());
    }

    #[test]
    fn prefers_affinity_neighbors() {
        let mut b = ProblemBuilder::new();
        let hub = b.add_service("hub", 1, ResourceVec::cpu_mem(1.0, 1.0));
        let leaf = b.add_service("leaf", 1, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(3, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(hub, leaf, 5.0);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        x.add(hub, MachineId(2), 1);
        complete_placement(&p, &mut x);
        assert_eq!(x.count(leaf, MachineId(2)), 1, "leaf should chase the hub");
    }

    #[test]
    fn respects_capacity_and_reports_shortfall() {
        let mut b = ProblemBuilder::new();
        let _big = b.add_service("big", 4, ResourceVec::cpu_mem(3.0, 1.0));
        b.add_machine(ResourceVec::cpu_mem(7.0, 64.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        let placed = complete_placement(&p, &mut x);
        assert_eq!(placed, 2, "only two 3-cpu containers fit in 7 cpu");
        assert!(validate(&p, &x, false).is_empty());
    }

    #[test]
    fn respects_anti_affinity() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("svc", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(100.0, 100.0), FeatureMask::EMPTY);
        b.add_anti_affinity(vec![s], 1);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        let placed = complete_placement(&p, &mut x);
        assert_eq!(placed, 2, "one per machine under the singleton rule");
        assert!(validate(&p, &x, false).is_empty());
    }

    #[test]
    fn respects_schedulable_constraints() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service_full(
            rasa_model::Service::new(ServiceId(0), "gpu", 2, ResourceVec::cpu_mem(1.0, 1.0))
                .with_features(FeatureMask::bit(0)),
        );
        b.add_machine(ResourceVec::cpu_mem(100.0, 100.0), FeatureMask::EMPTY);
        b.add_machine(ResourceVec::cpu_mem(100.0, 100.0), FeatureMask::bit(0));
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        complete_placement(&p, &mut x);
        assert_eq!(x.count(s, MachineId(0)), 0);
        assert_eq!(x.count(s, MachineId(1)), 2);
    }

    #[test]
    fn already_complete_placement_is_untouched() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("svc", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        x.add(s, MachineId(0), 2);
        let before = x.clone();
        assert_eq!(complete_placement(&p, &mut x), 0);
        assert_eq!(x, before);
    }

    #[test]
    fn free_capacity_accounts_for_usage() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service("svc", 2, ResourceVec::cpu_mem(2.0, 3.0));
        b.add_machine(ResourceVec::cpu_mem(10.0, 10.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let mut x = Placement::empty_for(&p);
        x.add(s, MachineId(0), 2);
        let free = free_capacity(&p, &x);
        assert_eq!(free[0], ResourceVec::cpu_mem(6.0, 4.0));
    }
}
