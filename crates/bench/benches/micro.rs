//! Criterion micro-benchmarks for the substrates: simplex solves,
//! branch-and-bound, CG pricing-shaped MIPs, partitioning stages, GCN
//! forward passes, and objective evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_graph::{multilevel_partition, AffinityGraph, MultilevelConfig};
use rasa_lp::factor::{EtaFile, LuFactors, LuWorkspace, SparseCol};
use rasa_lp::LpModel;
use rasa_mip::MipModel;
use rasa_model::{gained_affinity, Placement};
use rasa_nn::{Gcn, GcnConfig};
use rasa_partition::{multi_stage_partition, PartitionConfig};
use rasa_select::feature_graph;
use rasa_solver::{FormulationKind, RasaFormulation};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};

fn bench_simplex(c: &mut Criterion) {
    // a 60×60 dense-ish LP, the size of a subproblem relaxation row-block
    c.bench_function("simplex_dense_60x60", |b| {
        let n = 60;
        let mut m = LpModel::new();
        let vars: Vec<_> = (0..n).map(|_| m.add_var(0.0, 10.0, 1.0)).collect();
        for i in 0..n {
            let coeffs: Vec<_> = (0..n)
                .map(|j| (vars[j], if i == j { 1.5 } else { 0.5 }))
                .collect();
            m.add_row_le(coeffs, 10.0);
        }
        b.iter(|| m.solve());
    });
}

/// A nonsingular banded basis (strong diagonal + `band` sub-diagonals per
/// column) — the nnz-proportional workload the sparse kernel is built for.
fn banded_basis(m: usize, band: usize) -> Vec<SparseCol> {
    (0..m)
        .map(|i| {
            let mut col: SparseCol = vec![(i, 4.0 + (i % 7) as f64 * 0.25)];
            for d in 1..=band {
                if i + d < m {
                    col.push((i + d, -0.5 + d as f64 * 0.1));
                }
            }
            col
        })
        .collect()
}

fn bench_lu(c: &mut Criterion) {
    let m = 600;
    let cols = banded_basis(m, 6);
    let rhs: Vec<f64> = (0..m).map(|i| (i % 13) as f64 - 6.0).collect();

    c.bench_function("lu_factorize_600_banded", |b| {
        let mut ws = LuWorkspace::new(m);
        b.iter(|| LuFactors::factorize(m, |i| &cols[i], 1e-12, &mut ws).expect("nonsingular"));
    });

    let mut ws = LuWorkspace::new(m);
    let lu = LuFactors::factorize(m, |i| &cols[i], 1e-12, &mut ws).expect("nonsingular");
    c.bench_function("lu_ftran_600", |b| {
        let mut ws = LuWorkspace::new(m);
        let mut out = vec![0.0; m];
        b.iter(|| {
            lu.ftran(&rhs, &mut out, &mut ws);
            std::hint::black_box(&out);
        });
    });
    c.bench_function("lu_btran_600", |b| {
        let mut ws = LuWorkspace::new(m);
        let mut out = vec![0.0; m];
        b.iter(|| {
            lu.btran(&rhs, &mut out, &mut ws);
            std::hint::black_box(&out);
        });
    });
    c.bench_function("eta_update_and_ftran_600", |b| {
        // one basis exchange appended to a 16-deep eta file, then an FTRAN
        // pass through the whole file — the steady-state pivot workload
        let mut ws = LuWorkspace::new(m);
        let mut w = vec![0.0; m];
        lu.ftran(&rhs, &mut w, &mut ws);
        w[37] = 1.5; // a usable pivot at the exchange row
        let mut file = EtaFile::new();
        for _ in 0..16 {
            file.push(37, &w);
        }
        b.iter_batched(
            || (file.clone(), w.clone()),
            |(mut file, mut x)| {
                file.push(37, &x);
                file.apply_ftran(&mut x);
                std::hint::black_box(&x);
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_mip(c: &mut Criterion) {
    c.bench_function("bnb_knapsack_16", |b| {
        let values = [
            92.0, 57.0, 49.0, 68.0, 60.0, 43.0, 67.0, 84.0, 87.0, 72.0, 33.0, 15.0, 61.0, 29.0,
            75.0, 52.0,
        ];
        let weights = [
            23.0, 31.0, 29.0, 44.0, 53.0, 38.0, 63.0, 85.0, 89.0, 82.0, 20.0, 10.0, 41.0, 17.0,
            66.0, 38.0,
        ];
        let mut m = MipModel::new();
        let vars: Vec<_> = values.iter().map(|&v| m.add_bin_var(v)).collect();
        m.add_row_le(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            250.0,
        );
        b.iter(|| m.solve());
    });
}

fn bench_formulation(c: &mut Criterion) {
    let problem = generate(&tiny_cluster(3));
    c.bench_function("rasa_formulation_build_tiny", |b| {
        b.iter(|| RasaFormulation::build(&problem, FormulationKind::MachineGroup, false));
    });
    c.bench_function("rasa_root_lp_tiny", |b| {
        let f = RasaFormulation::build(&problem, FormulationKind::MachineGroup, false);
        b.iter(|| f.mip().lp().solve());
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let problem = generate(&ClusterSpec {
        name: "bench".into(),
        services: 300,
        target_containers: 1500,
        machines: 60,
        seed: 5,
        ..Default::default()
    });
    c.bench_function("multi_stage_partition_300", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| multi_stage_partition(&problem, None, &PartitionConfig::default(), &mut rng),
            BatchSize::SmallInput,
        );
    });
    let graph = AffinityGraph::from_problem(&problem);
    c.bench_function("multilevel_partition_300", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| multilevel_partition(&graph, &MultilevelConfig::with_parts(8), &mut rng),
            BatchSize::SmallInput,
        );
    });
}

fn bench_gcn(c: &mut Criterion) {
    let problem = generate(&tiny_cluster(4));
    let g = feature_graph(&problem);
    let mut rng = StdRng::seed_from_u64(0);
    let gcn = Gcn::new(GcnConfig::default(), &mut rng);
    c.bench_function("gcn_forward_tiny", |b| {
        b.iter(|| gcn.predict(&g));
    });
}

fn bench_objective(c: &mut Criterion) {
    let problem = generate(&tiny_cluster(5));
    let mut placement = Placement::empty_for(&problem);
    // arbitrary spread
    for svc in &problem.services {
        for r in 0..svc.replicas {
            placement.add(
                svc.id,
                rasa_model::MachineId((r as usize % problem.num_machines()) as u32),
                1,
            );
        }
    }
    c.bench_function("gained_affinity_tiny", |b| {
        b.iter(|| gained_affinity(&problem, &placement));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simplex, bench_lu, bench_mip, bench_formulation, bench_partitioning, bench_gcn, bench_objective
}
criterion_main!(benches);
