//! The `BENCH_portfolio.json` artifact schema and regression gate:
//! portfolio-selector objective vs every fixed single-strategy baseline
//! (always-MIP, always-CG, always-POP, always-greedy) over the evaluation
//! clusters, plus the portfolio's end-to-end latency percentiles. CI runs
//! the gate against the committed baseline; the acceptance bar is that
//! the learned portfolio stays within a point of the best fixed strategy
//! while its p95 latency stays inside the committed bound.

use crate::artifact::extract_schema_version;
use crate::compare::CompareOutcome;
use serde::{Deserialize, Serialize};

/// Version stamped into every portfolio artifact. Bump on any field
/// change that would make old/new artifacts incomparable.
pub const PORTFOLIO_BENCH_SCHEMA_VERSION: u32 = 1;

/// One (cluster, strategy) evaluation: a full pipeline run with the
/// selector pinned to `strategy` (or running the learned portfolio).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortfolioRow {
    /// Evaluation cluster name (S1–S4 analogue at the bench scale).
    pub cluster: String,
    /// Strategy label: `MIP`, `CG`, `POP`, `GREEDY`, or `PORTFOLIO`.
    pub strategy: String,
    /// Normalized gained affinity achieved (0–1; higher is better).
    pub normalized: f64,
    /// End-to-end pipeline wall time, milliseconds.
    pub elapsed_ms: f64,
}

/// The `BENCH_portfolio.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PortfolioBenchArtifact {
    /// Schema version (see [`PORTFOLIO_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scale the bench ran at (`small`, `medium`, …).
    pub scale: String,
    /// Per-run solver budget, seconds.
    pub timeout_secs: f64,
    /// Every (cluster, strategy) evaluation.
    pub rows: Vec<PortfolioRow>,
    /// Mean normalized objective of the learned portfolio across clusters.
    pub portfolio_objective: f64,
    /// Mean normalized objective of the best single fixed strategy.
    pub best_fixed_objective: f64,
    /// Label of that best fixed strategy.
    pub best_fixed_strategy: String,
    /// 95th-percentile end-to-end latency of the portfolio runs, ms.
    pub portfolio_p95_ms: f64,
}

/// Thresholds for the portfolio regression gate.
#[derive(Clone, Debug)]
pub struct PortfolioCompareConfig {
    /// Allowed relative p95 latency growth, percent.
    pub latency_pct: f64,
    /// Absolute slack on top of the relative latency bound, milliseconds.
    pub abs_slack_ms: f64,
    /// Allowed absolute drop of the portfolio objective vs the baseline
    /// artifact (normalized units).
    pub objective_slack: f64,
    /// How far below the best fixed strategy the portfolio may land on the
    /// *candidate* artifact (normalized units). The acceptance bar.
    pub fixed_gap: f64,
}

impl Default for PortfolioCompareConfig {
    fn default() -> Self {
        PortfolioCompareConfig {
            latency_pct: 50.0,
            abs_slack_ms: 10.0,
            objective_slack: 0.05,
            fixed_gap: 0.01,
        }
    }
}

/// Load and schema-check a portfolio artifact from `path`.
pub fn load_portfolio_artifact(path: &str) -> Result<PortfolioBenchArtifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match extract_schema_version(&text) {
        None => Err(format!(
            "{path}: no schema_version field — regenerate with \
             `cargo run --release -p rasa-bench --bin portfolio`"
        )),
        Some(v) if v != PORTFOLIO_BENCH_SCHEMA_VERSION => Err(format!(
            "{path}: schema_version {v} but this binary compares \
             v{PORTFOLIO_BENCH_SCHEMA_VERSION} portfolio artifacts; regenerate the artifact"
        )),
        Some(_) => serde_json::from_str(&text).map_err(|e| format!("{path}: {e}")),
    }
}

/// Diff `new` against the `old` baseline under `cfg`.
///
/// Three gates: the candidate's portfolio must stay within `fixed_gap` of
/// its own best fixed strategy (the learned selector earns its keep), the
/// portfolio objective must not drop more than `objective_slack` below
/// the committed baseline, and portfolio p95 latency must stay inside the
/// relative-plus-slack bound.
pub fn compare_portfolio_artifacts(
    old: &PortfolioBenchArtifact,
    new: &PortfolioBenchArtifact,
    cfg: &PortfolioCompareConfig,
) -> CompareOutcome {
    if old.scale != new.scale {
        return CompareOutcome::Incomparable(format!(
            "scale mismatch: baseline ran at {}, candidate at {}",
            old.scale, new.scale
        ));
    }

    let mut findings = Vec::new();

    if new.portfolio_objective < new.best_fixed_objective - cfg.fixed_gap {
        findings.push(format!(
            "portfolio fell behind the best fixed strategy: {:.4} vs {} at {:.4} \
             (allowed gap {:.3})",
            new.portfolio_objective, new.best_fixed_strategy, new.best_fixed_objective,
            cfg.fixed_gap
        ));
    }

    if new.portfolio_objective < old.portfolio_objective - cfg.objective_slack {
        findings.push(format!(
            "portfolio objective regressed: {:.4} -> {:.4} (allowed drop {:.3})",
            old.portfolio_objective, new.portfolio_objective, cfg.objective_slack
        ));
    }

    let bound = old.portfolio_p95_ms * (1.0 + cfg.latency_pct / 100.0) + cfg.abs_slack_ms;
    if new.portfolio_p95_ms > bound {
        findings.push(format!(
            "portfolio p95 latency regressed: {:.1} ms -> {:.1} ms (bound {:.1} ms)",
            old.portfolio_p95_ms, new.portfolio_p95_ms, bound
        ));
    }

    if findings.is_empty() {
        CompareOutcome::Pass
    } else {
        CompareOutcome::Regressions(findings)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn base() -> PortfolioBenchArtifact {
        PortfolioBenchArtifact {
            schema_version: PORTFOLIO_BENCH_SCHEMA_VERSION,
            scale: "small".into(),
            timeout_secs: 10.0,
            rows: Vec::new(),
            portfolio_objective: 0.92,
            best_fixed_objective: 0.925,
            best_fixed_strategy: "MIP".into(),
            portfolio_p95_ms: 800.0,
        }
    }

    #[test]
    fn self_compare_passes() {
        let a = base();
        assert!(matches!(
            compare_portfolio_artifacts(&a, &a, &PortfolioCompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn portfolio_falling_behind_best_fixed_is_a_regression() {
        let old = base();
        let mut new = base();
        new.portfolio_objective = 0.80; // > 0.01 behind best fixed
        match compare_portfolio_artifacts(&old, &new, &PortfolioCompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("best fixed strategy")), "{f:?}");
                assert!(f.iter().any(|m| m.contains("objective regressed")), "{f:?}");
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn latency_blowup_is_a_regression() {
        let old = base();
        let mut new = base();
        new.portfolio_p95_ms = 5_000.0;
        match compare_portfolio_artifacts(&old, &new, &PortfolioCompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("p95 latency regressed")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn small_drift_within_slack_passes() {
        let old = base();
        let mut new = base();
        new.portfolio_objective = 0.90; // within 0.05 of the baseline
        new.best_fixed_objective = 0.905; // gap 0.005, inside fixed_gap
        new.portfolio_p95_ms = 900.0; // within 1.5x + 10 ms
        assert!(matches!(
            compare_portfolio_artifacts(&old, &new, &PortfolioCompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn scale_mismatch_is_incomparable() {
        let old = base();
        let mut new = base();
        new.scale = "full".into();
        assert!(matches!(
            compare_portfolio_artifacts(&old, &new, &PortfolioCompareConfig::default()),
            CompareOutcome::Incomparable(_)
        ));
    }
}
