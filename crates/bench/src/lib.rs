//! # rasa-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (Section V), plus criterion micro-benchmarks. See DESIGN.md
//! §5 for the full experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured outcomes.
//!
//! All binaries honor two environment variables:
//!
//! * `RASA_SCALE` — `small` (default: quick, minutes-total runs on reduced
//!   clusters) or `full` (the S1–S4 clusters of DESIGN.md §6);
//! * `RASA_TIMEOUT_SECS` — per-algorithm time-out (default 10, the scaled
//!   analogue of the paper's one minute).

use rasa_model::Problem;
use rasa_trace::{generate, s_clusters, ClusterSpec};
use std::time::Duration;

/// Benchmark scale selected via `RASA_SCALE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Reduced clusters; minutes-total runtime.
    Small,
    /// The S1–S4 analogues of Table II (DESIGN.md §6).
    Full,
}

/// Read `RASA_SCALE` (default `small`).
pub fn scale() -> Scale {
    match std::env::var("RASA_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Read `RASA_TIMEOUT_SECS` (default 10).
pub fn timeout() -> Duration {
    let secs = std::env::var("RASA_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(10);
    Duration::from_secs(secs)
}

/// The evaluation clusters for the selected scale, generated and named.
pub fn evaluation_clusters() -> Vec<(String, Problem)> {
    let specs: Vec<ClusterSpec> = match scale() {
        Scale::Full => s_clusters(),
        Scale::Small => s_clusters()
            .into_iter()
            .map(|spec| ClusterSpec {
                services: spec.services / 4,
                target_containers: spec.target_containers / 4,
                machines: spec.machines / 4,
                ..spec
            })
            .collect(),
    };
    specs
        .into_iter()
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect()
}

/// Print a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a JSON artifact under `target/experiments/` for plotting.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        if std::fs::write(&path, json).is_ok() {
            eprintln!("[artifact] {}", path.display());
        }
    }
}

/// Format a normalized value as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Format seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // (can't mutate the environment safely in parallel tests; just
        // check the default path parses)
        if std::env::var("RASA_SCALE").is_err() {
            assert_eq!(scale(), Scale::Small);
        }
    }

    #[test]
    fn small_clusters_generate_quickly() {
        let clusters = evaluation_clusters();
        assert_eq!(clusters.len(), 4);
        for (name, p) in &clusters {
            assert!(p.num_services() > 0, "{name}");
            assert!(!p.affinity_edges.is_empty(), "{name}");
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }
}

pub mod artifact;
pub mod compare;
pub mod production;
pub mod serve_artifact;

/// Train (or load from the `target/experiments` cache) the GCN selector
/// used by the RASA pipeline in the experiment binaries — the paper's
/// deployed configuration (Section IV-D). Training follows Fig 8's
/// pipeline: label T-cluster subproblems by racing CG vs MIP, then fit the
/// classifier. The cache keys on scale so `small` and `full` runs don't
/// share a model.
pub fn trained_gcn_selector() -> rasa_select::GcnSelector {
    let cache = std::path::PathBuf::from(format!(
        "target/experiments/gcn_selector_{}.json",
        match scale() {
            Scale::Full => "full",
            Scale::Small => "small",
        }
    ));
    if let Ok(cached) = rasa_select::training::load_gcn(&cache) {
        eprintln!(
            "[train] loaded cached GCN selector from {}",
            cache.display()
        );
        return cached;
    }
    let (label_limit, label_budget) = match scale() {
        Scale::Full => (120, Duration::from_secs(2)),
        Scale::Small => (40, Duration::from_millis(800)),
    };
    eprintln!("[train] labelling ≤{label_limit} T-cluster subproblems for the GCN selector…");
    let train_problems: Vec<Problem> = rasa_trace::t_clusters(900)
        .iter()
        .map(rasa_trace::generate)
        .collect();
    let data = rasa_core::generate_training_set(&train_problems, label_limit, label_budget, 7);
    let (gcn, report) = rasa_select::train_gcn(&data, 300, 0.02, 42);
    eprintln!(
        "[train] {} examples, GCN train accuracy {:.0}%",
        data.len(),
        100.0 * report.train_accuracy
    );
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = rasa_select::training::save_gcn(&gcn, &cache);
    gcn
}
