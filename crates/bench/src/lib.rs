//! # rasa-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (Section V), plus criterion micro-benchmarks. See DESIGN.md
//! §5 for the full experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured outcomes.
//!
//! All binaries honor two environment variables:
//!
//! * `RASA_SCALE` — `small` (default: quick, minutes-total runs on reduced
//!   clusters), the bench ladder `medium` / `large` / `xl` (rungs that
//!   grow toward the paper's M1–M4 container:machine ratios, see
//!   `rasa_trace` ladder specs), or `full` (the S1–S4 clusters of
//!   DESIGN.md §6);
//! * `RASA_TIMEOUT_SECS` — per-algorithm time-out (default 10, the scaled
//!   analogue of the paper's one minute).

use rasa_model::Problem;
use rasa_trace::{generate, s_clusters, ClusterSpec};
use std::time::Duration;

/// Benchmark scale selected via `RASA_SCALE` (or `--scale` where a binary
/// supports the flag). Ordered smallest to largest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Scale {
    /// Reduced clusters; minutes-total runtime. The CI smoke scale.
    Small,
    /// First ladder rung: half-scale S1/S3 analogues (M1/20, M3/2).
    Medium,
    /// Second ladder rung: the S1 + S3 pair (M1/10, M3 at full size).
    Large,
    /// Top ladder rung: the S2 + S4 pair (M2/10, M4/10) — the largest
    /// committed-baseline scale, approaching the paper's M-clusters.
    Xl,
    /// The complete S1–S4 analogues of Table II (DESIGN.md §6).
    Full,
}

impl Scale {
    /// Parse a scale name as used by `RASA_SCALE` and `--scale`
    /// (case-insensitive). Unknown names return `None` so callers can
    /// distinguish "unset" from "typo".
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            "xl" => Some(Scale::Xl),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name, as recorded in `BenchArtifact::scale`
    /// and used for per-scale cache/baseline file names.
    pub fn as_str(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::Xl => "xl",
            Scale::Full => "full",
        }
    }
}

/// Read `RASA_SCALE` (default `small`; unknown values also fall back to
/// `small`, matching the historical behavior).
pub fn scale() -> Scale {
    std::env::var("RASA_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Small)
}

/// Read `RASA_TIMEOUT_SECS` (default 10).
pub fn timeout() -> Duration {
    timeout_for(Scale::Small)
}

/// Per-run solver budget: `RASA_TIMEOUT_SECS` when set, else a
/// scale-aware default. The paper gives its M-clusters a one-minute
/// budget; the historical 10 s default is the 1/10-scale analogue, and
/// the ladder rungs step the default back up toward the paper's as the
/// clusters grow. `full` keeps 10 s (the S-clusters are 1/10 scale).
pub fn timeout_for(sc: Scale) -> Duration {
    let default_secs = match sc {
        Scale::Small | Scale::Full => 10,
        Scale::Medium => 20,
        Scale::Large => 30,
        Scale::Xl => 60,
    };
    let secs = std::env::var("RASA_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_secs);
    Duration::from_secs(secs)
}

/// The evaluation clusters for the selected scale, generated and named.
///
/// `Small` and `Medium` shrink every S-cluster by a common divisor (4 and
/// 2 respectively), preserving the container:machine ratios; `Large`,
/// `Xl`, and `Full` use the S-clusters as committed.
pub fn evaluation_clusters() -> Vec<(String, Problem)> {
    let divisor = match scale() {
        Scale::Small => 4,
        Scale::Medium => 2,
        Scale::Large | Scale::Xl | Scale::Full => 1,
    };
    let specs: Vec<ClusterSpec> = s_clusters()
        .into_iter()
        .map(|spec| ClusterSpec {
            services: spec.services / divisor as usize,
            target_containers: spec.target_containers / divisor,
            machines: spec.machines / divisor as usize,
            ..spec
        })
        .collect();
    specs
        .into_iter()
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect()
}

/// Training analogues of the evaluation clusters: the same S-cluster
/// family at the same scale divisor but with shifted seeds, so the
/// portfolio's labelling stream covers the distribution it will be
/// evaluated on without reusing the committed evaluation instances. This
/// is the bench-side stand-in for the online loop's production rounds —
/// in deployment the stream comes from the very clusters being served.
pub fn training_clusters() -> Vec<(String, Problem)> {
    let divisor = match scale() {
        Scale::Small => 4,
        Scale::Medium => 2,
        Scale::Large | Scale::Xl | Scale::Full => 1,
    };
    s_clusters()
        .into_iter()
        .map(|spec| ClusterSpec {
            name: format!("{}-train", spec.name),
            services: spec.services / divisor as usize,
            target_containers: spec.target_containers / divisor,
            machines: spec.machines / divisor as usize,
            seed: spec.seed + 500,
            ..spec
        })
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect()
}

/// Print a fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a JSON artifact under `target/experiments/` for plotting.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        if std::fs::write(&path, json).is_ok() {
            eprintln!("[artifact] {}", path.display());
        }
    }
}

/// Format a normalized value as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// Format seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        // (can't mutate the environment safely in parallel tests; just
        // check the default path parses)
        if std::env::var("RASA_SCALE").is_err() {
            assert_eq!(scale(), Scale::Small);
        }
    }

    #[test]
    fn small_clusters_generate_quickly() {
        let clusters = evaluation_clusters();
        assert_eq!(clusters.len(), 4);
        for (name, p) in &clusters {
            assert!(p.num_services() > 0, "{name}");
            assert!(!p.affinity_edges.is_empty(), "{name}");
        }
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn scale_names_round_trip() {
        for s in [Scale::Small, Scale::Medium, Scale::Large, Scale::Xl, Scale::Full] {
            assert_eq!(Scale::parse(s.as_str()), Some(s));
        }
        assert_eq!(Scale::parse("XL"), Some(Scale::Xl));
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("gigantic"), None);
    }

    #[test]
    fn ladder_is_ordered_by_size() {
        assert!(Scale::Small < Scale::Medium);
        assert!(Scale::Medium < Scale::Large);
        assert!(Scale::Large < Scale::Xl);
        assert!(Scale::Xl < Scale::Full);
    }
}

pub mod artifact;
pub mod compare;
pub mod portfolio_artifact;
pub mod production;
pub mod serve_artifact;

/// How many T-cluster subproblems to label (and the per-label race
/// budget) when training the learned selectors at the current scale.
/// Ladder rungs interpolate between the `small` and `full` settings.
pub fn labelling_budget() -> (usize, Duration) {
    match scale() {
        Scale::Small => (40, Duration::from_millis(800)),
        Scale::Medium => (60, Duration::from_secs(1)),
        Scale::Large => (90, Duration::from_millis(1_500)),
        Scale::Xl | Scale::Full => (120, Duration::from_secs(2)),
    }
}

/// Train (or load from the `target/experiments` cache) the GCN selector
/// used by the RASA pipeline in the experiment binaries — the paper's
/// deployed configuration (Section IV-D). Training follows Fig 8's
/// pipeline: label T-cluster subproblems by racing CG vs MIP, then fit the
/// classifier. The cache keys on scale so `small` and `full` runs don't
/// share a model.
pub fn trained_gcn_selector() -> rasa_select::GcnSelector {
    let cache = std::path::PathBuf::from(format!(
        "target/experiments/gcn_selector_{}.json",
        scale().as_str()
    ));
    if let Ok(cached) = rasa_select::training::load_gcn(&cache) {
        eprintln!(
            "[train] loaded cached GCN selector from {}",
            cache.display()
        );
        return cached;
    }
    let (label_limit, label_budget) = labelling_budget();
    eprintln!("[train] labelling ≤{label_limit} T-cluster subproblems for the GCN selector…");
    let train_problems: Vec<Problem> = rasa_trace::t_clusters(900)
        .iter()
        .map(rasa_trace::generate)
        .collect();
    let data = rasa_core::generate_training_set(&train_problems, label_limit, label_budget, 7);
    let (gcn, report) = rasa_select::train_gcn(&data, 300, 0.02, 42);
    eprintln!(
        "[train] {} examples, GCN train accuracy {:.0}%",
        data.len(),
        100.0 * report.train_accuracy
    );
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = rasa_select::training::save_gcn(&gcn, &cache);
    gcn
}
