//! Shared driver for the production-deployment figures (11, 12, 13):
//! set up the churning cluster, run the WITH/WITHOUT-RASA arms, and
//! normalize series the way the paper does (max value = 1.0).

use rasa_baselines::Original;
use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_sim::{run_production_experiment, CronJobConfig, ExperimentConfig, ExperimentReport};
use rasa_solver::Scheduler;
use rasa_trace::{generate, ClusterSpec};
use std::time::Duration;

/// Build the production-experiment cluster and report for the current
/// scale settings.
pub fn run_production(seed: u64) -> (rasa_model::Problem, ExperimentReport, ExperimentConfig) {
    // services/containers/machines per scale; the ladder rungs step the
    // churning cluster up toward the `full` production analogue
    let (services, target_containers, machines, machine_types) = match crate::scale() {
        crate::Scale::Small => (60, 280, 16, 2),
        crate::Scale::Medium => (100, 520, 22, 2),
        crate::Scale::Large => (150, 840, 36, 3),
        crate::Scale::Xl | crate::Scale::Full => (200, 1200, 50, 3),
    };
    let spec = ClusterSpec {
        name: "prod".into(),
        services,
        target_containers,
        machines,
        machine_types,
        seed,
        ..Default::default()
    };
    let problem = generate(&spec);
    let initial = Original.schedule(&problem, Deadline::none()).placement;
    let config = ExperimentConfig {
        ticks: 48, // one simulated day of half-hour CronJob ticks
        churn_fraction: 0.05,
        tracked_pairs: 4,
        cron: CronJobConfig {
            optimizer_budget: crate::timeout().min(Duration::from_secs(5)),
            ..Default::default()
        },
        seed,
        ..Default::default()
    };
    let rasa = RasaPipeline::new(RasaConfig::default());
    let report = run_production_experiment(&problem, &initial, &rasa, &config);
    (problem, report, config)
}

/// Normalize a set of series jointly so their overall max is 1.0 (the
/// paper normalizes each metric's plots to a max of 1.0).
pub fn normalize_joint(series: &[&[f64]]) -> Vec<Vec<f64>> {
    let max = series
        .iter()
        .flat_map(|s| s.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    series
        .iter()
        .map(|s| s.iter().map(|v| v / max).collect())
        .collect()
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
