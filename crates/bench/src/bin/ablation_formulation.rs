//! **DESIGN.md §7 ablation** — exact per-machine vs machine-group
//! aggregated formulation: model bound, realized schedule, and solve time
//! on partition-sized subproblems.
//!
//! Quantifies the trade the paper's `a_{s,s',g}` aggregation makes: the
//! aggregated model is much smaller (and so much faster under a deadline)
//! but its bound can over-promise what any per-machine placement realizes;
//! the exact model realizes its bound by construction but only fits small
//! subproblems.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_bench::{evaluation_clusters, print_table, save_json, timeout};
use rasa_core::Deadline;
use rasa_model::gained_affinity;
use rasa_partition::{multi_stage_partition, PartitionConfig};
use rasa_solver::{FormulationKind, RasaFormulation};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    cluster: String,
    subproblem: usize,
    services: usize,
    machines: usize,
    kind: &'static str,
    model_rows: usize,
    bound: f64,
    realized: f64,
    secs: f64,
}

fn main() {
    let budget = timeout();
    let mut artifacts: Vec<Row> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        let mut rng = StdRng::seed_from_u64(0);
        let partition =
            multi_stage_partition(&problem, None, &PartitionConfig::default(), &mut rng);
        for (i, sub) in partition.subproblems.iter().enumerate().take(3) {
            if sub.problem.affinity_edges.is_empty() {
                continue;
            }
            for kind in [FormulationKind::PerMachine, FormulationKind::MachineGroup] {
                let f = RasaFormulation::build(&sub.problem, kind, false);
                let start = Instant::now();
                let sol = f
                    .mip()
                    .solve_with(&rasa_mip::MipOptions::default(), Deadline::after(budget));
                let secs = start.elapsed().as_secs_f64();
                let realized = if sol.has_incumbent() {
                    let placement = f.extract_placement(&sub.problem, &sol.x);
                    gained_affinity(&sub.problem, &placement)
                } else {
                    0.0
                };
                artifacts.push(Row {
                    cluster: name.clone(),
                    subproblem: i,
                    services: sub.problem.num_services(),
                    machines: sub.problem.num_machines(),
                    kind: match kind {
                        FormulationKind::PerMachine => "exact",
                        FormulationKind::MachineGroup => "aggregated",
                    },
                    model_rows: f.mip().num_rows(),
                    bound: sol.best_bound,
                    realized,
                    secs,
                });
            }
        }
    }

    println!(
        "Formulation ablation (exact vs aggregated), {}s budget\n",
        budget.as_secs()
    );
    let rows: Vec<Vec<String>> = artifacts
        .iter()
        .map(|r| {
            vec![
                format!("{}#{}", r.cluster, r.subproblem),
                format!("{}s/{}m", r.services, r.machines),
                r.kind.to_string(),
                r.model_rows.to_string(),
                format!("{:.1}", r.bound),
                format!("{:.1}", r.realized),
                format!("{:.2}", r.secs),
            ]
        })
        .collect();
    print_table(
        &[
            "subproblem",
            "size",
            "model",
            "rows",
            "bound",
            "realized",
            "secs",
        ],
        &rows,
    );
    // headline: how much does aggregation over-promise?
    let mut over_promise: Vec<f64> = Vec::new();
    for r in artifacts.iter().filter(|r| r.kind == "aggregated") {
        if r.bound > 0.0 && r.realized > 0.0 {
            over_promise.push((r.bound - r.realized) / r.bound);
        }
    }
    if !over_promise.is_empty() {
        let mean = over_promise.iter().sum::<f64>() / over_promise.len() as f64;
        println!(
            "\naggregated model over-promise (bound − realized)/bound: mean {:.1}%",
            100.0 * mean
        );
    }
    save_json("ablation_formulation", &artifacts);
}
