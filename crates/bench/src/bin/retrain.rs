//! **retrain** — offline portfolio-selector retraining from a persisted
//! selection-sample stream, producing a saved model and a holdout regret
//! report (the artifact CI uploads).
//!
//! The input is the JSONL stream the pipeline's online loop accumulates
//! (`SampleLog` → `rasa_trace::save_jsonl`) — by default the one the
//! portfolio bench writes to `target/experiments/selection_samples.jsonl`.
//! When the stream file is missing, the binary bootstraps one by racing
//! all four pool arms on training subproblems (the same full-feedback
//! labelling the bench uses), so `cargo run -p rasa-bench --bin retrain`
//! works from a clean checkout.
//!
//! Usage:
//!
//! ```text
//! retrain [--samples STREAM.jsonl] [--out MODEL.json] [--holdout FRAC] [--seed N]
//! ```
//!
//! Outputs: the fitted model at `--out` (default
//! `target/experiments/portfolio_selector.json`) and the regret report at
//! `target/experiments/retrain_regret.json`.

use rasa_bench::{labelling_budget, save_json, training_clusters};
use rasa_core::training_subproblems;
use rasa_model::Problem;
use rasa_select::{label_portfolio, retrain_from_samples, SelectionSample};
use rasa_trace::{generate, load_jsonl, save_jsonl, t_clusters};
use std::path::Path;

/// Shard count for the POP rung during bootstrap labelling — matches
/// `RasaConfig::default().pop.parts`.
const POP_PARTS: usize = 4;
/// Bootstrap labelling cap (each label races all four arms).
const LABEL_CAP: usize = 48;

fn bootstrap_samples(stream_path: &Path) -> Vec<SelectionSample> {
    // Same budget-matched, stratified labelling as the portfolio bench:
    // race arms at the per-subproblem slice deployed runs grant, over
    // subproblems drawn evenly from the T-clusters and the shifted-seed
    // evaluation-family clusters (see `bin/portfolio.rs`).
    let (label_limit, quick_budget) = labelling_budget();
    let label_budget = quick_budget.max(rasa_bench::timeout() / 4);
    let limit = label_limit.min(LABEL_CAP);
    eprintln!(
        "[bootstrap] no sample stream at {} — labelling ≤{limit} training subproblems…",
        stream_path.display()
    );
    let mut problems: Vec<Problem> = t_clusters(900).iter().map(generate).collect();
    problems.extend(training_clusters().into_iter().map(|(_, p)| p));
    let per_problem = limit.div_ceil(problems.len()).max(1);
    let subs: Vec<Problem> = problems
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            training_subproblems(std::slice::from_ref(p), per_problem, 7 + pi as u64)
        })
        .take(limit)
        .collect();
    let samples: Vec<SelectionSample> = subs
        .iter()
        .enumerate()
        .flat_map(|(i, sub)| {
            label_portfolio(sub, label_budget, POP_PARTS, 900 + i as u64).into_samples()
        })
        .collect();
    let _ = std::fs::create_dir_all("target/experiments");
    match save_jsonl(&samples, stream_path) {
        Ok(()) => eprintln!("[artifact] {}", stream_path.display()),
        Err(e) => eprintln!("[bootstrap] stream not persisted: {e}"),
    }
    samples
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples_path = "target/experiments/selection_samples.jsonl".to_string();
    let mut out_path = "target/experiments/portfolio_selector.json".to_string();
    let mut holdout = 0.25f64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match (args.get(i).map(String::as_str), args.get(i + 1)) {
            (Some("--samples"), Some(v)) => {
                samples_path = v.clone();
                i += 2;
            }
            (Some("--out"), Some(v)) => {
                out_path = v.clone();
                i += 2;
            }
            (Some("--holdout"), Some(v)) => {
                holdout = v.parse().unwrap_or(holdout);
                i += 2;
            }
            (Some("--seed"), Some(v)) => {
                seed = v.parse().unwrap_or(seed);
                i += 2;
            }
            (Some(other), _) => {
                eprintln!(
                    "unknown flag {other}\nusage: retrain [--samples STREAM.jsonl] \
                     [--out MODEL.json] [--holdout FRAC] [--seed N]"
                );
                std::process::exit(1);
            }
            (None, _) => break,
        }
    }

    let stream = Path::new(&samples_path);
    let samples: Vec<SelectionSample> = if stream.is_file() {
        match load_jsonl(stream) {
            Ok(s) => {
                eprintln!("[load] {} samples from {}", s.len(), stream.display());
                s
            }
            Err(e) => {
                eprintln!("retrain: loading {samples_path} failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        bootstrap_samples(stream)
    };
    if samples.is_empty() {
        eprintln!("retrain: the sample stream is empty — nothing to fit");
        std::process::exit(1);
    }

    let (selector, report) = retrain_from_samples(&samples, holdout, 1e-3, seed);

    println!(
        "retrain: {} train / {} holdout samples (seed {seed})",
        report.train_samples, report.holdout_samples
    );
    println!(
        "  policy value      {:.4}\n  always-MIP value  {:.4}\n  best fixed        {:.4} ({})\n  estimated regret  {:.4}",
        report.policy_value, report.always_mip_value, report.best_fixed_value,
        report.best_fixed_arm, report.estimated_regret
    );
    println!("  arm counts (CG, MIP, POP, GREEDY): {:?}", report.arm_counts);

    if let Some(dir) = Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = selector.save(Path::new(&out_path)) {
        eprintln!("retrain: saving model to {out_path} failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    save_json("retrain_regret", &report);
}
