//! **§III-B text claims** — each executed reallocation touches under 5% of
//! the cluster's containers, and the half-hourly CronJob dry-runs most of
//! the time (real reallocations happen "only a few times a day").

use rasa_bench::production::run_production;
use rasa_bench::{print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    ticks: usize,
    migrations: usize,
    dry_runs: usize,
    max_moved_fraction: f64,
    mean_moved_fraction: f64,
}

fn main() {
    let (_problem, report, config) = run_production(33);
    let dry_runs = config.ticks - report.migrations;
    let max_frac = report
        .moves_per_migration_fraction
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let mean_frac = if report.moves_per_migration_fraction.is_empty() {
        0.0
    } else {
        report.moves_per_migration_fraction.iter().sum::<f64>()
            / report.moves_per_migration_fraction.len() as f64
    };

    println!("§III-B — churn discipline over one simulated day\n");
    print_table(
        &["metric", "value", "paper claim"],
        &[
            vec![
                "CronJob ticks".into(),
                config.ticks.to_string(),
                "48/day (half-hourly)".into(),
            ],
            vec![
                "executed migrations".into(),
                report.migrations.to_string(),
                "a few times a day".into(),
            ],
            vec!["dry-runs".into(), dry_runs.to_string(), "the rest".into()],
            vec![
                "max containers moved".into(),
                format!("{:.1}%", 100.0 * max_frac),
                "<5%".into(),
            ],
            vec![
                "mean containers moved".into(),
                format!("{:.1}%", 100.0 * mean_frac),
                "—".into(),
            ],
        ],
    );
    let few_migrations = report.migrations <= config.ticks / 4;
    println!(
        "\nclaims: migrations ≪ ticks → {} | moved fraction < 5%+slack → {}",
        if few_migrations {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        },
        if max_frac < 0.10 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    save_json(
        "ablation_churn",
        &Summary {
            ticks: config.ticks,
            migrations: report.migrations,
            dry_runs,
            max_moved_fraction: max_frac,
            mean_moved_fraction: mean_frac,
        },
    );
}
