//! **Fig 13** — QPS-weighted end-to-end latency and error rate across all
//! optimized services in production.
//!
//! Headline numbers to approximate: WITH RASA improves weighted latency by
//! 23.75% and weighted error rate by 24.09% over WITHOUT RASA; the gap to
//! ONLY COLLOCATED stays under ~10% absolute.

use rasa_bench::production::{mean, normalize_joint, run_production};
use rasa_bench::{print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    latency_improvement: f64,
    error_improvement: f64,
    gap_to_collocated_latency: f64,
    gap_to_collocated_error: f64,
    migrations: usize,
    total_moves: usize,
    max_moved_fraction: f64,
}

fn main() {
    let (_problem, report, config) = run_production(13);
    println!(
        "Fig 13 — QPS-weighted cluster-wide metrics over {} half-hour ticks\n",
        config.ticks
    );

    let lat = normalize_joint(&[
        &report.weighted_latency_with,
        &report.weighted_latency_without,
        &report.weighted_latency_collocated,
    ]);
    let err = normalize_joint(&[
        &report.weighted_error_with,
        &report.weighted_error_without,
        &report.weighted_error_collocated,
    ]);
    let rows = vec![
        vec![
            "latency".to_string(),
            format!("{:.3}", mean(&lat[0])),
            format!("{:.3}", mean(&lat[1])),
            format!("{:.3}", mean(&lat[2])),
            format!("{:.1}%", 100.0 * report.latency_improvement()),
            "23.75%".to_string(),
        ],
        vec![
            "error rate".to_string(),
            format!("{:.3}", mean(&err[0])),
            format!("{:.3}", mean(&err[1])),
            format!("{:.3}", mean(&err[2])),
            format!("{:.1}%", 100.0 * report.error_improvement()),
            "24.09%".to_string(),
        ],
    ];
    print_table(
        &[
            "metric",
            "WITH RASA",
            "WITHOUT",
            "ONLY COLLOC.",
            "improvement",
            "paper",
        ],
        &rows,
    );

    let gap_lat = mean(&lat[0]) - mean(&lat[2]);
    let gap_err = mean(&err[0]) - mean(&err[2]);
    println!(
        "\nabsolute gap WITH-RASA → ONLY-COLLOCATED: latency {:.3}, error {:.3} (paper: <0.10)",
        gap_lat, gap_err
    );
    let max_frac = report
        .moves_per_migration_fraction
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    println!(
        "churn: {} migrations, {} container moves total; largest migration touched {:.1}% of containers (paper: <5%)",
        report.migrations,
        report.total_moves,
        100.0 * max_frac
    );
    save_json(
        "fig13_weighted",
        &Summary {
            latency_improvement: report.latency_improvement(),
            error_improvement: report.error_improvement(),
            gap_to_collocated_latency: gap_lat,
            gap_to_collocated_error: gap_err,
            migrations: report.migrations,
            total_moves: report.total_moves,
            max_moved_fraction: max_frac,
        },
    );
}
