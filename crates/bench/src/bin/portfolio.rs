//! **BENCH_portfolio** — the learned portfolio selector vs every fixed
//! single-strategy baseline, plus the `--compare` regression gate CI runs
//! against the committed `BENCH_portfolio.json` baseline.
//!
//! Bench mode follows the online loop end to end:
//!
//! 1. **label** — collect subproblems from the T-clusters and from
//!    shifted-seed evaluation-family clusters, and race all four pool
//!    arms (MIP / CG / POP / greedy) on each, producing the full-feedback
//!    selection-sample stream;
//! 2. **persist** — write the stream as JSONL (the same format sessions
//!    persist through `rasa-trace`), so the `retrain` binary can re-fit
//!    offline from this exact data;
//! 3. **retrain** — fit the portfolio selector with a holdout split and
//!    record the regret report;
//! 4. **evaluate** — run the full RASA pipeline on the evaluation
//!    clusters with the selector pinned to each fixed strategy and with
//!    the learned portfolio, recording objective and wall time.
//!
//! Shape to reproduce: the portfolio stays within a point of the best
//! fixed strategy on mean objective (it may *beat* every fixed arm when
//! clusters disagree about the best algorithm) without a latency blowup.
//!
//! Compare mode (`--compare OLD.json NEW.json [--threshold-pct P]
//! [--abs-slack-ms S]`) diffs two artifacts and exits 0 (no regression),
//! 2 (regression found), or 3 (artifacts incomparable).
//!
//! Environment (bench mode): `RASA_PORTFOLIO_BENCH_OUT` — artifact path
//! (default `BENCH_portfolio.json`).

use rasa_bench::compare::CompareOutcome;
use rasa_bench::portfolio_artifact::{
    compare_portfolio_artifacts, load_portfolio_artifact, PortfolioBenchArtifact,
    PortfolioCompareConfig, PortfolioRow, PORTFOLIO_BENCH_SCHEMA_VERSION,
};
use rasa_bench::serve_artifact::LatencySummary;
use rasa_bench::{
    evaluation_clusters, labelling_budget, pct, print_table, save_json, scale, timeout,
    training_clusters,
};
use rasa_core::{
    training_subproblems, Deadline, RasaConfig, RasaPipeline, Scheduler, SelectorChoice,
};
use rasa_model::Problem;
use rasa_select::{label_portfolio, retrain_from_samples, SelectionSample};
use rasa_trace::{generate, save_jsonl, t_clusters};
use std::path::Path;

/// Shard count for the POP rung during labelling — matches
/// `RasaConfig::default().pop.parts` so labels are on-policy.
const POP_PARTS: usize = 4;
/// Cap on labelled subproblems: full-feedback labels race all four arms,
/// so each label costs ~4x a binary CG-vs-MIP label.
const LABEL_CAP: usize = 48;

/// The labelling pool: the T-clusters (the paper's disjoint training set)
/// plus shifted-seed evaluation-family clusters, with subproblems drawn
/// evenly from every problem. Stratifying matters: `training_subproblems`
/// fills its limit from the first problems it visits, and a stream drawn
/// from one corner of the distribution mis-ranks the anytime arms
/// everywhere else.
fn labelling_pool(limit: usize) -> Vec<Problem> {
    let mut problems: Vec<Problem> = t_clusters(900).iter().map(generate).collect();
    problems.extend(training_clusters().into_iter().map(|(_, p)| p));
    let per_problem = limit.div_ceil(problems.len()).max(1);
    problems
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            training_subproblems(std::slice::from_ref(p), per_problem, 7 + pi as u64)
        })
        .take(limit)
        .collect()
}

fn compare_mode(args: &[String]) -> ! {
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(o), Some(n)) => (o.clone(), n.clone()),
        _ => {
            eprintln!(
                "usage: portfolio --compare OLD.json NEW.json [--threshold-pct P] [--abs-slack-ms S]"
            );
            std::process::exit(1);
        }
    };
    let mut cfg = PortfolioCompareConfig::default();
    let mut i = 2;
    while i < args.len() {
        match (args.get(i).map(String::as_str), args.get(i + 1)) {
            (Some("--threshold-pct"), Some(v)) => {
                cfg.latency_pct = v.parse().unwrap_or(cfg.latency_pct);
                i += 2;
            }
            (Some("--abs-slack-ms"), Some(v)) => {
                cfg.abs_slack_ms = v.parse().unwrap_or(cfg.abs_slack_ms);
                i += 2;
            }
            (Some(other), _) => {
                eprintln!("unknown compare flag {other}");
                std::process::exit(1);
            }
            (None, _) => break,
        }
    }
    let old = load_portfolio_artifact(&old_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let new = load_portfolio_artifact(&new_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    match compare_portfolio_artifacts(&old, &new, &cfg) {
        CompareOutcome::Pass => {
            println!("portfolio compare: PASS ({old_path} vs {new_path})");
            std::process::exit(0);
        }
        CompareOutcome::Regressions(findings) => {
            eprintln!("portfolio compare: {} regression(s):", findings.len());
            for f in &findings {
                eprintln!("  - {f}");
            }
            std::process::exit(2);
        }
        CompareOutcome::Incomparable(reason) => {
            eprintln!("portfolio compare: incomparable — {reason}");
            std::process::exit(3);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        compare_mode(&args[1..]);
    }

    let budget = timeout();

    // ---- label: full-feedback samples from the T-clusters ----
    // Race the arms at the per-subproblem slice evaluation runs actually
    // grant (the global budget split over a typical handful of
    // subproblems), not the quick binary-labelling budget: labelling the
    // anytime solvers at a fraction of the deployed budget systematically
    // understates them and teaches the selector to over-route to the
    // fast lossy arms.
    let (label_limit, quick_budget) = labelling_budget();
    let label_budget = quick_budget.max(budget / 4);
    let limit = label_limit.min(LABEL_CAP);
    eprintln!("[label] racing all four arms on ≤{limit} training subproblems…");
    let subs = labelling_pool(limit);
    let samples: Vec<SelectionSample> = subs
        .iter()
        .enumerate()
        .flat_map(|(i, sub)| {
            label_portfolio(sub, label_budget, POP_PARTS, 900 + i as u64).into_samples()
        })
        .collect();
    eprintln!(
        "[label] {} samples from {} subproblems",
        samples.len(),
        subs.len()
    );

    // ---- persist the stream (the retrain binary's input) ----
    let _ = std::fs::create_dir_all("target/experiments");
    let stream_path = Path::new("target/experiments/selection_samples.jsonl");
    match save_jsonl(&samples, stream_path) {
        Ok(()) => eprintln!("[artifact] {}", stream_path.display()),
        Err(e) => {
            eprintln!("portfolio bench: writing sample stream failed: {e}");
            std::process::exit(1);
        }
    }

    // ---- retrain the portfolio selector with a holdout ----
    let (selector, report) = retrain_from_samples(&samples, 0.25, 1e-3, 42);
    eprintln!(
        "[retrain] {} train / {} holdout — policy {:.4}, always-MIP {:.4}, \
         best fixed {} at {:.4}, regret {:.4}",
        report.train_samples,
        report.holdout_samples,
        report.policy_value,
        report.always_mip_value,
        report.best_fixed_arm,
        report.best_fixed_value,
        report.estimated_regret
    );
    save_json("portfolio_regret", &report);

    // ---- evaluate fixed strategies vs the learned portfolio ----
    let strategies: Vec<SelectorChoice> = vec![
        SelectorChoice::AlwaysMip,
        SelectorChoice::AlwaysCg,
        SelectorChoice::AlwaysPop,
        SelectorChoice::AlwaysGreedy,
        SelectorChoice::Portfolio(selector),
    ];
    let mut rows: Vec<PortfolioRow> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        for strategy in &strategies {
            let label = strategy.label().to_string();
            let pipeline = RasaPipeline::new(RasaConfig {
                selector: strategy.clone(),
                ..Default::default()
            });
            let out = pipeline.schedule(&problem, Deadline::after(budget));
            eprintln!(
                "[{name}] {label:<10} nga={} in {:.0} ms",
                pct(out.normalized_gained_affinity),
                out.elapsed.as_secs_f64() * 1e3
            );
            rows.push(PortfolioRow {
                cluster: name.clone(),
                strategy: label,
                normalized: out.normalized_gained_affinity,
                elapsed_ms: out.elapsed.as_secs_f64() * 1e3,
            });
        }
    }

    // ---- aggregate ----
    let mean_of = |label: &str| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.strategy == label)
            .map(|r| r.normalized)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let portfolio_objective = mean_of("PORTFOLIO");
    let (best_fixed_strategy, best_fixed_objective) = ["MIP", "CG", "POP", "GREEDY"]
        .iter()
        .map(|s| (s.to_string(), mean_of(s)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or(("MIP".to_string(), 0.0));
    let portfolio_latencies: Vec<f64> = rows
        .iter()
        .filter(|r| r.strategy == "PORTFOLIO")
        .map(|r| r.elapsed_ms)
        .collect();
    let portfolio_p95_ms = LatencySummary::from_samples(&portfolio_latencies).p95_ms;

    // ---- report ----
    println!(
        "\nPortfolio vs fixed strategies ({}s time-out, {} scale)\n",
        budget.as_secs(),
        scale().as_str()
    );
    let clusters: Vec<String> = {
        let mut v: Vec<String> = rows.iter().map(|r| r.cluster.clone()).collect();
        v.dedup();
        v
    };
    let mut table = Vec::new();
    for strategy in &strategies {
        let label = strategy.label();
        let mut row = vec![label.to_string()];
        for cluster in &clusters {
            let v = rows
                .iter()
                .find(|r| &r.cluster == cluster && r.strategy == label)
                .map(|r| r.normalized)
                .unwrap_or(0.0);
            row.push(pct(v));
        }
        row.push(pct(mean_of(label)));
        table.push(row);
    }
    let mut headers = vec!["strategy"];
    headers.extend(clusters.iter().map(String::as_str));
    headers.push("mean");
    print_table(&headers, &table);

    println!(
        "\nportfolio mean {} vs best fixed {} ({}) — p95 {:.0} ms",
        pct(portfolio_objective),
        pct(best_fixed_objective),
        best_fixed_strategy,
        portfolio_p95_ms
    );
    println!(
        "shape check (portfolio within 1 point of best fixed): {}",
        if portfolio_objective >= best_fixed_objective - 0.01 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );

    for r in &rows {
        if !r.normalized.is_finite() {
            eprintln!(
                "portfolio bench: non-finite objective for {} on {}",
                r.strategy, r.cluster
            );
            std::process::exit(1);
        }
    }

    let artifact = PortfolioBenchArtifact {
        schema_version: PORTFOLIO_BENCH_SCHEMA_VERSION,
        scale: scale().as_str().to_string(),
        timeout_secs: budget.as_secs_f64(),
        rows,
        portfolio_objective,
        best_fixed_objective,
        best_fixed_strategy,
        portfolio_p95_ms,
    };
    save_json("portfolio", &artifact);

    let out = std::env::var("RASA_PORTFOLIO_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_portfolio.json".into());
    let json = match serde_json::to_string_pretty(&artifact) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("portfolio bench: artifact serialization failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("portfolio bench: writing {out} failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
