//! **Table II** — scales of the experimental datasets.
//!
//! Prints the generated S-clusters' scales next to the paper's M-clusters
//! so the preserved ratios are visible (DESIGN.md §6 documents the 1/10
//! scaling; M3→S3 is kept 1:1).

use rasa_bench::{evaluation_clusters, print_table, save_json};

fn main() {
    // the paper's Table II for reference
    let paper = [
        ("M1", 5_904u64, 25_640u64, 977u64),
        ("M2", 10_180, 152_833, 5_284),
        ("M3", 547, 3_485, 96),
        ("M4", 10_682, 113_261, 4_365),
    ];
    println!("Paper Table II (ByteDance production traces):");
    print_table(
        &["cluster", "#service", "#container", "#machine"],
        &paper
            .iter()
            .map(|(n, s, c, m)| vec![n.to_string(), s.to_string(), c.to_string(), m.to_string()])
            .collect::<Vec<_>>(),
    );

    println!("\nGenerated analogues (this reproduction):");
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (name, problem) in evaluation_clusters() {
        let st = problem.stats();
        rows.push(vec![
            name.clone(),
            st.services.to_string(),
            st.containers.to_string(),
            st.machines.to_string(),
            st.edges.to_string(),
            st.machine_groups.to_string(),
        ]);
        artifacts.push((name, st));
    }
    print_table(
        &[
            "cluster",
            "#service",
            "#container",
            "#machine",
            "#edges",
            "#sku",
        ],
        &rows,
    );
    save_json("table2_datasets", &artifacts);
}
