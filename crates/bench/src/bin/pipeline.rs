//! **BENCH_pipeline** — end-to-end pipeline benchmark with solver
//! telemetry, the smoke artifact CI uploads on every push — plus the
//! `--compare` regression gate CI runs against the committed baseline.
//!
//! Bench mode runs the full partition → select → solve → combine pipeline
//! on seeded traces, once with the default heuristic selector and once
//! forcing column generation (so the CG counters are exercised even where
//! the heuristic would route everything to MIP). The trace set follows
//! the scale — `--scale NAME` on the command line, else `RASA_SCALE`:
//!
//! * `small` (default) — four tiny clusters, fast enough for a CI smoke
//!   job and comfortably inside the solver deadline;
//! * `medium` / `large` / `xl` — the M-ratio bench ladder
//!   (`rasa_trace::medium_clusters` and friends): rungs that preserve the
//!   paper's Table II container:machine ratios while growing from
//!   half-scale S1/S3 analogues up to the S2+S4 pair. Each rung has a
//!   committed baseline (`BENCH_pipeline_<scale>.json`) for `--compare`;
//! * `full` — the T-clusters.
//!
//! Then emits:
//!
//! * `BENCH_pipeline.json` (schema v2, see `rasa_bench::artifact`):
//!   per-stage latency percentiles (p50/p95/p99 plus the exact max from
//!   the `rasa-obs` histograms), every solver counter (simplex pivots,
//!   branch-and-bound nodes, CG pricing rounds, guard status tallies),
//!   cold-vs-warm round records, and the flight-recorder overhead
//!   measurement;
//! * `BENCH_pipeline.prom` — the same counters/histograms in Prometheus
//!   text exposition format, HELP/TYPE sourced from `docs/METRICS.md`.
//!
//! Each (trace, selector) pair is optimized for `--rounds N` consecutive
//! rounds (default 3) sharing one [`SolveCache`]: round 1 is the cold
//! solve, later rounds warm-start from the cache, and the artifact records
//! cold-vs-warm per-round latency plus cache hit/miss/invalidation tallies.
//!
//! Compare mode (`--compare OLD.json NEW.json [--threshold-pct P]
//! [--abs-slack-ms S] [--counter-factor F]`) diffs two artifacts and exits
//! 0 (no regression), 2 (regression found), or 3 (artifacts incomparable);
//! schema-version mismatches are rejected with a clear error. See
//! `rasa_bench::compare`. `--counter-factor` widens the hot-counter
//! explosion bound — needed for cross-machine ladder-rung gates, where
//! anytime solvers do wall-clock-proportional work.
//!
//! Environment (bench mode):
//!
//! * `RASA_BENCH_OUT` — artifact path (default `BENCH_pipeline.json`);
//!   the `.prom` exposition lands next to it;
//! * `RASA_BENCH_STRICT` — unset or `1`: exit nonzero when any subproblem
//!   reports a degraded [`SolveStatus`], a hot-path counter (simplex
//!   pivots, B&B nodes, CG rounds) stayed at zero, a warm round's
//!   objective drifts from its cold round, the warm p50 latency exceeds
//!   0.7× the cold p50, the Prometheus exposition hits an undocumented
//!   metric, or the flight recorder costs more than 5% at 1-in-N
//!   sampling; `0`: report only. On the ladder rungs budget exhaustion
//!   (`deadline_expired`) is expected anytime-solver behavior, not a
//!   failure, and the warm-determinism/speedup checks skip
//!   deadline-truncated runs (their results are wall-clock-dependent);
//! * `RASA_BENCH_ROUNDS` — rounds per (trace, selector); the `--rounds N`
//!   CLI flag takes precedence; default 3, minimum 1;
//! * `RASA_BENCH_OVERHEAD` — `0` skips the recorder-overhead measurement;
//! * `RASA_FLIGHT_DIR` / `RASA_FLIGHT_SAMPLE` / `RASA_FLIGHT_MAX_DUMPS` —
//!   enable the flight recorder for the main bench runs (off by default);
//! * `RASA_SCALE` / `RASA_TIMEOUT_SECS` — as for every rasa-bench binary,
//!   except the ladder rungs raise the *default* budget (medium 20 s,
//!   large 30 s, xl 60 s) toward the paper's one-minute M-cluster budget;
//!   an explicit `RASA_TIMEOUT_SECS` still wins.

use rasa_bench::artifact::{
    median, BenchArtifact, RecorderOverhead, RoundRecord, RunRecord, StageLatency,
    WarmStartSummary, BENCH_SCHEMA_VERSION,
};
use rasa_bench::compare::{compare_artifacts, load_artifact, CompareConfig, CompareOutcome};
use rasa_bench::{print_table, scale, timeout_for, Scale};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice, SolveCache, SolveStatus};
use rasa_model::Problem;
use rasa_obs::FlightConfig;
use rasa_trace::{generate, large_clusters, medium_clusters, t_clusters, tiny_cluster, xl_clusters};
use std::time::{Duration, Instant};

/// `--scale NAME` from the CLI (takes precedence over `RASA_SCALE`).
/// Unknown names abort loudly instead of silently benchmarking `small`.
fn cli_scale(args: &[String]) -> Option<Scale> {
    let name = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))?;
    match Scale::parse(name) {
        Some(s) => Some(s),
        None => {
            eprintln!("error: unknown --scale {name:?} (small|medium|large|xl|full)");
            std::process::exit(1);
        }
    }
}

/// `--rounds N` from the CLI, else `RASA_BENCH_ROUNDS`, else 3.
fn rounds_per_run() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let from_cli = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    from_cli
        .or_else(|| {
            std::env::var("RASA_BENCH_ROUNDS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(3)
        .max(1)
}

fn status_key(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Ok => "ok",
        SolveStatus::DeadlineExpired => "deadline_expired",
        SolveStatus::Panicked => "panicked",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::FellBackTo(_) => "fell_back",
    }
}

/// Parse `--flag V` as an `f64` anywhere in `args`.
fn float_flag(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// `--compare OLD NEW`: diff two artifacts, print findings, exit
/// 0 / 2 (regression) / 3 (incomparable) / 1 (usage or IO error).
fn run_compare(args: &[String]) -> ! {
    let at = args.iter().position(|a| a == "--compare").unwrap_or(0);
    let (Some(old_path), Some(new_path)) = (args.get(at + 1), args.get(at + 2)) else {
        eprintln!(
            "usage: pipeline --compare OLD.json NEW.json \
             [--threshold-pct P] [--abs-slack-ms S] [--counter-factor F]"
        );
        std::process::exit(1);
    };
    let mut cfg = CompareConfig::default();
    if let Some(p) = float_flag(args, "--threshold-pct") {
        cfg.latency_pct = p;
    }
    if let Some(s) = float_flag(args, "--abs-slack-ms") {
        cfg.abs_slack_ms = s;
    }
    if let Some(f) = float_flag(args, "--counter-factor") {
        cfg.counter_factor = f;
    }

    let load = |path: &str| -> BenchArtifact {
        match load_artifact(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    };
    let old = load(old_path);
    let new = load(new_path);
    println!(
        "comparing {new_path} against baseline {old_path} \
         (latency +{:.0}% +{:.1}ms, counters x{:.1}, warm +{:.0}%)",
        cfg.latency_pct, cfg.abs_slack_ms, cfg.counter_factor, cfg.warm_pct
    );
    match compare_artifacts(&old, &new, &cfg) {
        CompareOutcome::Pass => {
            println!("PASS: no regression against baseline");
            std::process::exit(0);
        }
        CompareOutcome::Regressions(findings) => {
            println!("REGRESSIONS ({}):", findings.len());
            for f in &findings {
                println!("  - {f}");
            }
            std::process::exit(2);
        }
        CompareOutcome::Incomparable(why) => {
            println!("INCOMPARABLE: {why}");
            std::process::exit(3);
        }
    }
}

/// Measure flight-recorder overhead: the same cold pipeline run with the
/// recorder off and sampling 1-in-N, interleaved so machine drift hits
/// both sides equally. Recorder state is restored afterwards.
fn measure_recorder_overhead(problem: &Problem, budget: Duration, sc: Scale) -> RecorderOverhead {
    let rec = rasa_obs::recorder();
    let prev_enabled = rec.enabled();
    let prev_config = rec.config();
    let sample_every = 4;
    let enabled_config = FlightConfig {
        dump_dir: None, // overhead of recording, not of disk IO
        sample_every,
        ..FlightConfig::default()
    };

    let pipeline = RasaPipeline::new(RasaConfig::default());
    let run = || {
        let t = Instant::now();
        let _ = pipeline.optimize_with_cache(problem, None, Deadline::after(budget), None);
        t.elapsed().as_secs_f64()
    };

    // warm-up (page caches, allocator, branch predictors) before timing
    rec.set_enabled(false);
    let _ = run();
    // fewer iterations as the per-run cost grows up the ladder
    let iters = match sc {
        Scale::Small => 5,
        Scale::Medium => 4,
        Scale::Large | Scale::Full => 3,
        Scale::Xl => 2,
    };
    let mut disabled = Vec::with_capacity(iters);
    let mut enabled = Vec::with_capacity(iters);
    for _ in 0..iters {
        rec.set_enabled(false);
        disabled.push(run());
        rec.configure(enabled_config.clone());
        enabled.push(run());
    }
    rec.configure(prev_config);
    rec.set_enabled(prev_enabled);

    let disabled_p50_secs = median(disabled);
    let enabled_p50_secs = median(enabled);
    RecorderOverhead {
        disabled_p50_secs,
        enabled_p50_secs,
        sample_every,
        ratio: enabled_p50_secs / disabled_p50_secs.max(1e-12),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--compare") {
        run_compare(&args);
    }

    let obs = rasa_obs::global();
    obs.reset();
    rasa_obs::recorder().configure_from_env();

    let strict = std::env::var("RASA_BENCH_STRICT").as_deref() != Ok("0");
    let out_path =
        std::env::var("RASA_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let sc = cli_scale(&args).unwrap_or_else(scale);
    // scale-aware default budget (RASA_TIMEOUT_SECS still overrides):
    // the ladder rungs get proportionally more of the paper's one-minute
    // M-cluster budget as the clusters grow toward M size
    let budget = timeout_for(sc);

    let specs = match sc {
        Scale::Small => (1..=4u64)
            .map(|seed| {
                let mut spec = tiny_cluster(seed);
                spec.name = format!("tiny-{seed}");
                spec
            })
            .collect(),
        Scale::Medium => medium_clusters(),
        Scale::Large => large_clusters(),
        Scale::Xl => xl_clusters(),
        Scale::Full => t_clusters(7),
    };
    let traces: Vec<_> = specs
        .into_iter()
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect();

    let selectors = [
        ("heuristic", SelectorChoice::Heuristic),
        ("always-cg", SelectorChoice::AlwaysCg),
    ];

    let rounds = rounds_per_run();
    let mut runs = Vec::new();
    for (name, problem) in &traces {
        for (sel_name, sel) in &selectors {
            let pipeline = RasaPipeline::new(RasaConfig {
                selector: sel.clone(),
                ..Default::default()
            });
            // one cache per (trace, selector): round 1 fills it cold, the
            // remaining rounds replay/warm-start from it
            let cache = SolveCache::new();
            let mut round_records = Vec::with_capacity(rounds);
            let mut cold = None;
            for round in 1..=rounds {
                let run = pipeline.optimize_with_cache(
                    problem,
                    None,
                    Deadline::after(budget),
                    Some(&cache),
                );
                let stats = run.cache.unwrap_or_default();
                round_records.push(RoundRecord {
                    round,
                    elapsed_secs: run.outcome.elapsed.as_secs_f64(),
                    normalized_gained_affinity: run.outcome.normalized_gained_affinity,
                    cache_hits: stats.hits,
                    cache_misses: stats.misses,
                    cache_invalidations: stats.invalidations,
                });
                if round == 1 {
                    cold = Some(run);
                }
            }
            let run = cold.expect("at least one round");
            let mut statuses: Vec<(String, u64)> = Vec::new();
            for report in &run.subproblems {
                let key = status_key(report.status);
                match statuses.iter_mut().find(|(k, _)| k == key) {
                    Some((_, n)) => *n += 1,
                    None => statuses.push((key.to_string(), 1)),
                }
            }
            runs.push(RunRecord {
                trace: name.clone(),
                selector: sel_name.to_string(),
                services: problem.num_services(),
                machines: problem.num_machines(),
                subproblems: run.subproblems.len(),
                normalized_gained_affinity: run.outcome.normalized_gained_affinity,
                elapsed_secs: run.outcome.elapsed.as_secs_f64(),
                degraded: run.is_degraded(),
                statuses,
                rounds: round_records,
            });
        }
    }

    let warm_start = if rounds > 1 {
        let cold_samples: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.rounds.first().map(|x| x.elapsed_secs))
            .collect();
        let warm_samples: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.rounds.iter().skip(1).map(|x| x.elapsed_secs))
            .collect();
        let cold_p50_secs = median(cold_samples);
        let warm_p50_secs = median(warm_samples);
        Some(WarmStartSummary {
            cold_p50_secs,
            warm_p50_secs,
            speedup: cold_p50_secs / warm_p50_secs.max(1e-12),
        })
    } else {
        None
    };

    let snapshot = obs.snapshot();
    let stages: Vec<StageLatency> = [
        "pipeline.partition_seconds",
        "pipeline.solve_seconds",
        "pipeline.combine_seconds",
        "pipeline.complete_seconds",
        "guard.subproblem_seconds",
        "cg.solve_seconds",
    ]
    .iter()
    .filter_map(|name| {
        snapshot.histogram(name).map(|h| StageLatency {
            stage: name.to_string(),
            count: h.count,
            p50_ms: h.p50() * 1e3,
            p95_ms: h.p95() * 1e3,
            p99_ms: h.p99() * 1e3,
            max_ms: h.max * 1e3,
            mean_ms: h.mean() * 1e3,
        })
    })
    .collect();

    // Prometheus exposition next to the JSON artifact; HELP/TYPE come from
    // docs/METRICS.md, so an undocumented metric fails here exactly as it
    // fails the doc-consistency test.
    let prom_path = format!("{}.prom", out_path.trim_end_matches(".json"));
    let prom_error = match rasa_obs::write_prometheus(&snapshot, rasa_obs::MetricsGlossary::builtin())
    {
        Ok(text) => {
            if let Err(e) = std::fs::write(&prom_path, text) {
                eprintln!("failed to write {prom_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[artifact] {prom_path}");
            None
        }
        Err(e) => {
            eprintln!("prometheus exposition failed: {e}");
            Some(e.to_string())
        }
    };

    let recorder_overhead = if std::env::var("RASA_BENCH_OVERHEAD").as_deref() == Ok("0") {
        None
    } else {
        eprintln!("[overhead] measuring flight-recorder cost (interleaved off/on runs)…");
        Some(measure_recorder_overhead(&traces[0].1, budget, sc))
    };

    let artifact = BenchArtifact {
        schema_version: BENCH_SCHEMA_VERSION,
        scale: sc.as_str().into(),
        timeout_secs: budget.as_secs_f64(),
        rounds,
        runs,
        stages,
        counters: snapshot.counters.clone(),
        warm_start,
        recorder_overhead,
    };

    println!(
        "BENCH_pipeline (schema v{}) — {} traces × {} selectors × {} rounds\n",
        artifact.schema_version,
        traces.len(),
        selectors.len(),
        rounds
    );
    print_table(
        &["trace", "selector", "subs", "affinity", "elapsed", "degraded"],
        &artifact
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.trace.clone(),
                    r.selector.clone(),
                    r.subproblems.to_string(),
                    format!("{:.3}", r.normalized_gained_affinity),
                    format!("{:.2}s", r.elapsed_secs),
                    r.degraded.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["stage", "count", "p50 ms", "p95 ms", "p99 ms", "max ms", "mean ms"],
        &artifact
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.stage.clone(),
                    s.count.to_string(),
                    format!("{:.2}", s.p50_ms),
                    format!("{:.2}", s.p95_ms),
                    format!("{:.2}", s.p99_ms),
                    format!("{:.2}", s.max_ms),
                    format!("{:.2}", s.mean_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    for (name, v) in &artifact.counters {
        println!("{name:>32}  {v}");
    }
    if let Some(ws) = &artifact.warm_start {
        println!(
            "\nwarm-start: cold p50 {:.2} ms, warm p50 {:.2} ms ({:.1}× speedup)",
            ws.cold_p50_secs * 1e3,
            ws.warm_p50_secs * 1e3,
            ws.speedup
        );
    }
    if let Some(ov) = &artifact.recorder_overhead {
        println!(
            "recorder overhead: disabled p50 {:.2} ms, 1-in-{} sampling p50 {:.2} ms \
             (ratio {:.3})",
            ov.disabled_p50_secs * 1e3,
            ov.sample_every,
            ov.enabled_p50_secs * 1e3,
            ov.ratio
        );
    }

    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out_path, json) {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("\n[artifact] {out_path}");
        }
        Err(e) => {
            eprintln!("failed to serialize artifact: {e}");
            std::process::exit(1);
        }
    }

    if strict {
        let mut failures = Vec::new();
        if let Some(e) = prom_error {
            failures.push(format!("prometheus exposition failed: {e}"));
        }
        // On the M-scale ladder rungs the solvers are *expected* to run to
        // their budget on some subproblems (anytime behavior, exactly as
        // the paper's one-minute M-cluster runs): budget exhaustion is not
        // a failure there, and the determinism checks below are skipped
        // for deadline-truncated runs because their results are
        // wall-clock-dependent by construction. Panics, infeasibility,
        // and fallback transitions still fail at every scale.
        let ladder = matches!(sc, Scale::Medium | Scale::Large | Scale::Xl);
        let expired =
            |r: &RunRecord| r.statuses.iter().any(|(k, _)| k == "deadline_expired");
        for r in &artifact.runs {
            if !r.degraded {
                continue;
            }
            let only_budget_exhaustion = r
                .statuses
                .iter()
                .all(|(k, _)| k == "ok" || k == "deadline_expired");
            if ladder && only_budget_exhaustion {
                continue;
            }
            failures.push(format!(
                "run {}/{} degraded: {:?}",
                r.trace, r.selector, r.statuses
            ));
        }
        for counter in ["simplex.pivots", "bnb.nodes", "cg.rounds"] {
            if snapshot.counter(counter) == 0 {
                failures.push(format!("hot-path counter {counter} stayed at zero"));
            }
        }
        if artifact.rounds > 1 {
            // warm rounds must reproduce the cold objective exactly —
            // identical problem + deterministic partition → full replay
            // (not required of deadline-truncated ladder runs: a re-solve
            // with a fresh budget legitimately improves on a truncated one)
            for r in &artifact.runs {
                if ladder && expired(r) {
                    continue;
                }
                let cold_obj = r.rounds[0].normalized_gained_affinity;
                for round in &r.rounds[1..] {
                    if (round.normalized_gained_affinity - cold_obj).abs() > 1e-9 {
                        failures.push(format!(
                            "run {}/{} round {}: warm objective {} drifted from cold {}",
                            r.trace,
                            r.selector,
                            round.round,
                            round.normalized_gained_affinity,
                            cold_obj
                        ));
                    }
                }
            }
            if snapshot.counter("cache.sub_hits") == 0 {
                failures.push("warm rounds produced no cache hits".into());
            }
            // the warm-speedup floor only makes sense when warm rounds are
            // pure cache replays — a truncated subproblem re-solves with a
            // fresh budget every round, so skip it if any run expired
            if !(ladder && artifact.runs.iter().any(expired)) {
                if let Some(ws) = &artifact.warm_start {
                    if ws.warm_p50_secs > 0.7 * ws.cold_p50_secs {
                        failures.push(format!(
                            "warm p50 {:.3} ms exceeds 0.7× cold p50 {:.3} ms",
                            ws.warm_p50_secs * 1e3,
                            ws.cold_p50_secs * 1e3
                        ));
                    }
                }
            }
        }
        if let Some(ov) = &artifact.recorder_overhead {
            // the ISSUE gate: ≤5% p50 overhead at 1-in-N sampling, with a
            // small absolute floor so micro-runs don't fail on timer noise
            if ov.ratio > 1.05 && ov.enabled_p50_secs - ov.disabled_p50_secs > 0.005 {
                failures.push(format!(
                    "flight recorder overhead {:.1}% exceeds 5% (disabled p50 {:.2} ms, \
                     enabled p50 {:.2} ms)",
                    (ov.ratio - 1.0) * 100.0,
                    ov.disabled_p50_secs * 1e3,
                    ov.enabled_p50_secs * 1e3
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("\nSTRICT MODE FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(2);
        }
        eprintln!(
            "strict checks passed: no degraded solves, hot-path counters nonzero, \
             recorder overhead within budget"
        );
    }
}
