//! **BENCH_pipeline** — end-to-end pipeline benchmark with solver
//! telemetry, the smoke artifact CI uploads on every push.
//!
//! Runs the full partition → select → solve → combine pipeline on seeded
//! traces (four tiny clusters at the default `small` scale — fast enough
//! for a CI smoke job and comfortably inside the solver deadline — or the
//! T-clusters at `full`), once with the default heuristic selector and
//! once forcing column generation (so the CG counters are exercised even
//! where the heuristic would route everything to MIP), then emits
//! `BENCH_pipeline.json`: per-stage latency percentiles (p50/p95 from the
//! `rasa-obs` histograms) plus every solver counter (simplex pivots,
//! branch-and-bound nodes, CG pricing rounds, guard status tallies).
//!
//! Environment:
//!
//! * `RASA_BENCH_OUT` — artifact path (default `BENCH_pipeline.json`);
//! * `RASA_BENCH_STRICT` — unset or `1`: exit nonzero when any subproblem
//!   reports a degraded [`SolveStatus`] or a hot-path counter (simplex
//!   pivots, B&B nodes, CG rounds) stayed at zero; `0`: report only;
//! * `RASA_SCALE` / `RASA_TIMEOUT_SECS` — as for every rasa-bench binary.

use rasa_bench::{print_table, scale, timeout, Scale};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice, SolveStatus};
use rasa_trace::{generate, t_clusters, tiny_cluster};
use serde::{Deserialize, Serialize};

/// One pipeline run on one trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RunRecord {
    trace: String,
    selector: String,
    services: usize,
    machines: usize,
    subproblems: usize,
    normalized_gained_affinity: f64,
    elapsed_secs: f64,
    degraded: bool,
    /// `SolveStatus` tallies for this run, e.g. `[["ok", 7]]`.
    statuses: Vec<(String, u64)>,
}

/// p50/p95 for one obs histogram, in milliseconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StageLatency {
    stage: String,
    count: u64,
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
}

/// The full artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchArtifact {
    scale: String,
    timeout_secs: f64,
    runs: Vec<RunRecord>,
    stages: Vec<StageLatency>,
    counters: Vec<(String, u64)>,
}

fn status_key(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Ok => "ok",
        SolveStatus::DeadlineExpired => "deadline_expired",
        SolveStatus::Panicked => "panicked",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::FellBackTo(_) => "fell_back",
    }
}

fn main() {
    let obs = rasa_obs::global();
    obs.reset();

    let strict = std::env::var("RASA_BENCH_STRICT").as_deref() != Ok("0");
    let out_path =
        std::env::var("RASA_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let budget = timeout();

    let specs = match scale() {
        Scale::Full => t_clusters(7),
        Scale::Small => (1..=4u64)
            .map(|seed| {
                let mut spec = tiny_cluster(seed);
                spec.name = format!("tiny-{seed}");
                spec
            })
            .collect(),
    };
    let traces: Vec<_> = specs
        .into_iter()
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect();

    let selectors = [
        ("heuristic", SelectorChoice::Heuristic),
        ("always-cg", SelectorChoice::AlwaysCg),
    ];

    let mut runs = Vec::new();
    for (name, problem) in &traces {
        for (sel_name, sel) in &selectors {
            let pipeline = RasaPipeline::new(RasaConfig {
                selector: sel.clone(),
                ..Default::default()
            });
            let run = pipeline.optimize(problem, None, Deadline::after(budget));
            let mut statuses: Vec<(String, u64)> = Vec::new();
            for report in &run.subproblems {
                let key = status_key(report.status);
                match statuses.iter_mut().find(|(k, _)| k == key) {
                    Some((_, n)) => *n += 1,
                    None => statuses.push((key.to_string(), 1)),
                }
            }
            runs.push(RunRecord {
                trace: name.clone(),
                selector: sel_name.to_string(),
                services: problem.num_services(),
                machines: problem.num_machines(),
                subproblems: run.subproblems.len(),
                normalized_gained_affinity: run.outcome.normalized_gained_affinity,
                elapsed_secs: run.outcome.elapsed.as_secs_f64(),
                degraded: run.is_degraded(),
                statuses,
            });
        }
    }

    let snapshot = obs.snapshot();
    let stages: Vec<StageLatency> = [
        "pipeline.partition_seconds",
        "pipeline.solve_seconds",
        "pipeline.combine_seconds",
        "pipeline.complete_seconds",
        "guard.subproblem_seconds",
        "cg.solve_seconds",
    ]
    .iter()
    .filter_map(|name| {
        snapshot.histogram(name).map(|h| StageLatency {
            stage: name.to_string(),
            count: h.count,
            p50_ms: h.quantile(0.5) * 1e3,
            p95_ms: h.quantile(0.95) * 1e3,
            mean_ms: h.mean() * 1e3,
        })
    })
    .collect();

    let artifact = BenchArtifact {
        scale: match scale() {
            Scale::Small => "small".into(),
            Scale::Full => "full".into(),
        },
        timeout_secs: budget.as_secs_f64(),
        runs,
        stages,
        counters: snapshot.counters.clone(),
    };

    println!("BENCH_pipeline — {} traces × {} selectors\n", traces.len(), selectors.len());
    print_table(
        &["trace", "selector", "subs", "affinity", "elapsed", "degraded"],
        &artifact
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.trace.clone(),
                    r.selector.clone(),
                    r.subproblems.to_string(),
                    format!("{:.3}", r.normalized_gained_affinity),
                    format!("{:.2}s", r.elapsed_secs),
                    r.degraded.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["stage", "count", "p50 ms", "p95 ms", "mean ms"],
        &artifact
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.stage.clone(),
                    s.count.to_string(),
                    format!("{:.2}", s.p50_ms),
                    format!("{:.2}", s.p95_ms),
                    format!("{:.2}", s.mean_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    for (name, v) in &artifact.counters {
        println!("{name:>32}  {v}");
    }

    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out_path, json) {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("\n[artifact] {out_path}");
        }
        Err(e) => {
            eprintln!("failed to serialize artifact: {e}");
            std::process::exit(1);
        }
    }

    if strict {
        let mut failures = Vec::new();
        for r in &artifact.runs {
            if r.degraded {
                failures.push(format!(
                    "run {}/{} degraded: {:?}",
                    r.trace, r.selector, r.statuses
                ));
            }
        }
        for counter in ["simplex.pivots", "bnb.nodes", "cg.rounds"] {
            if snapshot.counter(counter) == 0 {
                failures.push(format!("hot-path counter {counter} stayed at zero"));
            }
        }
        if !failures.is_empty() {
            eprintln!("\nSTRICT MODE FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(2);
        }
        eprintln!("strict checks passed: no degraded solves, all hot-path counters nonzero");
    }
}
