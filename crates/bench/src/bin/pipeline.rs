//! **BENCH_pipeline** — end-to-end pipeline benchmark with solver
//! telemetry, the smoke artifact CI uploads on every push.
//!
//! Runs the full partition → select → solve → combine pipeline on seeded
//! traces (four tiny clusters at the default `small` scale — fast enough
//! for a CI smoke job and comfortably inside the solver deadline — or the
//! T-clusters at `full`), once with the default heuristic selector and
//! once forcing column generation (so the CG counters are exercised even
//! where the heuristic would route everything to MIP), then emits
//! `BENCH_pipeline.json`: per-stage latency percentiles (p50/p95 from the
//! `rasa-obs` histograms) plus every solver counter (simplex pivots,
//! branch-and-bound nodes, CG pricing rounds, guard status tallies).
//!
//! Each (trace, selector) pair is optimized for `--rounds N` consecutive
//! rounds (default 3) sharing one [`SolveCache`]: round 1 is the cold
//! solve, later rounds warm-start from the cache, and the artifact records
//! cold-vs-warm per-round latency plus cache hit/miss/invalidation tallies.
//!
//! Environment:
//!
//! * `RASA_BENCH_OUT` — artifact path (default `BENCH_pipeline.json`);
//! * `RASA_BENCH_STRICT` — unset or `1`: exit nonzero when any subproblem
//!   reports a degraded [`SolveStatus`], a hot-path counter (simplex
//!   pivots, B&B nodes, CG rounds) stayed at zero, a warm round's
//!   objective drifts from its cold round, or the warm p50 latency exceeds
//!   0.7× the cold p50; `0`: report only;
//! * `RASA_BENCH_ROUNDS` — rounds per (trace, selector); the `--rounds N`
//!   CLI flag takes precedence; default 3, minimum 1;
//! * `RASA_SCALE` / `RASA_TIMEOUT_SECS` — as for every rasa-bench binary.

use rasa_bench::{print_table, scale, timeout, Scale};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice, SolveCache, SolveStatus};
use rasa_trace::{generate, t_clusters, tiny_cluster};
use serde::{Deserialize, Serialize};

/// One warm-start round within a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RoundRecord {
    /// 1-based round number; round 1 is the cold solve.
    round: usize,
    elapsed_secs: f64,
    normalized_gained_affinity: f64,
    cache_hits: usize,
    cache_misses: usize,
    cache_invalidations: usize,
}

/// One pipeline run on one trace. The headline fields describe the cold
/// round; `rounds` holds the per-round warm-start trajectory.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RunRecord {
    trace: String,
    selector: String,
    services: usize,
    machines: usize,
    subproblems: usize,
    normalized_gained_affinity: f64,
    elapsed_secs: f64,
    degraded: bool,
    /// `SolveStatus` tallies for this run, e.g. `[["ok", 7]]`.
    statuses: Vec<(String, u64)>,
    /// Cold and warm rounds, in order.
    rounds: Vec<RoundRecord>,
}

/// Cold-vs-warm latency summary across all runs (present when the bench
/// ran more than one round).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WarmStartSummary {
    /// Median end-to-end latency of the cold rounds, seconds.
    cold_p50_secs: f64,
    /// Median end-to-end latency of the warm rounds, seconds.
    warm_p50_secs: f64,
    /// `cold_p50_secs / warm_p50_secs`.
    speedup: f64,
}

/// Median of an unsorted sample.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if xs.is_empty() {
        return 0.0;
    }
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// `--rounds N` from the CLI, else `RASA_BENCH_ROUNDS`, else 3.
fn rounds_per_run() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let from_cli = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    from_cli
        .or_else(|| {
            std::env::var("RASA_BENCH_ROUNDS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(3)
        .max(1)
}

/// p50/p95 for one obs histogram, in milliseconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StageLatency {
    stage: String,
    count: u64,
    p50_ms: f64,
    p95_ms: f64,
    mean_ms: f64,
}

/// The full artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchArtifact {
    scale: String,
    timeout_secs: f64,
    /// Rounds per (trace, selector) pair; round 1 is cold.
    rounds: usize,
    runs: Vec<RunRecord>,
    stages: Vec<StageLatency>,
    counters: Vec<(String, u64)>,
    /// Cold-vs-warm medians; `null` when only one round ran.
    warm_start: Option<WarmStartSummary>,
}

fn status_key(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Ok => "ok",
        SolveStatus::DeadlineExpired => "deadline_expired",
        SolveStatus::Panicked => "panicked",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::FellBackTo(_) => "fell_back",
    }
}

fn main() {
    let obs = rasa_obs::global();
    obs.reset();

    let strict = std::env::var("RASA_BENCH_STRICT").as_deref() != Ok("0");
    let out_path =
        std::env::var("RASA_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let budget = timeout();

    let specs = match scale() {
        Scale::Full => t_clusters(7),
        Scale::Small => (1..=4u64)
            .map(|seed| {
                let mut spec = tiny_cluster(seed);
                spec.name = format!("tiny-{seed}");
                spec
            })
            .collect(),
    };
    let traces: Vec<_> = specs
        .into_iter()
        .map(|spec| (spec.name.clone(), generate(&spec)))
        .collect();

    let selectors = [
        ("heuristic", SelectorChoice::Heuristic),
        ("always-cg", SelectorChoice::AlwaysCg),
    ];

    let rounds = rounds_per_run();
    let mut runs = Vec::new();
    for (name, problem) in &traces {
        for (sel_name, sel) in &selectors {
            let pipeline = RasaPipeline::new(RasaConfig {
                selector: sel.clone(),
                ..Default::default()
            });
            // one cache per (trace, selector): round 1 fills it cold, the
            // remaining rounds replay/warm-start from it
            let cache = SolveCache::new();
            let mut round_records = Vec::with_capacity(rounds);
            let mut cold = None;
            for round in 1..=rounds {
                let run = pipeline.optimize_with_cache(
                    problem,
                    None,
                    Deadline::after(budget),
                    Some(&cache),
                );
                let stats = run.cache.unwrap_or_default();
                round_records.push(RoundRecord {
                    round,
                    elapsed_secs: run.outcome.elapsed.as_secs_f64(),
                    normalized_gained_affinity: run.outcome.normalized_gained_affinity,
                    cache_hits: stats.hits,
                    cache_misses: stats.misses,
                    cache_invalidations: stats.invalidations,
                });
                if round == 1 {
                    cold = Some(run);
                }
            }
            let run = cold.expect("at least one round");
            let mut statuses: Vec<(String, u64)> = Vec::new();
            for report in &run.subproblems {
                let key = status_key(report.status);
                match statuses.iter_mut().find(|(k, _)| k == key) {
                    Some((_, n)) => *n += 1,
                    None => statuses.push((key.to_string(), 1)),
                }
            }
            runs.push(RunRecord {
                trace: name.clone(),
                selector: sel_name.to_string(),
                services: problem.num_services(),
                machines: problem.num_machines(),
                subproblems: run.subproblems.len(),
                normalized_gained_affinity: run.outcome.normalized_gained_affinity,
                elapsed_secs: run.outcome.elapsed.as_secs_f64(),
                degraded: run.is_degraded(),
                statuses,
                rounds: round_records,
            });
        }
    }

    let warm_start = if rounds > 1 {
        let cold_samples: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.rounds.first().map(|x| x.elapsed_secs))
            .collect();
        let warm_samples: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.rounds.iter().skip(1).map(|x| x.elapsed_secs))
            .collect();
        let cold_p50_secs = median(cold_samples);
        let warm_p50_secs = median(warm_samples);
        Some(WarmStartSummary {
            cold_p50_secs,
            warm_p50_secs,
            speedup: cold_p50_secs / warm_p50_secs.max(1e-12),
        })
    } else {
        None
    };

    let snapshot = obs.snapshot();
    let stages: Vec<StageLatency> = [
        "pipeline.partition_seconds",
        "pipeline.solve_seconds",
        "pipeline.combine_seconds",
        "pipeline.complete_seconds",
        "guard.subproblem_seconds",
        "cg.solve_seconds",
    ]
    .iter()
    .filter_map(|name| {
        snapshot.histogram(name).map(|h| StageLatency {
            stage: name.to_string(),
            count: h.count,
            p50_ms: h.quantile(0.5) * 1e3,
            p95_ms: h.quantile(0.95) * 1e3,
            mean_ms: h.mean() * 1e3,
        })
    })
    .collect();

    let artifact = BenchArtifact {
        scale: match scale() {
            Scale::Small => "small".into(),
            Scale::Full => "full".into(),
        },
        timeout_secs: budget.as_secs_f64(),
        rounds,
        runs,
        stages,
        counters: snapshot.counters.clone(),
        warm_start,
    };

    println!(
        "BENCH_pipeline — {} traces × {} selectors × {} rounds\n",
        traces.len(),
        selectors.len(),
        rounds
    );
    print_table(
        &["trace", "selector", "subs", "affinity", "elapsed", "degraded"],
        &artifact
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.trace.clone(),
                    r.selector.clone(),
                    r.subproblems.to_string(),
                    format!("{:.3}", r.normalized_gained_affinity),
                    format!("{:.2}s", r.elapsed_secs),
                    r.degraded.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["stage", "count", "p50 ms", "p95 ms", "mean ms"],
        &artifact
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.stage.clone(),
                    s.count.to_string(),
                    format!("{:.2}", s.p50_ms),
                    format!("{:.2}", s.p95_ms),
                    format!("{:.2}", s.mean_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    for (name, v) in &artifact.counters {
        println!("{name:>32}  {v}");
    }
    if let Some(ws) = &artifact.warm_start {
        println!(
            "\nwarm-start: cold p50 {:.2} ms, warm p50 {:.2} ms ({:.1}× speedup)",
            ws.cold_p50_secs * 1e3,
            ws.warm_p50_secs * 1e3,
            ws.speedup
        );
    }

    match serde_json::to_string_pretty(&artifact) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out_path, json) {
                eprintln!("failed to write {out_path}: {e}");
                std::process::exit(1);
            }
            eprintln!("\n[artifact] {out_path}");
        }
        Err(e) => {
            eprintln!("failed to serialize artifact: {e}");
            std::process::exit(1);
        }
    }

    if strict {
        let mut failures = Vec::new();
        for r in &artifact.runs {
            if r.degraded {
                failures.push(format!(
                    "run {}/{} degraded: {:?}",
                    r.trace, r.selector, r.statuses
                ));
            }
        }
        for counter in ["simplex.pivots", "bnb.nodes", "cg.rounds"] {
            if snapshot.counter(counter) == 0 {
                failures.push(format!("hot-path counter {counter} stayed at zero"));
            }
        }
        if artifact.rounds > 1 {
            // warm rounds must reproduce the cold objective exactly —
            // identical problem + deterministic partition → full replay
            for r in &artifact.runs {
                let cold_obj = r.rounds[0].normalized_gained_affinity;
                for round in &r.rounds[1..] {
                    if (round.normalized_gained_affinity - cold_obj).abs() > 1e-9 {
                        failures.push(format!(
                            "run {}/{} round {}: warm objective {} drifted from cold {}",
                            r.trace,
                            r.selector,
                            round.round,
                            round.normalized_gained_affinity,
                            cold_obj
                        ));
                    }
                }
            }
            if snapshot.counter("cache.sub_hits") == 0 {
                failures.push("warm rounds produced no cache hits".into());
            }
            if let Some(ws) = &artifact.warm_start {
                if ws.warm_p50_secs > 0.7 * ws.cold_p50_secs {
                    failures.push(format!(
                        "warm p50 {:.3} ms exceeds 0.7× cold p50 {:.3} ms",
                        ws.warm_p50_secs * 1e3,
                        ws.cold_p50_secs * 1e3
                    ));
                }
            }
        }
        if !failures.is_empty() {
            eprintln!("\nSTRICT MODE FAILURES:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(2);
        }
        eprintln!("strict checks passed: no degraded solves, all hot-path counters nonzero");
    }
}
