//! **Fig 7** — gained affinity and total affinity of master services as
//! the master ratio `α` sweeps, with the paper's chosen
//! `α = 45 · ln^0.66(N)/N` marked.
//!
//! Shape to reproduce: master total affinity races to 1.0 as α grows;
//! gained affinity rises to a plateau (small/medium clusters) or peaks and
//! then *drops* for large clusters, because the fixed time-out no longer
//! suffices for the bigger master set.

use rasa_bench::{evaluation_clusters, pct, print_table, save_json, timeout, trained_gcn_selector};
use rasa_core::{Deadline, PartitionConfig, RasaConfig, RasaPipeline, Scheduler, SelectorChoice};
use rasa_graph::AffinityGraph;
use rasa_partition::default_master_ratio;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cluster: String,
    alpha: f64,
    is_chosen: bool,
    master_total_affinity: f64,
    normalized_gained_affinity: f64,
}

/// Fraction of total affinity carried by the top `⌊αN⌋` services.
fn master_affinity_fraction(problem: &rasa_model::Problem, alpha: f64) -> f64 {
    let graph = AffinityGraph::from_problem(problem);
    let order = graph.vertices_by_total_affinity();
    let budget = ((alpha * problem.num_services() as f64).floor() as usize).clamp(1, order.len());
    let masters: std::collections::HashSet<usize> = order[..budget].iter().copied().collect();
    let total = problem.total_affinity();
    if total <= 0.0 {
        return 0.0;
    }
    // affinity an edge contributes is only collectable if *both* endpoints
    // are masters (the paper plots total affinity of master services as the
    // weight retained by the master-induced subgraph)
    problem
        .affinity_edges
        .iter()
        .filter(|e| masters.contains(&e.a.idx()) && masters.contains(&e.b.idx()))
        .map(|e| e.weight)
        .sum::<f64>()
        / total
}

fn main() {
    let budget = timeout();
    let gcn = trained_gcn_selector();
    let mut artifacts: Vec<Point> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        let n = problem.num_services();
        let chosen = default_master_ratio(n);
        // sweep: fractions of the chosen ratio plus absolute anchors
        let mut alphas: Vec<(f64, bool)> = [0.25, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&m| ((chosen * m).min(1.0), m == 1.0))
            .collect();
        alphas.push((1.0, false));
        alphas.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-12);
        for (alpha, is_chosen) in alphas {
            let pipeline = RasaPipeline::new(RasaConfig {
                partition: PartitionConfig {
                    master_ratio: Some(alpha),
                    ..Default::default()
                },
                selector: SelectorChoice::Gcn(gcn.clone()),
                ..Default::default()
            });
            let out = pipeline.schedule(&problem, Deadline::after(budget));
            let master_frac = master_affinity_fraction(&problem, alpha);
            eprintln!(
                "[{name}] α={alpha:.4}{} master-affinity={} gained={}",
                if is_chosen { " (chosen)" } else { "" },
                pct(master_frac),
                pct(out.normalized_gained_affinity)
            );
            artifacts.push(Point {
                cluster: name.clone(),
                alpha,
                is_chosen,
                master_total_affinity: master_frac,
                normalized_gained_affinity: out.normalized_gained_affinity,
            });
        }
    }

    println!(
        "\nFig 7 — master-ratio sweep ({}s time-out)\n",
        budget.as_secs()
    );
    let rows: Vec<Vec<String>> = artifacts
        .iter()
        .map(|p| {
            vec![
                p.cluster.clone(),
                format!("{:.4}{}", p.alpha, if p.is_chosen { "*" } else { "" }),
                pct(p.master_total_affinity),
                pct(p.normalized_gained_affinity),
            ]
        })
        .collect();
    print_table(
        &[
            "cluster",
            "α (* = chosen)",
            "master affinity",
            "gained affinity",
        ],
        &rows,
    );
    println!("\nshape check: master affinity ↑ with α; chosen α near the gained-affinity plateau");
    save_json("fig7_master_ratio", &artifacts);
}
