//! **Fig 5** — fitting exponential and power-law distributions to the
//! total-affinity distribution of the top services in a cluster.
//!
//! The paper fits both to 40 services from a production cluster and finds
//! the power law fits far better, motivating Assumption 4.1 and the master
//! partitioning stage. We reproduce the comparison on every generated
//! cluster.

use rasa_bench::{evaluation_clusters, print_table, save_json};
use rasa_graph::{fit_exponential, fit_power_law, AffinityGraph};
use serde::Serialize;

#[derive(Serialize)]
struct FitRow {
    cluster: String,
    services_fit: usize,
    power_law_beta: f64,
    power_law_r2: f64,
    exponential_lambda: f64,
    exponential_r2: f64,
    winner: &'static str,
    top40: Vec<f64>,
}

fn main() {
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for (name, problem) in evaluation_clusters() {
        let graph = AffinityGraph::from_problem(&problem);
        let mut totals: Vec<f64> = graph
            .all_total_affinities()
            .into_iter()
            .filter(|&t| t > 0.0)
            .collect();
        totals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: Vec<f64> = totals.iter().copied().take(40).collect();
        let pl = fit_power_law(&top);
        let ex = fit_exponential(&top);
        let winner = if pl.r_squared >= ex.r_squared {
            "power law"
        } else {
            "exponential"
        };
        rows.push(vec![
            name.clone(),
            top.len().to_string(),
            format!("{:.2}", pl.decay),
            format!("{:.4}", pl.r_squared),
            format!("{:.3}", ex.decay),
            format!("{:.4}", ex.r_squared),
            winner.to_string(),
        ]);
        artifacts.push(FitRow {
            cluster: name,
            services_fit: top.len(),
            power_law_beta: pl.decay,
            power_law_r2: pl.r_squared,
            exponential_lambda: ex.decay,
            exponential_r2: ex.r_squared,
            winner,
            top40: top,
        });
    }
    println!("Fig 5 — total-affinity distribution fits (top-40 services per cluster)");
    println!("paper: power law clearly beats exponential on production data\n");
    print_table(
        &[
            "cluster",
            "#fit",
            "β (power)",
            "R² (power)",
            "λ (exp)",
            "R² (exp)",
            "better fit",
        ],
        &rows,
    );
    save_json("fig5_powerlaw", &artifacts);

    let all_power = artifacts_all_power(&artifacts);
    println!(
        "\nshape check vs paper: power law wins on all clusters → {}",
        if all_power {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

fn artifacts_all_power(rows: &[FitRow]) -> bool {
    rows.iter().all(|r| r.winner == "power law")
}
