//! **§V-B text claims** — the multi-stage partitioning's optimality loss
//! stays below ~12% of total affinity, and the partitioning step costs
//! less than 10% of the RASA algorithm's total runtime.

use rasa_bench::{evaluation_clusters, pct, print_table, save_json, timeout};
use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cluster: String,
    partition_loss_fraction: f64,
    partition_time_fraction: f64,
    subproblems: usize,
    masters: usize,
    alpha: f64,
}

fn main() {
    let budget = timeout();
    let mut artifacts = Vec::new();
    for (name, problem) in evaluation_clusters() {
        let pipeline = RasaPipeline::new(RasaConfig::default());
        let run = pipeline.optimize(&problem, None, Deadline::after(budget));
        let total = problem.total_affinity().max(1e-12);
        let loss_frac = run.partition_loss / total;
        let time_frac = run.partition.elapsed_secs / run.outcome.elapsed.as_secs_f64().max(1e-9);
        artifacts.push(Row {
            cluster: name,
            partition_loss_fraction: loss_frac,
            partition_time_fraction: time_frac,
            subproblems: run.subproblems.len(),
            masters: run.partition.masters,
            alpha: run.partition.alpha,
        });
    }

    println!("§V-B — multi-stage partitioning overhead and loss\n");
    let rows: Vec<Vec<String>> = artifacts
        .iter()
        .map(|r| {
            vec![
                r.cluster.clone(),
                pct(r.partition_loss_fraction),
                pct(r.partition_time_fraction),
                r.subproblems.to_string(),
                r.masters.to_string(),
                format!("{:.4}", r.alpha),
            ]
        })
        .collect();
    print_table(
        &[
            "cluster",
            "affinity loss",
            "time share",
            "#subproblems",
            "#masters",
            "α",
        ],
        &rows,
    );
    let loss_ok = artifacts.iter().all(|r| r.partition_loss_fraction < 0.12);
    let time_ok = artifacts.iter().all(|r| r.partition_time_fraction < 0.10);
    println!(
        "\npaper claims: loss < 12% → {} | partition time < 10% of total → {}",
        if loss_ok {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        },
        if time_ok {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    save_json("ablation_partition_loss", &artifacts);
}
