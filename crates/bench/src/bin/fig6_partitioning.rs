//! **Fig 6** — gained affinity under different partitioning algorithms
//! (NO-PARTITION / RANDOM-PARTITION / KAHIP / MULTI-STAGE-PARTITION) with a
//! fixed per-run time-out.
//!
//! Paper findings to reproduce: MULTI-STAGE wins everywhere
//! (+52.25% over RANDOM, +12.69% over KAHIP on average); NO-PARTITION only
//! finishes on the small cluster (M3 → S3).

use rasa_bench::{evaluation_clusters, pct, print_table, save_json, timeout, trained_gcn_selector};
use rasa_core::{Deadline, PartitionStrategy, RasaConfig, RasaPipeline, Scheduler, SelectorChoice};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cluster: String,
    strategy: String,
    normalized_gained_affinity: f64,
    elapsed_secs: f64,
}

fn main() {
    let budget = timeout();
    let gcn = trained_gcn_selector();
    let strategies = [
        PartitionStrategy::NoPartition,
        PartitionStrategy::Random,
        PartitionStrategy::Kahip,
        PartitionStrategy::MultiStage,
    ];
    let mut artifacts: Vec<Row> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        for strategy in strategies {
            let pipeline = RasaPipeline::new(RasaConfig {
                strategy,
                selector: SelectorChoice::Gcn(gcn.clone()),
                ..Default::default()
            });
            let out = pipeline.schedule(&problem, Deadline::after(budget));
            artifacts.push(Row {
                cluster: name.clone(),
                strategy: strategy.label().to_string(),
                normalized_gained_affinity: out.normalized_gained_affinity,
                elapsed_secs: out.elapsed.as_secs_f64(),
            });
            eprintln!(
                "[{name}] {:<22} nga={} in {:.1}s",
                strategy.label(),
                pct(out.normalized_gained_affinity),
                out.elapsed.as_secs_f64()
            );
        }
    }

    println!(
        "\nFig 6 — gained affinity by partitioning algorithm ({}s time-out)\n",
        budget.as_secs()
    );
    let clusters: Vec<String> = {
        let mut v: Vec<String> = artifacts.iter().map(|r| r.cluster.clone()).collect();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    for strategy in strategies {
        let mut row = vec![strategy.label().to_string()];
        for cluster in &clusters {
            let v = artifacts
                .iter()
                .find(|r| &r.cluster == cluster && r.strategy == strategy.label())
                .map(|r| r.normalized_gained_affinity)
                .unwrap_or(0.0);
            row.push(pct(v));
        }
        rows.push(row);
    }
    let mut headers = vec!["strategy"];
    let cluster_refs: Vec<&str> = clusters.iter().map(String::as_str).collect();
    headers.extend(cluster_refs);
    print_table(&headers, &rows);

    // averages + paper comparison
    let avg = |label: &str| -> f64 {
        let vals: Vec<f64> = artifacts
            .iter()
            .filter(|r| r.strategy == label)
            .map(|r| r.normalized_gained_affinity)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let ms = avg("MULTI-STAGE-PARTITION");
    let rd = avg("RANDOM-PARTITION");
    let kh = avg("KAHIP");
    println!(
        "\naverages: MULTI-STAGE {} | KAHIP {} | RANDOM {}",
        pct(ms),
        pct(kh),
        pct(rd)
    );
    if rd > 0.0 && kh > 0.0 {
        println!(
            "MULTI-STAGE vs RANDOM: +{:.1}% (paper: +52.25%); vs KAHIP: +{:.1}% (paper: +12.69%)",
            100.0 * (ms - rd) / rd,
            100.0 * (ms - kh) / kh
        );
    }
    save_json("fig6_partitioning", &artifacts);
}
