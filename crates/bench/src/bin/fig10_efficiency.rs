//! **Fig 10** — optimization quality vs runtime for the anytime algorithms
//! (RASA and POP) across a time-out sweep.
//!
//! Shape to reproduce: RASA's curve sits up-and-left of POP's (better
//! quality at every budget); both curves flatten quickly — RASA because
//! its partitioning isolates small high-affinity subproblems that solve
//! almost immediately, POP because its random subproblems stay too large
//! for extra time to help.

use rasa_baselines::Pop;
use rasa_bench::{evaluation_clusters, pct, print_table, save_json, timeout, trained_gcn_selector};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice};
use rasa_solver::Scheduler;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Point {
    cluster: String,
    algorithm: String,
    budget_secs: f64,
    normalized_gained_affinity: f64,
    elapsed_secs: f64,
}

fn main() {
    let max_budget = timeout().as_secs_f64();
    // sweep fractions of the configured budget
    let budgets: Vec<Duration> = [0.2, 0.4, 0.7, 1.0, 1.5]
        .iter()
        .map(|f| Duration::from_secs_f64((max_budget * f).max(0.5)))
        .collect();

    let rasa = RasaPipeline::new(RasaConfig {
        selector: SelectorChoice::Gcn(trained_gcn_selector()),
        ..Default::default()
    });
    let pop = Pop::default();
    let mut artifacts: Vec<Point> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        for budget in &budgets {
            for (label, alg) in [("RASA", &rasa as &dyn Scheduler), ("POP", &pop)] {
                let out = alg.schedule(&problem, Deadline::after(*budget));
                eprintln!(
                    "[{name}] {label:<5} budget={:.1}s nga={} ran {:.1}s",
                    budget.as_secs_f64(),
                    pct(out.normalized_gained_affinity),
                    out.elapsed.as_secs_f64()
                );
                artifacts.push(Point {
                    cluster: name.clone(),
                    algorithm: label.to_string(),
                    budget_secs: budget.as_secs_f64(),
                    normalized_gained_affinity: out.normalized_gained_affinity,
                    elapsed_secs: out.elapsed.as_secs_f64(),
                });
            }
        }
    }

    println!("\nFig 10 — quality vs runtime (anytime algorithms)\n");
    let rows: Vec<Vec<String>> = artifacts
        .iter()
        .map(|p| {
            vec![
                p.cluster.clone(),
                p.algorithm.clone(),
                format!("{:.1}", p.budget_secs),
                pct(p.normalized_gained_affinity),
            ]
        })
        .collect();
    print_table(
        &["cluster", "algorithm", "budget (s)", "gained affinity"],
        &rows,
    );

    // dominance check at each budget
    let mut rasa_dominates = 0usize;
    let mut total = 0usize;
    for p in artifacts.iter().filter(|p| p.algorithm == "RASA") {
        if let Some(q) = artifacts.iter().find(|q| {
            q.algorithm == "POP" && q.cluster == p.cluster && q.budget_secs == p.budget_secs
        }) {
            total += 1;
            if p.normalized_gained_affinity >= q.normalized_gained_affinity - 1e-9 {
                rasa_dominates += 1;
            }
        }
    }
    println!(
        "\nshape check vs paper (RASA ≥ POP at every budget): {rasa_dominates}/{total} points"
    );
    save_json("fig10_efficiency", &artifacts);
}
