//! **Fig 8** — gained affinity under different algorithm-selection methods
//! (CG / MIP / HEURISTIC / MLP-BASED / GCN-BASED) with a fixed time-out.
//!
//! Pipeline mirrors Section IV-D: label subproblems sampled from the
//! training clusters (T1–T4 analogues) by racing CG vs MIP, train the GCN
//! and MLP classifiers, then run the full RASA pipeline on the evaluation
//! clusters under each selection strategy.
//!
//! Shape to reproduce: only GCN-BASED is best-or-tied on *every* cluster;
//! fixed CG / fixed MIP / HEURISTIC / MLP each lose somewhere.

use rasa_bench::{evaluation_clusters, labelling_budget, pct, print_table, save_json, timeout};
use rasa_core::{
    generate_training_set, Deadline, RasaConfig, RasaPipeline, Scheduler, SelectorChoice,
};
use rasa_select::{train_gcn, train_mlp, PoolAlgorithm};
use rasa_trace::{generate, t_clusters};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cluster: String,
    selector: String,
    normalized_gained_affinity: f64,
}

fn main() {
    let budget = timeout();
    // ---- train the learned selectors ----
    let (label_limit, label_budget) = labelling_budget();
    eprintln!("[train] generating ≤{label_limit} labelled subproblems from the T-clusters…");
    let train_problems: Vec<_> = t_clusters(900).iter().map(generate).collect();
    let data = generate_training_set(&train_problems, label_limit, label_budget, 7);
    let cg_labels = data.iter().filter(|d| d.label == PoolAlgorithm::Cg).count();
    eprintln!(
        "[train] {} examples ({} CG, {} MIP)",
        data.len(),
        cg_labels,
        data.len() - cg_labels
    );
    let (gcn, gcn_report) = train_gcn(&data, 300, 0.02, 42);
    let (mlp, mlp_report) = train_mlp(&data, 400, 0.02, 42);
    eprintln!(
        "[train] GCN accuracy {:.0}% | MLP accuracy {:.0}%",
        100.0 * gcn_report.train_accuracy,
        100.0 * mlp_report.train_accuracy
    );

    let selectors: Vec<SelectorChoice> = vec![
        SelectorChoice::AlwaysCg,
        SelectorChoice::AlwaysMip,
        SelectorChoice::Heuristic,
        SelectorChoice::Mlp(mlp),
        SelectorChoice::Gcn(gcn),
    ];

    // ---- evaluate ----
    let mut artifacts: Vec<Row> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        for selector in &selectors {
            let label = selector.label().to_string();
            let pipeline = RasaPipeline::new(RasaConfig {
                selector: selector.clone(),
                ..Default::default()
            });
            let out = pipeline.schedule(&problem, Deadline::after(budget));
            eprintln!(
                "[{name}] {:<10} nga={}",
                label,
                pct(out.normalized_gained_affinity)
            );
            artifacts.push(Row {
                cluster: name.clone(),
                selector: label,
                normalized_gained_affinity: out.normalized_gained_affinity,
            });
        }
    }

    // ---- report ----
    println!(
        "\nFig 8 — gained affinity by algorithm-selection method ({}s time-out)\n",
        budget.as_secs()
    );
    let clusters: Vec<String> = {
        let mut v: Vec<String> = artifacts.iter().map(|r| r.cluster.clone()).collect();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    for selector in &selectors {
        let label = selector.label();
        let mut row = vec![label.to_string()];
        for cluster in &clusters {
            let v = artifacts
                .iter()
                .find(|r| &r.cluster == cluster && r.selector == label)
                .map(|r| r.normalized_gained_affinity)
                .unwrap_or(0.0);
            row.push(pct(v));
        }
        rows.push(row);
    }
    let mut headers = vec!["selector"];
    headers.extend(clusters.iter().map(String::as_str));
    print_table(&headers, &rows);

    // the paper's check: is GCN best-or-tied everywhere?
    let mut gcn_always_competitive = true;
    for cluster in &clusters {
        let best = artifacts
            .iter()
            .filter(|r| &r.cluster == cluster)
            .map(|r| r.normalized_gained_affinity)
            .fold(0.0f64, f64::max);
        let gcn_v = artifacts
            .iter()
            .find(|r| &r.cluster == cluster && r.selector == "GCN-BASED")
            .map(|r| r.normalized_gained_affinity)
            .unwrap_or(0.0);
        if gcn_v < best - 0.03 {
            gcn_always_competitive = false;
        }
    }
    println!(
        "\nshape check vs paper (GCN best-or-tied on every cluster): {}",
        if gcn_always_competitive {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    save_json("fig8_selection", &artifacts);
}
