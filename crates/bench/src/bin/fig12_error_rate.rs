//! **Fig 12** — normalized request error rate for four critical service
//! pairs in production: WITH RASA vs WITHOUT RASA vs ONLY COLLOCATED.
//!
//! Shape to reproduce: same ordering as Fig 11; the paper's per-pair error
//! improvements range from 13.27% to 64.42%.

use rasa_bench::production::{mean, normalize_joint, run_production};
use rasa_bench::{print_table, save_json};

fn main() {
    let (_problem, report, config) = run_production(12);
    println!(
        "Fig 12 — normalized request error rate, {} critical pairs, {} ticks\n",
        report.pairs.len(),
        config.ticks
    );

    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for pair in &report.pairs {
        let normed = normalize_joint(&[
            &pair.error_with,
            &pair.error_without,
            &pair.error_collocated,
        ]);
        let (w, wo, co) = (mean(&normed[0]), mean(&normed[1]), mean(&normed[2]));
        let improvement = if wo > 0.0 { (wo - w) / wo } else { 0.0 };
        improvements.push(improvement);
        rows.push(vec![
            format!("{}–{}", pair.pair.0, pair.pair.1),
            format!("{:.3}", w),
            format!("{:.3}", wo),
            format!("{:.3}", co),
            format!("{:.1}%", 100.0 * improvement),
        ]);
    }
    print_table(
        &[
            "pair",
            "WITH RASA",
            "WITHOUT",
            "ONLY COLLOC.",
            "improvement",
        ],
        &rows,
    );
    let (lo, hi) = improvements
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    println!(
        "\nper-pair error-rate improvements span {:.1}%–{:.1}% (paper: 13.27%–64.42%)",
        100.0 * lo,
        100.0 * hi
    );
    save_json("fig12_error_rate", &report.pairs);
}
