//! **BENCH_serve** — request-level benchmark of the `rasa-serve` daemon,
//! plus the `--compare` regression gate CI runs against the committed
//! `BENCH_serve.json` baseline.
//!
//! Bench mode boots an in-process daemon on an ephemeral port and drives
//! it over real sockets through four phases:
//!
//! 1. **cold** — one fresh snapshot per tenant; measures full-round
//!    request latency with an empty cache;
//! 2. **warm** — one small delta per warmed tenant; measures the
//!    cache-replay path the daemon lives on in steady state;
//! 3. **tracing overhead** — the warm-delta path re-measured with the
//!    flight recorder off vs sampling 1-in-N, interleaved; strict mode
//!    gates the p50 ratio at 1.05 (skip with `RASA_BENCH_OVERHEAD=0`,
//!    disable the gate with `RASA_BENCH_STRICT=0`);
//! 4. **overload** — a synchronized burst of concurrent snapshots against
//!    a single tenant with a shallow queue; measures the accept/429 split
//!    (backpressure, not buffering);
//! 5. **drain** — `handle.shutdown()` with work enqueued; measures the
//!    graceful-drain wall time and abandoned-job count;
//! 6. **recovery** — a second daemon with write-ahead journaling on:
//!    journal a fleet of tenants, drain, re-bind on the same WAL root, and
//!    measure the journal-replay restart (every tenant back through both
//!    trust gates) plus how many certified placements survived.
//!
//! Compare mode (`--compare OLD.json NEW.json [--threshold-pct P]
//! [--abs-slack-ms S]`) diffs two artifacts and exits 0 (no regression),
//! 2 (regression found), or 3 (artifacts incomparable), mirroring the
//! pipeline bench's gate.
//!
//! Environment (bench mode): `RASA_SERVE_BENCH_OUT` — artifact path
//! (default `BENCH_serve.json`).

use rasa_bench::artifact::median;
use rasa_bench::serve_artifact::{
    compare_serve_artifacts, load_serve_artifact, LatencySummary, OverloadSummary,
    RecoverySummary, ServeBenchArtifact, ServeCompareConfig, TracingOverhead,
    SERVE_BENCH_SCHEMA_VERSION,
};
use rasa_bench::compare::CompareOutcome;
use rasa_obs::flight::FlightConfig;
use rasa_serve::{ServeConfig, Server, WalConfig};
use rasa_trace::{generate, tiny_cluster};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const TENANTS: usize = 12;
const OVERLOAD_BURST: usize = 24;
/// Tenants journaled and replayed in the recovery phase.
const RECOVERY_TENANTS: usize = 6;
/// Services per benchmark problem — large enough that a solve dominates
/// HTTP overhead, small enough to certify well inside the default
/// deadline (a deadline-clipped round would bench the deadline, not the
/// solver).
const SERVICES: usize = 24;

fn compare_mode(args: &[String]) -> ! {
    let (old_path, new_path) = match (args.first(), args.get(1)) {
        (Some(o), Some(n)) => (o.clone(), n.clone()),
        _ => {
            eprintln!("usage: serve --compare OLD.json NEW.json [--threshold-pct P] [--abs-slack-ms S]");
            std::process::exit(1);
        }
    };
    let mut cfg = ServeCompareConfig::default();
    let mut i = 2;
    while i + 1 < args.len() + 1 {
        match (args.get(i).map(String::as_str), args.get(i + 1)) {
            (Some("--threshold-pct"), Some(v)) => {
                cfg.latency_pct = v.parse().unwrap_or(cfg.latency_pct);
                i += 2;
            }
            (Some("--abs-slack-ms"), Some(v)) => {
                cfg.abs_slack_ms = v.parse().unwrap_or(cfg.abs_slack_ms);
                i += 2;
            }
            (Some(other), _) => {
                eprintln!("unknown compare flag {other}");
                std::process::exit(1);
            }
            (None, _) => break,
        }
    }
    let old = load_serve_artifact(&old_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let new = load_serve_artifact(&new_path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    match compare_serve_artifacts(&old, &new, &cfg) {
        CompareOutcome::Pass => {
            println!("serve compare: PASS ({old_path} vs {new_path})");
            std::process::exit(0);
        }
        CompareOutcome::Regressions(findings) => {
            eprintln!("serve compare: {} regression(s):", findings.len());
            for f in &findings {
                eprintln!("  - {f}");
            }
            std::process::exit(2);
        }
        CompareOutcome::Incomparable(reason) => {
            eprintln!("serve compare: incomparable — {reason}");
            std::process::exit(3);
        }
    }
}

fn problem_body(services: usize, seed: u64) -> String {
    let mut spec = tiny_cluster(seed);
    spec.services = services;
    spec.target_containers = services as u64 * 4;
    spec.machines = (services / 3).max(4);
    serde_json::to_string(&generate(&spec)).unwrap_or_else(|e| {
        eprintln!("serve bench: problem serialization failed: {e}");
        std::process::exit(1);
    })
}

/// One timed HTTP exchange; returns (status, elapsed_ms).
fn timed_request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, f64) {
    let started = Instant::now();
    let status = (|| -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        let request = format!(
            "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).ok()?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw).ok()?;
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok())
    })()
    .unwrap_or(0);
    (status, started.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        compare_mode(&args[1..]);
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 2,
        max_tenants: TENANTS + 4,
        seed: SEED,
        drain_grace: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("serve bench: bind failed: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr().unwrap_or_else(|e| {
        eprintln!("serve bench: local_addr failed: {e}");
        std::process::exit(1);
    });
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run());

    // Phase 1: cold snapshot rounds, one per fresh tenant.
    let mut cold_samples = Vec::with_capacity(TENANTS);
    for i in 0..TENANTS {
        let body = problem_body(SERVICES, SEED.wrapping_add(i as u64));
        let (status, ms) = timed_request(addr, "POST", &format!("/snapshot?tenant=b{i}"), &body);
        if status != 200 {
            eprintln!("serve bench: cold snapshot for b{i} got {status}");
            std::process::exit(1);
        }
        cold_samples.push(ms);
    }

    // Phase 2: warm rounds — an empty delta re-runs the round against an
    // unchanged world, so every subproblem replays from the solve cache.
    // This isolates the cache path the daemon lives on in steady state;
    // cold minus warm is the price of an actual solve.
    let mut warm_samples = Vec::with_capacity(TENANTS);
    for i in 0..TENANTS {
        let delta = "{\"edge_updates\":[],\"replica_updates\":[]}";
        let (status, ms) = timed_request(addr, "POST", &format!("/delta?tenant=b{i}"), delta);
        if status != 200 {
            eprintln!("serve bench: warm delta for b{i} got {status}");
            std::process::exit(1);
        }
        warm_samples.push(ms);
    }

    // Phase 2b: request-scoped tracing overhead — the same warm-delta
    // path with the flight recorder off vs sampling 1-in-N, interleaved
    // per sweep so machine drift hits both sides equally. Context
    // propagation itself is always on; this measures what stamping it
    // into recordings costs when tracing is enabled.
    let tracing_overhead = if std::env::var("RASA_BENCH_OVERHEAD").as_deref() == Ok("0") {
        None
    } else {
        let rec = rasa_obs::flight::recorder();
        let prev_enabled = rec.enabled();
        let prev_config = rec.config();
        let sample_every = 4u64;
        let enabled_config = FlightConfig {
            dump_dir: None, // cost of recording, not of disk IO
            sample_every,
            ..FlightConfig::default()
        };
        let delta = "{\"edge_updates\":[],\"replica_updates\":[]}";
        let mut disabled_ms = Vec::new();
        let mut enabled_ms = Vec::new();
        for _ in 0..5 {
            rec.set_enabled(false);
            for i in 0..TENANTS {
                let (status, ms) =
                    timed_request(addr, "POST", &format!("/delta?tenant=b{i}"), delta);
                if status == 200 {
                    disabled_ms.push(ms);
                }
            }
            rec.configure(enabled_config.clone());
            for i in 0..TENANTS {
                let (status, ms) =
                    timed_request(addr, "POST", &format!("/delta?tenant=b{i}"), delta);
                if status == 200 {
                    enabled_ms.push(ms);
                }
            }
        }
        rec.configure(prev_config);
        rec.set_enabled(prev_enabled);
        let disabled_p50_ms = median(disabled_ms);
        let enabled_p50_ms = median(enabled_ms);
        Some(TracingOverhead {
            disabled_p50_ms,
            enabled_p50_ms,
            sample_every,
            ratio: enabled_p50_ms / disabled_p50_ms.max(1e-12),
        })
    };

    // Phase 3: synchronized overload burst against one tenant.
    let barrier = Arc::new(Barrier::new(OVERLOAD_BURST));
    let clients: Vec<_> = (0..OVERLOAD_BURST)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            let body = problem_body(12, SEED.wrapping_add(1000 + i as u64));
            std::thread::spawn(move || {
                barrier.wait();
                timed_request(addr, "POST", "/snapshot?tenant=burst", &body).0
            })
        })
        .collect();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for client in clients {
        match client.join() {
            Ok(200) => accepted += 1,
            Ok(429) => rejected += 1,
            Ok(other) => {
                eprintln!("serve bench: overload burst got unexpected {other}");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("serve bench: overload client panicked");
                std::process::exit(1);
            }
        }
    }

    // Phase 4: drain with fresh work enqueued.
    for i in 0..3 {
        let body = problem_body(10, SEED.wrapping_add(2000 + i));
        let target = format!("/snapshot?tenant=d{i}");
        std::thread::spawn(move || timed_request(addr, "POST", &target, &body));
    }
    std::thread::sleep(Duration::from_millis(20));
    handle.shutdown();
    let drain = daemon.join().unwrap_or_else(|_| {
        eprintln!("serve bench: daemon thread panicked");
        std::process::exit(1);
    });

    // Phase 5: journal-replay restart. A separate WAL-enabled daemon:
    // journal a small fleet, drain, then re-bind on the same root —
    // `bind` replays every journal through both trust gates before the
    // socket opens, which is exactly the window we time.
    let wal_root = std::env::temp_dir().join(format!("rasa_serve_bench_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let recovery_config = || ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        max_tenants: RECOVERY_TENANTS + 1,
        seed: SEED,
        drain_grace: Duration::from_secs(30),
        wal: Some(WalConfig::new(wal_root.clone())),
        ..ServeConfig::default()
    };
    let recovery = {
        let server = Server::bind(recovery_config()).unwrap_or_else(|e| {
            eprintln!("serve bench: recovery-phase bind failed: {e}");
            std::process::exit(1);
        });
        let addr = server.local_addr().unwrap_or_else(|e| {
            eprintln!("serve bench: recovery-phase local_addr failed: {e}");
            std::process::exit(1);
        });
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run());
        let delta = "{\"edge_updates\":[{\"a\":0,\"b\":1,\"weight\":21.5}],\"replica_updates\":[]}";
        for i in 0..RECOVERY_TENANTS {
            let body = problem_body(10, SEED.wrapping_add(3000 + i as u64));
            let (status, _) = timed_request(addr, "POST", &format!("/snapshot?tenant=r{i}"), &body);
            if status != 200 {
                eprintln!("serve bench: recovery-phase snapshot for r{i} got {status}");
                std::process::exit(1);
            }
            let (status, _) = timed_request(addr, "POST", &format!("/delta?tenant=r{i}"), delta);
            if status != 200 {
                eprintln!("serve bench: recovery-phase delta for r{i} got {status}");
                std::process::exit(1);
            }
        }
        handle.shutdown();
        if daemon.join().is_err() {
            eprintln!("serve bench: recovery-phase daemon panicked");
            std::process::exit(1);
        }

        let replayed_counter = rasa_obs::global().counter("recovery.records_replayed");
        let replayed_before = replayed_counter.get();
        let started = Instant::now();
        let server = Server::bind(recovery_config()).unwrap_or_else(|e| {
            eprintln!("serve bench: recovering bind failed: {e}");
            std::process::exit(1);
        });
        let recover_ms = started.elapsed().as_secs_f64() * 1e3;
        let addr = server.local_addr().unwrap_or_else(|e| {
            eprintln!("serve bench: recovered local_addr failed: {e}");
            std::process::exit(1);
        });
        let handle = server.handle();
        let daemon = std::thread::spawn(move || server.run());
        let recovered_placements = (0..RECOVERY_TENANTS)
            .filter(|i| timed_request(addr, "GET", &format!("/placement?tenant=r{i}"), "").0 == 200)
            .count() as u64;
        handle.shutdown();
        let _ = daemon.join();
        let _ = std::fs::remove_dir_all(&wal_root);
        RecoverySummary {
            tenants: RECOVERY_TENANTS as u64,
            records_replayed: replayed_counter.get() - replayed_before,
            recover_ms,
            recovered_placements,
        }
    };

    let cold = LatencySummary::from_samples(&cold_samples);
    let warm = LatencySummary::from_samples(&warm_samples);
    let artifact = ServeBenchArtifact {
        schema_version: SERVE_BENCH_SCHEMA_VERSION,
        seed: SEED,
        requests_per_phase: TENANTS,
        warm_speedup: if warm.p50_ms > 0.0 { cold.p50_ms / warm.p50_ms } else { 0.0 },
        cold,
        warm,
        overload: OverloadSummary {
            offered: OVERLOAD_BURST as u64,
            accepted,
            rejected_429: rejected,
            rejection_rate: rejected as f64 / OVERLOAD_BURST as f64,
        },
        drain_ms: drain.drain_seconds * 1e3,
        drain_abandoned: drain.abandoned_jobs,
        tracing_overhead,
        recovery,
    };

    println!(
        "cold  p50 {:8.2} ms  p95 {:8.2} ms  p99 {:8.2} ms",
        artifact.cold.p50_ms, artifact.cold.p95_ms, artifact.cold.p99_ms
    );
    println!(
        "warm  p50 {:8.2} ms  p95 {:8.2} ms  p99 {:8.2} ms  (speedup x{:.2})",
        artifact.warm.p50_ms, artifact.warm.p95_ms, artifact.warm.p99_ms, artifact.warm_speedup
    );
    println!(
        "overload: {} offered, {} accepted, {} shed (rate {:.2})",
        artifact.overload.offered,
        artifact.overload.accepted,
        artifact.overload.rejected_429,
        artifact.overload.rejection_rate
    );
    println!(
        "drain: {:.1} ms, {} abandoned",
        artifact.drain_ms, artifact.drain_abandoned
    );
    if let Some(ov) = &artifact.tracing_overhead {
        println!(
            "tracing overhead: disabled p50 {:.2} ms, 1-in-{} sampling p50 {:.2} ms (ratio {:.3})",
            ov.disabled_p50_ms, ov.sample_every, ov.enabled_p50_ms, ov.ratio
        );
    }
    println!(
        "recovery: {} tenants, {} records replayed, {:.1} ms, {} placements recovered",
        artifact.recovery.tenants,
        artifact.recovery.records_replayed,
        artifact.recovery.recover_ms,
        artifact.recovery.recovered_placements
    );

    if artifact.recovery.recovered_placements < artifact.recovery.tenants {
        eprintln!(
            "serve bench: recovery lost placements ({} of {} tenants)",
            artifact.recovery.recovered_placements, artifact.recovery.tenants
        );
        std::process::exit(1);
    }

    if artifact.overload.rejected_429 == 0 {
        eprintln!("serve bench: overload burst shed nothing — backpressure is not engaging");
        std::process::exit(1);
    }

    // Strict gate (default on; RASA_BENCH_STRICT=0 disables): request
    // tracing must cost at most 5% p50 on the warm path, with a 1 ms
    // absolute floor so micro-runs don't fail on timer noise.
    let strict = std::env::var("RASA_BENCH_STRICT").as_deref() != Ok("0");
    if strict {
        if let Some(ov) = &artifact.tracing_overhead {
            if ov.ratio > 1.05 && ov.enabled_p50_ms - ov.disabled_p50_ms > 1.0 {
                eprintln!(
                    "serve bench: tracing overhead {:.1}% exceeds 5% (disabled p50 {:.2} ms, \
                     enabled p50 {:.2} ms)",
                    (ov.ratio - 1.0) * 100.0,
                    ov.disabled_p50_ms,
                    ov.enabled_p50_ms
                );
                std::process::exit(2);
            }
        }
    }

    let out = std::env::var("RASA_SERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let json = match serde_json::to_string_pretty(&artifact) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("serve bench: artifact serialization failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("serve bench: writing {out} failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
