//! **Fig 9** — gained affinity of POP / K8s+ / APPLSCI19 / RASA / ORIGINAL
//! under a fixed time-out.
//!
//! Paper numbers to approximate in shape: RASA > all baselines on every
//! cluster; on average RASA ≈ 13.8× ORIGINAL, +17.66% over APPLSCI19,
//! +54.91% over POP, +54.69% over K8s+.

use rasa_baselines::{Applsci19, K8sPlus, Original, Pop};
use rasa_bench::{evaluation_clusters, pct, print_table, save_json, timeout, trained_gcn_selector};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice};
use rasa_solver::Scheduler;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cluster: String,
    algorithm: String,
    normalized_gained_affinity: f64,
    elapsed_secs: f64,
    completed: bool,
}

fn main() {
    let budget = timeout();
    // the deployed RASA uses the GCN-based selector (Section IV-D)
    let rasa = RasaPipeline::new(RasaConfig {
        selector: SelectorChoice::Gcn(trained_gcn_selector()),
        ..Default::default()
    });
    let k8s_plus = K8sPlus::default();
    let pop = Pop::default();
    let applsci = Applsci19::default();
    let algorithms: Vec<(&str, &dyn Scheduler)> = vec![
        ("ORIGINAL", &Original),
        ("K8s+", &k8s_plus),
        ("POP", &pop),
        ("APPLSCI19", &applsci),
        ("RASA", &rasa),
    ];

    let mut artifacts: Vec<Row> = Vec::new();
    for (name, problem) in evaluation_clusters() {
        for (label, alg) in &algorithms {
            let out = alg.schedule(&problem, Deadline::after(budget));
            eprintln!(
                "[{name}] {:<10} nga={} in {:.1}s{}",
                label,
                pct(out.normalized_gained_affinity),
                out.elapsed.as_secs_f64(),
                if out.completed { "" } else { " (timed out)" }
            );
            artifacts.push(Row {
                cluster: name.clone(),
                algorithm: label.to_string(),
                normalized_gained_affinity: out.normalized_gained_affinity,
                elapsed_secs: out.elapsed.as_secs_f64(),
                completed: out.completed,
            });
        }
    }

    println!(
        "\nFig 9 — gained affinity by algorithm ({}s time-out)\n",
        budget.as_secs()
    );
    let clusters: Vec<String> = {
        let mut v: Vec<String> = artifacts.iter().map(|r| r.cluster.clone()).collect();
        v.dedup();
        v
    };
    let mut rows = Vec::new();
    for (label, _) in &algorithms {
        let mut row = vec![label.to_string()];
        for cluster in &clusters {
            let v = artifacts
                .iter()
                .find(|r| &r.cluster == cluster && &r.algorithm == label)
                .map(|r| r.normalized_gained_affinity)
                .unwrap_or(0.0);
            row.push(pct(v));
        }
        rows.push(row);
    }
    let mut headers = vec!["algorithm"];
    headers.extend(clusters.iter().map(String::as_str));
    print_table(&headers, &rows);

    let avg = |label: &str| -> f64 {
        let vals: Vec<f64> = artifacts
            .iter()
            .filter(|r| r.algorithm == label)
            .map(|r| r.normalized_gained_affinity)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!("\naverages:");
    for (label, _) in &algorithms {
        println!("  {:<10} {}", label, pct(avg(label)));
    }
    let rasa_avg = avg("RASA");
    let orig_avg = avg("ORIGINAL");
    println!("\npaper-vs-measured factors:");
    if orig_avg > 0.0 {
        println!(
            "  RASA / ORIGINAL = {:.1}× (paper: 13.83×)",
            rasa_avg / orig_avg
        );
    }
    for (other, paper) in [("APPLSCI19", 17.66), ("POP", 54.91), ("K8s+", 54.69)] {
        let v = avg(other);
        if v > 0.0 {
            println!(
                "  RASA vs {other}: +{:.1}% (paper: +{paper}%)",
                100.0 * (rasa_avg - v) / v
            );
        }
    }
    save_json("fig9_quality", &artifacts);
}
