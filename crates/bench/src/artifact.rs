//! The `BENCH_pipeline.json` artifact schema: what the pipeline bench
//! writes, what the `--compare` regression gate reads, and what CI
//! uploads. Version-stamped so two artifacts are only ever diffed when
//! they describe the same schema.

use serde::{Deserialize, Serialize};

/// Version stamped into every artifact. Bump on any field change that
/// would make old/new artifacts incomparable; `--compare` refuses
/// mismatches outright.
///
/// History: v1 = unversioned PR 2/3 artifact (p50/p95 stages only);
/// v2 = `schema_version` + p99/max stage columns + recorder overhead.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// One warm-start round within a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 1-based round number; round 1 is the cold solve.
    pub round: usize,
    /// End-to-end wall time of the round, seconds.
    pub elapsed_secs: f64,
    /// Objective (gained affinity / total affinity) of the round.
    pub normalized_gained_affinity: f64,
    /// Subproblems replayed verbatim from the solve cache.
    pub cache_hits: usize,
    /// Subproblems solved fresh.
    pub cache_misses: usize,
    /// Cache entries evicted at end of round.
    pub cache_invalidations: usize,
}

/// One pipeline run on one trace. The headline fields describe the cold
/// round; `rounds` holds the per-round warm-start trajectory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRecord {
    /// Trace name (e.g. `tiny-1`).
    pub trace: String,
    /// Selector label (`heuristic` / `always-cg`).
    pub selector: String,
    /// Services in the trace.
    pub services: usize,
    /// Machines in the trace.
    pub machines: usize,
    /// Subproblems the partition produced.
    pub subproblems: usize,
    /// Cold-round objective.
    pub normalized_gained_affinity: f64,
    /// Cold-round end-to-end wall time, seconds.
    pub elapsed_secs: f64,
    /// Whether any subproblem degraded on the cold round.
    pub degraded: bool,
    /// `SolveStatus` tallies for this run, e.g. `[["ok", 7]]`.
    pub statuses: Vec<(String, u64)>,
    /// Cold and warm rounds, in order.
    pub rounds: Vec<RoundRecord>,
}

/// Cold-vs-warm latency summary across all runs (present when the bench
/// ran more than one round).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WarmStartSummary {
    /// Median end-to-end latency of the cold rounds, seconds.
    pub cold_p50_secs: f64,
    /// Median end-to-end latency of the warm rounds, seconds.
    pub warm_p50_secs: f64,
    /// `cold_p50_secs / warm_p50_secs`.
    pub speedup: f64,
}

/// Latency percentiles for one obs histogram, in milliseconds. p50/p95/p99
/// are log₂-bucket estimates; `max_ms` is exact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageLatency {
    /// Histogram name (e.g. `pipeline.solve_seconds`).
    pub stage: String,
    /// Observations recorded.
    pub count: u64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Largest observation, milliseconds (exact, not bucket-estimated).
    pub max_ms: f64,
    /// Mean, milliseconds.
    pub mean_ms: f64,
}

/// Flight-recorder overhead measurement: the same pipeline run with the
/// recorder off and on (1-in-N sampling), interleaved to cancel drift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecorderOverhead {
    /// Median run latency with the recorder disabled, seconds.
    pub disabled_p50_secs: f64,
    /// Median run latency with the recorder sampling 1-in-N, seconds.
    pub enabled_p50_secs: f64,
    /// Healthy-solve sampling period used while enabled.
    pub sample_every: u64,
    /// `enabled_p50_secs / disabled_p50_secs`.
    pub ratio: f64,
}

/// The full `BENCH_pipeline.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Artifact schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `RASA_SCALE` the bench ran at (`small` / `full`).
    pub scale: String,
    /// Per-algorithm solve budget, seconds.
    pub timeout_secs: f64,
    /// Rounds per (trace, selector) pair; round 1 is cold.
    pub rounds: usize,
    /// One record per (trace, selector) pair.
    pub runs: Vec<RunRecord>,
    /// Latency percentiles for the selected stage histograms.
    pub stages: Vec<StageLatency>,
    /// Every obs counter that fired, as `[name, value]` pairs.
    pub counters: Vec<(String, u64)>,
    /// Cold-vs-warm medians; `null` when only one round ran.
    pub warm_start: Option<WarmStartSummary>,
    /// Flight-recorder overhead measurement; `null` when skipped.
    pub recorder_overhead: Option<RecorderOverhead>,
}

impl BenchArtifact {
    /// Value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The stage entry named `stage`, if recorded.
    pub fn stage(&self, stage: &str) -> Option<&StageLatency> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Warm/cold p50 latency ratio, if the bench ran warm rounds.
    pub fn warm_ratio(&self) -> Option<f64> {
        self.warm_start
            .as_ref()
            .map(|w| w.warm_p50_secs / w.cold_p50_secs.max(1e-12))
    }
}

/// Median of an unsorted sample (0 when empty).
pub fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Extract the `"schema_version": N` field from raw artifact JSON without
/// deserializing the whole document — old (pre-versioning) artifacts fail
/// full deserialization with an opaque error, and the version check must
/// produce a clear one instead.
pub fn extract_schema_version(json: &str) -> Option<u32> {
    let key = "\"schema_version\"";
    let at = json.find(key)?;
    let rest = json[at + key.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median(vec![]), 0.0);
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(vec![4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn schema_version_extraction() {
        assert_eq!(
            extract_schema_version("{\n  \"schema_version\": 2,\n  \"scale\": \"small\"\n}"),
            Some(2)
        );
        assert_eq!(extract_schema_version("{\"schema_version\":17}"), Some(17));
        assert_eq!(extract_schema_version("{\"scale\": \"small\"}"), None);
    }

    #[test]
    fn artifact_round_trips_and_helpers_work() {
        let artifact = BenchArtifact {
            schema_version: BENCH_SCHEMA_VERSION,
            scale: "small".into(),
            timeout_secs: 10.0,
            rounds: 3,
            runs: Vec::new(),
            stages: vec![StageLatency {
                stage: "pipeline.solve_seconds".into(),
                count: 8,
                p50_ms: 10.0,
                p95_ms: 20.0,
                p99_ms: 25.0,
                max_ms: 30.0,
                mean_ms: 12.0,
            }],
            counters: vec![("bnb.nodes".into(), 42)],
            warm_start: Some(WarmStartSummary {
                cold_p50_secs: 0.1,
                warm_p50_secs: 0.02,
                speedup: 5.0,
            }),
            recorder_overhead: None,
        };
        let json = serde_json::to_string_pretty(&artifact).expect("serialize");
        assert_eq!(extract_schema_version(&json), Some(BENCH_SCHEMA_VERSION));
        let back: BenchArtifact = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.counter("bnb.nodes"), 42);
        assert_eq!(back.counter("missing"), 0);
        assert_eq!(back.stage("pipeline.solve_seconds").map(|s| s.count), Some(8));
        let ratio = back.warm_ratio().expect("warm rounds present");
        assert!((ratio - 0.2).abs() < 1e-12);
    }
}
