//! The `BENCH_serve.json` artifact schema and regression gate: request
//! latency percentiles (cold snapshot rounds vs warm delta rounds),
//! rejection behavior under deliberate queue overload, and graceful-drain
//! timing for the `rasa-serve` daemon. Version-stamped independently of
//! the pipeline artifact — the two evolve on different schedules.

use crate::artifact::extract_schema_version;
use crate::compare::CompareOutcome;
use serde::{Deserialize, Serialize};

/// Version stamped into every serve artifact. Bump on any field change
/// that would make old/new artifacts incomparable.
///
/// v2 added `tracing_overhead` (request-scoped tracing cost on the warm
/// request path). v3 added `recovery` (journal-replay restart timing and
/// completeness with write-ahead journaling on).
pub const SERVE_BENCH_SCHEMA_VERSION: u32 = 3;

/// Exact latency percentiles over one request phase, in milliseconds.
/// Computed from the raw per-request samples (not histogram buckets), so
/// p99 and max are exact.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Slowest request, milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarize raw samples (milliseconds). Empty input gives all zeros.
    pub fn from_samples(samples: &[f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencySummary {
            count: sorted.len() as u64,
            p50_ms: at(0.50),
            p95_ms: at(0.95),
            p99_ms: at(0.99),
            max_ms: sorted[sorted.len() - 1],
        }
    }
}

/// What happened when the bench deliberately overloaded one tenant's
/// bounded queue with a synchronized burst.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OverloadSummary {
    /// Concurrent requests offered in the burst.
    pub offered: u64,
    /// Requests that solved (`200`).
    pub accepted: u64,
    /// Requests shed with `429` + `Retry-After`.
    pub rejected_429: u64,
    /// `rejected_429 / offered`.
    pub rejection_rate: f64,
}

/// Request-scoped tracing cost: the same warm-delta request path with the
/// flight recorder off and sampling 1-in-N, interleaved to cancel drift
/// (the serve-side analog of the pipeline bench's `recorder_overhead`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TracingOverhead {
    /// Median warm-request latency with the recorder disabled, ms.
    pub disabled_p50_ms: f64,
    /// Median warm-request latency with the recorder sampling 1-in-N, ms.
    pub enabled_p50_ms: f64,
    /// Healthy-solve sampling period used while enabled.
    pub sample_every: u64,
    /// `enabled_p50_ms / disabled_p50_ms` — strict mode gates this at 1.05.
    pub ratio: f64,
}

/// Crash-recovery cost: the bench journals state for a fleet of tenants,
/// drains, and re-binds on the same WAL root — the restart path replays
/// every journal through both trust gates before the daemon serves.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Journaled tenants the restart recovered.
    pub tenants: u64,
    /// Journal records replayed across all tenants.
    pub records_replayed: u64,
    /// Wall-clock of the recovering `bind`, milliseconds.
    pub recover_ms: f64,
    /// Tenants whose certified placement survived the restart (a healthy
    /// bench recovers one per tenant).
    pub recovered_placements: u64,
}

/// The `BENCH_serve.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeBenchArtifact {
    /// Schema version (see [`SERVE_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Seed the daemon and workload ran under.
    pub seed: u64,
    /// Requests per latency phase (cold and warm each measure this many).
    pub requests_per_phase: usize,
    /// Cold rounds: first snapshot per fresh tenant (no cache, no
    /// incumbent).
    pub cold: LatencySummary,
    /// Warm rounds: small deltas against warmed tenants (cache replays).
    pub warm: LatencySummary,
    /// `cold.p50_ms / warm.p50_ms` (0 when warm p50 is 0).
    pub warm_speedup: f64,
    /// Overload burst behavior.
    pub overload: OverloadSummary,
    /// Graceful-drain wall time, milliseconds.
    pub drain_ms: f64,
    /// Jobs abandoned at the drain grace cutoff (0 in a healthy bench).
    pub drain_abandoned: u64,
    /// Request-scoped tracing cost; `null` when skipped
    /// (`RASA_BENCH_OVERHEAD=0`).
    pub tracing_overhead: Option<TracingOverhead>,
    /// Journal-replay restart cost and completeness.
    pub recovery: RecoverySummary,
}

/// Thresholds for the serve regression gate.
#[derive(Clone, Debug)]
pub struct ServeCompareConfig {
    /// Allowed relative latency growth per percentile, percent.
    pub latency_pct: f64,
    /// Absolute slack on top of the relative bound, milliseconds.
    pub abs_slack_ms: f64,
    /// Allowed absolute drift of the overload rejection rate.
    pub rejection_slack: f64,
    /// Allowed relative drain-time growth, percent.
    pub drain_pct: f64,
    /// Allowed relative recovery-time growth, percent.
    pub recovery_pct: f64,
}

impl Default for ServeCompareConfig {
    fn default() -> Self {
        ServeCompareConfig {
            latency_pct: 50.0,
            abs_slack_ms: 10.0,
            rejection_slack: 0.35,
            drain_pct: 100.0,
            recovery_pct: 100.0,
        }
    }
}

/// Load and schema-check a serve artifact from `path`.
pub fn load_serve_artifact(path: &str) -> Result<ServeBenchArtifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match extract_schema_version(&text) {
        None => Err(format!(
            "{path}: no schema_version field — regenerate with \
             `cargo run --release -p rasa-bench --bin serve`"
        )),
        Some(v) if v != SERVE_BENCH_SCHEMA_VERSION => Err(format!(
            "{path}: schema_version {v} but this binary compares \
             v{SERVE_BENCH_SCHEMA_VERSION} serve artifacts; regenerate the artifact"
        )),
        Some(_) => serde_json::from_str(&text).map_err(|e| format!("{path}: {e}")),
    }
}

/// Diff `new` against the `old` baseline under `cfg`.
pub fn compare_serve_artifacts(
    old: &ServeBenchArtifact,
    new: &ServeBenchArtifact,
    cfg: &ServeCompareConfig,
) -> CompareOutcome {
    if old.requests_per_phase != new.requests_per_phase {
        return CompareOutcome::Incomparable(format!(
            "phase-size mismatch: baseline measured {} requests per phase, candidate {}",
            old.requests_per_phase, new.requests_per_phase
        ));
    }
    if old.overload.offered != new.overload.offered {
        return CompareOutcome::Incomparable(format!(
            "overload-burst mismatch: baseline offered {}, candidate {}",
            old.overload.offered, new.overload.offered
        ));
    }

    let mut findings = Vec::new();
    let factor = 1.0 + cfg.latency_pct / 100.0;
    for (phase, old_l, new_l) in [("cold", &old.cold, &new.cold), ("warm", &old.warm, &new.warm)] {
        for (pct, old_v, new_v) in [
            ("p50", old_l.p50_ms, new_l.p50_ms),
            ("p95", old_l.p95_ms, new_l.p95_ms),
            ("p99", old_l.p99_ms, new_l.p99_ms),
        ] {
            let bound = old_v * factor + cfg.abs_slack_ms;
            if new_v > bound {
                findings.push(format!(
                    "{phase} {pct} regressed: {old_v:.3} ms -> {new_v:.3} ms \
                     (bound {bound:.3} ms = old x{factor:.2} + {:.1} ms slack)",
                    cfg.abs_slack_ms
                ));
            }
        }
    }

    // The overload burst must still shed load — a daemon that stops
    // rejecting under a queue-saturating burst has lost its backpressure,
    // and one that rejects everything has lost its throughput.
    if old.overload.rejected_429 > 0 && new.overload.rejected_429 == 0 {
        findings.push(
            "overload burst no longer sheds load: baseline returned 429s, candidate none \
             — backpressure is gone"
                .to_string(),
        );
    }
    if new.overload.accepted == 0 {
        findings.push("overload burst accepted nothing — daemon rejects all traffic".to_string());
    }
    let rate_drift = (new.overload.rejection_rate - old.overload.rejection_rate).abs();
    if rate_drift > cfg.rejection_slack {
        findings.push(format!(
            "overload rejection rate drifted: {:.2} -> {:.2} (allowed ±{:.2})",
            old.overload.rejection_rate, new.overload.rejection_rate, cfg.rejection_slack
        ));
    }

    let drain_bound = old.drain_ms * (1.0 + cfg.drain_pct / 100.0) + cfg.abs_slack_ms;
    if new.drain_ms > drain_bound {
        findings.push(format!(
            "drain regressed: {:.1} ms -> {:.1} ms (bound {:.1} ms)",
            old.drain_ms, new.drain_ms, drain_bound
        ));
    }
    if new.drain_abandoned > old.drain_abandoned {
        findings.push(format!(
            "drain abandoned more jobs: {} -> {}",
            old.drain_abandoned, new.drain_abandoned
        ));
    }

    // Recovery must stay bounded and complete: a restart that replays the
    // same fleet's journals markedly slower — or comes up missing
    // placements — is a durability regression, not noise.
    if old.recovery.tenants != new.recovery.tenants {
        findings.push(format!(
            "recovery fleet mismatch: baseline journaled {} tenants, candidate {}",
            old.recovery.tenants, new.recovery.tenants
        ));
    } else {
        let recover_bound =
            old.recovery.recover_ms * (1.0 + cfg.recovery_pct / 100.0) + cfg.abs_slack_ms;
        if new.recovery.recover_ms > recover_bound {
            findings.push(format!(
                "recovery regressed: {:.1} ms -> {:.1} ms (bound {:.1} ms)",
                old.recovery.recover_ms, new.recovery.recover_ms, recover_bound
            ));
        }
        if new.recovery.recovered_placements < new.recovery.tenants {
            findings.push(format!(
                "recovery lost placements: {} of {} tenants came back with their \
                 certified placement",
                new.recovery.recovered_placements, new.recovery.tenants
            ));
        }
    }

    // Request-scoped tracing must stay near-free on the warm path: gate
    // the candidate's measured ratio at 1.05× even when the baseline
    // skipped the measurement, with a 1 ms absolute floor so micro-runs
    // don't fail on timer noise.
    if let Some(new_ov) = &new.tracing_overhead {
        if new_ov.ratio > 1.05 && new_ov.enabled_p50_ms - new_ov.disabled_p50_ms > 1.0 {
            findings.push(format!(
                "tracing overhead {:.1}% exceeds 5% (disabled p50 {:.2} ms, \
                 enabled p50 {:.2} ms)",
                (new_ov.ratio - 1.0) * 100.0,
                new_ov.disabled_p50_ms,
                new_ov.enabled_p50_ms
            ));
        }
    }

    if findings.is_empty() {
        CompareOutcome::Pass
    } else {
        CompareOutcome::Regressions(findings)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn base() -> ServeBenchArtifact {
        ServeBenchArtifact {
            schema_version: SERVE_BENCH_SCHEMA_VERSION,
            seed: 42,
            requests_per_phase: 12,
            cold: LatencySummary {
                count: 12,
                p50_ms: 20.0,
                p95_ms: 40.0,
                p99_ms: 45.0,
                max_ms: 50.0,
            },
            warm: LatencySummary {
                count: 12,
                p50_ms: 8.0,
                p95_ms: 15.0,
                p99_ms: 18.0,
                max_ms: 20.0,
            },
            warm_speedup: 2.5,
            overload: OverloadSummary {
                offered: 24,
                accepted: 6,
                rejected_429: 18,
                rejection_rate: 0.75,
            },
            drain_ms: 30.0,
            drain_abandoned: 0,
            tracing_overhead: Some(TracingOverhead {
                disabled_p50_ms: 8.0,
                enabled_p50_ms: 8.2,
                sample_every: 4,
                ratio: 8.2 / 8.0,
            }),
            recovery: RecoverySummary {
                tenants: 6,
                records_replayed: 24,
                recover_ms: 40.0,
                recovered_placements: 6,
            },
        }
    }

    #[test]
    fn self_compare_passes() {
        let a = base();
        assert!(matches!(
            compare_serve_artifacts(&a, &a, &ServeCompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn latency_blowup_and_lost_backpressure_are_regressions() {
        let old = base();
        let mut new = base();
        new.warm.p95_ms = 200.0;
        new.overload.rejected_429 = 0;
        new.overload.rejection_rate = 0.0;
        match compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()) {
            CompareOutcome::Regressions(findings) => {
                assert!(findings.iter().any(|f| f.contains("warm p95")));
                assert!(findings.iter().any(|f| f.contains("backpressure")));
                assert!(findings.iter().any(|f| f.contains("rejection rate drifted")));
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn tracing_overhead_blowup_is_a_regression() {
        let old = base();
        let mut new = base();
        new.tracing_overhead = Some(TracingOverhead {
            disabled_p50_ms: 8.0,
            enabled_p50_ms: 12.0,
            sample_every: 4,
            ratio: 1.5,
        });
        match compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()) {
            CompareOutcome::Regressions(findings) => {
                assert!(findings.iter().any(|f| f.contains("tracing overhead")));
            }
            other => panic!("expected regressions, got {other:?}"),
        }
        // a skipped measurement is not a regression
        new.tracing_overhead = None;
        assert!(matches!(
            compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn recovery_slowdown_and_lost_placements_are_regressions() {
        let old = base();
        let mut new = base();
        new.recovery.recover_ms = 400.0; // > 40 x2 + 10 slack
        new.recovery.recovered_placements = 3;
        match compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()) {
            CompareOutcome::Regressions(findings) => {
                assert!(findings.iter().any(|f| f.contains("recovery regressed")));
                assert!(findings.iter().any(|f| f.contains("recovery lost placements")));
            }
            other => panic!("expected regressions, got {other:?}"),
        }
        // a differently-sized fleet is flagged, not silently compared
        new.recovery = RecoverySummary {
            tenants: 99,
            ..old.recovery.clone()
        };
        match compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()) {
            CompareOutcome::Regressions(findings) => {
                assert!(findings.iter().any(|f| f.contains("recovery fleet mismatch")));
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn phase_size_mismatch_is_incomparable_not_a_regression() {
        let old = base();
        let mut new = base();
        new.requests_per_phase = 99;
        assert!(matches!(
            compare_serve_artifacts(&old, &new, &ServeCompareConfig::default()),
            CompareOutcome::Incomparable(_)
        ));
    }

    #[test]
    fn percentiles_from_samples_are_exact() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(LatencySummary::from_samples(&[]).count, 0);
    }
}
