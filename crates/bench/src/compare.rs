//! The `rasa-bench --compare OLD.json NEW.json` regression gate.
//!
//! Diffs two [`BenchArtifact`]s and reports regressions: per-stage
//! p50/p95 latency blowups, solver-counter explosions or silently-zeroed
//! hot paths, and warm-start ratio decay. CI runs this against the
//! committed baseline and fails the build on any finding.
//!
//! Stages that hit the solve deadline in the *baseline* are treated as
//! budget-bound: their sample distribution is bimodal (fast subproblems
//! vs. deadline-capped ones), so one extra capped sample can swing a
//! percentile by octaves without any per-pivot slowdown. For those
//! stages the latency bound is floored at the baseline's solve budget
//! plus slack — the deadline guard caps every solve, so latency only
//! meaningfully regresses when a solve overruns its budget.

use crate::artifact::{extract_schema_version, BenchArtifact, BENCH_SCHEMA_VERSION};

/// Thresholds for the regression gate. Defaults are tuned for same-machine
/// comparisons; CI loosens `latency_pct` because baseline and candidate run
/// on different hardware.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Allowed relative latency growth per stage percentile, in percent
    /// (50.0 = new may be up to 1.5x old).
    pub latency_pct: f64,
    /// Absolute slack added on top of the relative latency bound, in
    /// milliseconds — keeps micro-stage jitter from tripping the gate.
    pub abs_slack_ms: f64,
    /// Allowed multiplicative growth of hot solver counters
    /// (2.0 = new may do up to 2x the old pivots/nodes/rounds).
    pub counter_factor: f64,
    /// Allowed relative growth of the warm/cold latency ratio, in percent.
    pub warm_pct: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            latency_pct: 50.0,
            abs_slack_ms: 5.0,
            counter_factor: 2.0,
            warm_pct: 25.0,
        }
    }
}

/// Hot-path counters that must stay nonzero (the solvers actually ran) and
/// must not explode between baseline and candidate.
pub const HOT_COUNTERS: [&str; 3] = ["simplex.pivots", "bnb.nodes", "cg.rounds"];

/// Outcome of a comparison.
#[derive(Clone, Debug)]
pub enum CompareOutcome {
    /// No regression found.
    Pass,
    /// One finding per regression, human-readable.
    Regressions(Vec<String>),
    /// The artifacts cannot be meaningfully diffed (different scale or
    /// round count). Distinct from a regression: the gate errs loudly
    /// instead of passing or failing on noise.
    Incomparable(String),
}

/// Load and schema-check an artifact from `path`.
///
/// Rejects missing or mismatched `schema_version` with an error naming the
/// versions involved, *before* attempting full deserialization — an old
/// artifact must produce "schema_version 2 required", not a parse error.
pub fn load_artifact(path: &str) -> Result<BenchArtifact, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match extract_schema_version(&text) {
        None => Err(format!(
            "{path}: no schema_version field — artifact predates schema v{BENCH_SCHEMA_VERSION}; \
             regenerate it with `cargo run --release -p rasa-bench --bin pipeline`"
        )),
        Some(v) if v != BENCH_SCHEMA_VERSION => Err(format!(
            "{path}: schema_version {v} but this binary compares v{BENCH_SCHEMA_VERSION} artifacts; \
             regenerate the artifact with a matching rasa-bench build"
        )),
        Some(_) => serde_json::from_str(&text).map_err(|e| format!("{path}: {e}")),
    }
}

/// Diff `new` against the `old` baseline under `cfg`.
pub fn compare_artifacts(
    old: &BenchArtifact,
    new: &BenchArtifact,
    cfg: &CompareConfig,
) -> CompareOutcome {
    if old.scale != new.scale {
        return CompareOutcome::Incomparable(format!(
            "scale mismatch: baseline ran at {:?}, candidate at {:?}",
            old.scale, new.scale
        ));
    }
    if old.rounds != new.rounds {
        return CompareOutcome::Incomparable(format!(
            "round-count mismatch: baseline {} rounds, candidate {}",
            old.rounds, new.rounds
        ));
    }

    let mut findings = Vec::new();
    let factor = 1.0 + cfg.latency_pct / 100.0;
    let budget_ms = old.timeout_secs * 1e3;

    for old_stage in &old.stages {
        let Some(new_stage) = new.stage(&old_stage.stage) else {
            findings.push(format!(
                "stage {} present in baseline but missing from candidate",
                old_stage.stage
            ));
            continue;
        };
        // Baseline max at/above the solve budget means this stage ran
        // deadline-capped solves; see the module doc for why percentile
        // comparisons are floored at the budget there.
        let deadline_capped = budget_ms > 0.0 && old_stage.max_ms >= budget_ms * 0.99;
        for (pct, old_v, new_v) in [
            ("p50", old_stage.p50_ms, new_stage.p50_ms),
            ("p95", old_stage.p95_ms, new_stage.p95_ms),
        ] {
            let mut bound = old_v * factor + cfg.abs_slack_ms;
            if deadline_capped {
                bound = bound.max(budget_ms + cfg.abs_slack_ms);
            }
            if new_v > bound {
                findings.push(format!(
                    "stage {} {pct} regressed: {:.3} ms -> {:.3} ms (bound {:.3} ms = \
                     old x{:.2} + {:.1} ms slack)",
                    old_stage.stage, old_v, new_v, bound, factor, cfg.abs_slack_ms
                ));
            }
        }
    }

    for name in HOT_COUNTERS {
        let (old_v, new_v) = (old.counter(name), new.counter(name));
        if old_v > 0 && new_v == 0 {
            findings.push(format!(
                "counter {name} went silent: {old_v} in baseline, 0 in candidate — \
                 a solver hot path stopped running"
            ));
        } else if new_v as f64 > old_v as f64 * cfg.counter_factor {
            findings.push(format!(
                "counter {name} exploded: {old_v} -> {new_v} (allowed up to x{:.1})",
                cfg.counter_factor
            ));
        }
    }

    if let (Some(old_ratio), Some(new_ratio)) = (old.warm_ratio(), new.warm_ratio()) {
        let bound = old_ratio * (1.0 + cfg.warm_pct / 100.0);
        if new_ratio > bound && new_ratio > 0.7 {
            findings.push(format!(
                "warm-start ratio regressed: warm/cold p50 {:.3} -> {:.3} \
                 (allowed up to {:.3})",
                old_ratio, new_ratio, bound
            ));
        }
    } else if old.warm_start.is_some() && new.warm_start.is_none() {
        findings.push("baseline has a warm_start summary but candidate does not".into());
    }

    if findings.is_empty() {
        CompareOutcome::Pass
    } else {
        CompareOutcome::Regressions(findings)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::artifact::{StageLatency, WarmStartSummary};

    fn base() -> BenchArtifact {
        BenchArtifact {
            schema_version: BENCH_SCHEMA_VERSION,
            scale: "small".into(),
            timeout_secs: 10.0,
            rounds: 3,
            runs: Vec::new(),
            stages: vec![StageLatency {
                stage: "pipeline.solve_seconds".into(),
                count: 10,
                p50_ms: 100.0,
                p95_ms: 200.0,
                p99_ms: 220.0,
                max_ms: 250.0,
                mean_ms: 110.0,
            }],
            counters: vec![
                ("simplex.pivots".into(), 1_000),
                ("bnb.nodes".into(), 50),
                ("cg.rounds".into(), 20),
            ],
            warm_start: Some(WarmStartSummary {
                cold_p50_secs: 0.1,
                warm_p50_secs: 0.03,
                speedup: 3.33,
            }),
            recorder_overhead: None,
        }
    }

    #[test]
    fn self_compare_passes() {
        let a = base();
        assert!(matches!(
            compare_artifacts(&a, &a, &CompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn latency_regression_is_flagged() {
        let old = base();
        let mut new = base();
        new.stages[0].p50_ms = 200.0; // 2x old, over the 1.5x + 5ms bound
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("p50 regressed")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn latency_within_bound_passes() {
        let old = base();
        let mut new = base();
        new.stages[0].p50_ms = 140.0; // within 1.5x
        assert!(matches!(
            compare_artifacts(&old, &new, &CompareConfig::default()),
            CompareOutcome::Pass
        ));
    }

    #[test]
    fn silent_hot_counter_is_flagged() {
        let old = base();
        let mut new = base();
        new.counters.retain(|(n, _)| n != "bnb.nodes");
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("went silent")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn counter_explosion_is_flagged() {
        let old = base();
        let mut new = base();
        new.counters[0].1 = 10_000; // 10x the pivots
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("exploded")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn deadline_capped_stage_tolerates_median_swing() {
        let mut old = base();
        old.stages[0].max_ms = 10_000.0; // baseline hit the 10 s solve budget
        let mut new = base();
        new.stages[0].max_ms = 10_000.0;
        new.stages[0].p50_ms = 8_000.0; // octave swing, still under budget
        assert!(matches!(
            compare_artifacts(&old, &new, &CompareConfig::default()),
            CompareOutcome::Pass
        ));
        new.stages[0].p50_ms = 12_000.0; // a solve overran its deadline
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("p50 regressed")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn missing_stage_is_flagged() {
        let old = base();
        let mut new = base();
        new.stages.clear();
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("missing from candidate")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn warm_ratio_decay_is_flagged() {
        let old = base();
        let mut new = base();
        new.warm_start = Some(WarmStartSummary {
            cold_p50_secs: 0.1,
            warm_p50_secs: 0.095, // ratio 0.95 vs baseline 0.3
            speedup: 1.05,
        });
        match compare_artifacts(&old, &new, &CompareConfig::default()) {
            CompareOutcome::Regressions(f) => {
                assert!(f.iter().any(|m| m.contains("warm-start ratio")), "{f:?}")
            }
            other => panic!("expected regressions, got {other:?}"),
        }
    }

    #[test]
    fn scale_mismatch_is_incomparable() {
        let old = base();
        let mut new = base();
        new.scale = "full".into();
        assert!(matches!(
            compare_artifacts(&old, &new, &CompareConfig::default()),
            CompareOutcome::Incomparable(_)
        ));
    }
}
