//! K8s+: the online Kubernetes-style scheduler of \[14\] — per-container
//! *filter* (predicates) then *score* (priorities), where the scoring
//! function includes a service-affinity term (Section V-A).

use rasa_lp::Deadline;
use rasa_model::{MachineId, Placement, Problem, ResourceVec};
use rasa_solver::{ScheduleOutcome, Scheduler};
use std::time::Instant;

/// Online filter-and-score scheduler with affinity-aware scoring.
#[derive(Clone, Copy, Debug)]
pub struct K8sPlus {
    /// Weight of the affinity score term.
    pub affinity_weight: f64,
    /// Weight of the least-loaded (balance) score term.
    pub balance_weight: f64,
}

impl Default for K8sPlus {
    fn default() -> Self {
        K8sPlus {
            affinity_weight: 1.0,
            balance_weight: 0.1,
        }
    }
}

impl Scheduler for K8sPlus {
    fn name(&self) -> &'static str {
        "K8s+"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let mut placement = Placement::empty_for(problem);
        let mut usage = vec![ResourceVec::ZERO; problem.num_machines()];
        let mut aa_counts: Vec<Vec<u32>> = problem
            .anti_affinity
            .iter()
            .map(|_| vec![0u32; problem.num_machines()])
            .collect();
        let rules_of: Vec<Vec<usize>> = {
            let mut map = vec![Vec::new(); problem.num_services()];
            for (ri, rule) in problem.anti_affinity.iter().enumerate() {
                for &s in &rule.services {
                    map[s.idx()].push(ri);
                }
            }
            map
        };
        let adjacency = problem.edge_adjacency();
        // weight normalizer so affinity and balance scores are comparable
        let max_w = problem
            .affinity_edges
            .iter()
            .map(|e| e.weight)
            .fold(0.0f64, f64::max)
            .max(1e-9);

        // online arrival: containers in service-id order, one at a time
        let mut expired = false;
        'outer: for svc in &problem.services {
            for _ in 0..svc.replicas {
                if deadline.expired() {
                    expired = true;
                    break 'outer;
                }
                let mut best: Option<(usize, f64)> = None;
                for mi in 0..problem.num_machines() {
                    let machine = &problem.machines[mi];
                    // filter
                    if !machine.can_host(svc.required_features) {
                        continue;
                    }
                    if !(usage[mi] + svc.demand).fits_within(&machine.capacity, 1e-6) {
                        continue;
                    }
                    if !rules_of[svc.id.idx()]
                        .iter()
                        .all(|&ri| aa_counts[ri][mi] < problem.anti_affinity[ri].max_per_machine)
                    {
                        continue;
                    }
                    // score: marginal affinity gain + balance
                    let m = MachineId(mi as u32);
                    let mut affinity = 0.0;
                    for &eid in &adjacency[svc.id.idx()] {
                        let e = &problem.affinity_edges[eid.idx()];
                        let other = e.other(svc.id);
                        let x_other = placement.count(other, m);
                        if x_other == 0 {
                            continue;
                        }
                        let ds = f64::from(svc.replicas);
                        let d_other = f64::from(problem.services[other.idx()].replicas);
                        let x_self = f64::from(placement.count(svc.id, m));
                        let before = (x_self / ds).min(f64::from(x_other) / d_other);
                        let after = ((x_self + 1.0) / ds).min(f64::from(x_other) / d_other);
                        affinity += e.weight * (after - before);
                    }
                    let load = (usage[mi] + svc.demand).dominant_share(&machine.capacity);
                    let score = self.affinity_weight * affinity / max_w
                        + self.balance_weight * (1.0 - load);
                    if best.map_or(true, |(_, bs)| score > bs + 1e-12) {
                        best = Some((mi, score));
                    }
                }
                let Some((mi, _)) = best else { continue };
                placement.add(svc.id, MachineId(mi as u32), 1);
                usage[mi] += svc.demand;
                for &ri in &rules_of[svc.id.idx()] {
                    aa_counts[ri][mi] += 1;
                }
            }
        }
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), !expired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder};

    #[test]
    fn collocates_affine_pairs_when_possible() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 5.0);
        let p = b.build().unwrap();
        let out = K8sPlus::default().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
        // b's containers chase a's: full localization is reachable online
        assert!(
            out.normalized_gained_affinity >= 0.99,
            "nga {}",
            out.normalized_gained_affinity
        );
    }

    #[test]
    fn beats_original_on_affinity() {
        use crate::original::Original;
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..6)
            .map(|i| b.add_service(format!("s{i}"), 3, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(6, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..5 {
            b.add_affinity(svcs[i], svcs[i + 1], (i + 1) as f64);
        }
        let p = b.build().unwrap();
        let plus = K8sPlus::default().schedule(&p, Deadline::none());
        let orig = Original.schedule(&p, Deadline::none());
        assert!(
            plus.gained_affinity >= orig.gained_affinity,
            "K8s+ {} vs ORIGINAL {}",
            plus.gained_affinity,
            orig.gained_affinity
        );
    }

    #[test]
    fn respects_all_constraints() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 4, ResourceVec::cpu_mem(2.0, 1.0));
        let s1 = b.add_service("b", 4, ResourceVec::cpu_mem(2.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 64.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        b.add_anti_affinity(vec![s0, s1], 2);
        let p = b.build().unwrap();
        let out = K8sPlus::default().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
    }
}
