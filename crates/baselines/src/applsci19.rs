//! APPLSCI19 (Hu et al., Applied Sciences 2019 \[46\], extended): min-weight
//! graph partitioning followed by heuristic packing.
//!
//! The original targets microservice placement with **one machine size**:
//! it cuts the affinity graph into machine-sized groups and packs each
//! group onto a machine. The paper's extension handles container counts;
//! the single-machine-size assumption stays, which is why the algorithm
//! degrades on heterogeneous machine pools (Section V-D: "the heuristic
//! packing did not consider problems with multiple machine types").
//!
//! Like the paper's version, it is all-or-nothing with respect to the
//! deadline: no intermediate result is available until it finishes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rasa_graph::{multilevel_partition, AffinityGraph, MultilevelConfig};
use rasa_lp::Deadline;
use rasa_model::{MachineId, Placement, Problem, ResourceVec, ServiceId};
use rasa_solver::{complete_placement, per_machine_cap, ScheduleOutcome, Scheduler};
use std::time::Instant;

/// The APPLSCI19 baseline.
#[derive(Clone, Debug)]
pub struct Applsci19 {
    /// RNG seed for the multilevel partitioner.
    pub seed: u64,
    /// Run the completion pass afterwards (parity with other algorithms).
    pub complete: bool,
}

impl Default for Applsci19 {
    fn default() -> Self {
        Applsci19 {
            seed: 0,
            complete: true,
        }
    }
}

impl Scheduler for Applsci19 {
    fn name(&self) -> &'static str {
        "APPLSCI19"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- the single machine size the heuristic plans against: the most
        // common SKU (this is the load-bearing assumption) ---
        let groups = problem.machine_groups();
        let Some(plan_cap) = groups
            .iter()
            .max_by_key(|g| g.members.len())
            .map(|g| g.capacity)
        else {
            return ScheduleOutcome::evaluate(
                problem,
                Placement::empty_for(problem),
                start.elapsed(),
                false,
            );
        };

        // --- min-weight graph partitioning of the affinity graph into
        // roughly machine-sized service groups ---
        let graph = AffinityGraph::from_problem(problem);
        let affinity: Vec<usize> = graph.vertices_with_affinity();
        if affinity.is_empty() {
            let mut placement = Placement::empty_for(problem);
            if self.complete {
                complete_placement(problem, &mut placement);
            }
            return ScheduleOutcome::evaluate(problem, placement, start.elapsed(), true);
        }
        // target parts: total affinity demand / planning capacity
        let total_demand: f64 = affinity
            .iter()
            .map(|&v| problem.services[v].total_demand().dominant_share(&plan_cap))
            .sum();
        let k = (total_demand.ceil() as usize).clamp(1, problem.num_machines().max(1));
        let index_of: std::collections::HashMap<usize, usize> =
            affinity.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut edges = Vec::new();
        for &v in &affinity {
            for (u, w) in graph.neighbors(v) {
                if v < u {
                    edges.push((index_of[&v], index_of[&u], w));
                }
            }
        }
        let sub_graph = AffinityGraph::from_edges(affinity.len(), &edges);
        let partition =
            multilevel_partition(&sub_graph, &MultilevelConfig::with_parts(k), &mut rng);
        if deadline.expired() {
            // all-or-nothing: no result under an expired deadline
            return ScheduleOutcome::evaluate(
                problem,
                Placement::empty_for(problem),
                start.elapsed(),
                false,
            );
        }

        // --- heuristic packing: each part becomes a sequence of virtual
        // machines of the *planning* size, filled by descending-weight
        // edge order, then mapped onto real machines first-fit ---
        let mut placement = Placement::empty_for(problem);
        let mut machine_cursor = 0usize;
        let mut usage = vec![ResourceVec::ZERO; problem.num_machines()];
        for part in partition.parts() {
            let services: Vec<ServiceId> = part
                .iter()
                .map(|&i| ServiceId(affinity[i] as u32))
                .collect();
            // virtual machine plan for this part
            let virtual_bins = pack_part(problem, &services, &plan_cap);
            // map each virtual bin to the next real machine that fits it —
            // bins planned for the common SKU routinely overflow smaller
            // SKUs, losing their containers (the heterogeneity failure)
            for bin in virtual_bins {
                let mut assigned = false;
                let m_total = problem.num_machines();
                for probe in 0..m_total {
                    let mi = (machine_cursor + probe) % m_total;
                    let machine = &problem.machines[mi];
                    let bin_demand = bin.iter().fold(ResourceVec::ZERO, |acc, &(s, c)| {
                        acc + problem.services[s.idx()].demand * f64::from(c)
                    });
                    let compatible = bin.iter().all(|&(s, _)| {
                        machine.can_host(problem.services[s.idx()].required_features)
                    });
                    // exact anti-affinity check: the machine's existing load
                    // plus this bin must respect every rule
                    let aa_ok = problem.anti_affinity.iter().all(|rule| {
                        let existing: u32 = rule
                            .services
                            .iter()
                            .map(|&s| placement.count(s, MachineId(mi as u32)))
                            .sum();
                        let added: u32 = bin
                            .iter()
                            .filter(|(s, _)| rule.services.contains(s))
                            .map(|&(_, c)| c)
                            .sum();
                        existing + added <= rule.max_per_machine
                    });
                    if compatible
                        && aa_ok
                        && (usage[mi] + bin_demand).fits_within(&machine.capacity, 1e-6)
                    {
                        for &(s, c) in &bin {
                            placement.add(s, MachineId(mi as u32), c);
                        }
                        usage[mi] += bin_demand;
                        machine_cursor = (mi + 1) % m_total;
                        assigned = true;
                        break;
                    }
                }
                if !assigned {
                    // bin dropped entirely — its containers fall through to
                    // the completion pass with no affinity intent
                }
            }
        }
        if self.complete {
            complete_placement(problem, &mut placement);
        }
        let completed = !deadline.expired();
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), completed)
    }
}

/// Pack one service group onto virtual machines of the single planning
/// capacity `cap`.
///
/// The partitioner already sized each part at roughly one machine, so the
/// whole part maps onto one virtual machine when it fits; larger parts are
/// split across the minimum number of copies with every service spread
/// evenly (aligned ratios keep intra-part affinity localized, which is the
/// original algorithm's intent).
fn pack_part(
    problem: &Problem,
    services: &[ServiceId],
    cap: &ResourceVec,
) -> Vec<Vec<(ServiceId, u32)>> {
    if services.is_empty() {
        return Vec::new();
    }
    // copies: max over resources of demand/cap, and per-service fit limits
    let mut part_demand = ResourceVec::ZERO;
    for &s in services {
        part_demand += problem.services[s.idx()].total_demand();
    }
    let mut copies = part_demand.dominant_share(cap).ceil().max(1.0) as u32;
    for &s in services {
        let svc = &problem.services[s.idx()];
        // resource + singleton anti-affinity caps per machine
        let fit1 = per_machine_cap(problem, s, cap);
        if fit1 > 0 {
            copies = copies.max(svc.replicas.div_ceil(fit1));
        }
    }
    // multi-service anti-affinity rules also bound how much of the part a
    // single machine may hold
    for rule in &problem.anti_affinity {
        if rule.max_per_machine == 0 {
            continue;
        }
        let load: u32 = services
            .iter()
            .filter(|s| rule.services.contains(s))
            .map(|&s| problem.services[s.idx()].replicas)
            .sum();
        if load > 0 {
            copies = copies.max(load.div_ceil(rule.max_per_machine));
        }
    }
    // even spread of every service over the copies (floor + remainders to
    // the first bins, so different services' extras align)
    let mut bins: Vec<Vec<(ServiceId, u32)>> = vec![Vec::new(); copies as usize];
    for &s in services {
        let d = problem.services[s.idx()].replicas;
        let base = d / copies;
        let extra = d % copies;
        for (bi, bin) in bins.iter_mut().enumerate() {
            let c = base + u32::from((bi as u32) < extra);
            if c > 0 {
                bin.push((s, c));
            }
        }
    }
    bins.retain(|b| !b.is_empty());
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder};

    #[test]
    fn packs_uniform_machines_well() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(2.0, 2.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(2.0, 2.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 3.0);
        let p = b.build().unwrap();
        let out = Applsci19::default().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
        assert!(
            out.normalized_gained_affinity >= 0.99,
            "nga {}",
            out.normalized_gained_affinity
        );
    }

    #[test]
    fn degrades_on_heterogeneous_machines() {
        // the dominant SKU is big, but half the pool is small: bins planned
        // for the big SKU overflow the small machines
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..8)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(3.0, 3.0)))
            .collect();
        for i in 0..4 {
            b.add_affinity(svcs[2 * i], svcs[2 * i + 1], 5.0);
        }
        b.add_machines(5, ResourceVec::cpu_mem(12.0, 12.0), FeatureMask::EMPTY);
        b.add_machines(4, ResourceVec::cpu_mem(6.0, 6.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let out = Applsci19::default().schedule(&p, Deadline::none());
        // stays feasible…
        assert!(validate(&p, &out.placement, false).is_empty());
        // …but cannot localize everything (MIP can: check it leaves headroom)
        use rasa_solver::MipBased;
        let mip = MipBased::new().schedule(&p, Deadline::none());
        assert!(
            mip.gained_affinity >= out.gained_affinity - 1e-9,
            "mip {} vs applsci {}",
            mip.gained_affinity,
            out.gained_affinity
        );
    }

    #[test]
    fn expired_deadline_returns_nothing() {
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let out = Applsci19::default().schedule(&p, Deadline::after(std::time::Duration::ZERO));
        assert!(!out.completed);
        assert_eq!(out.placement.total_placed(), 0, "all-or-nothing semantics");
    }

    #[test]
    fn no_affinity_problem_falls_through_to_completion() {
        let mut b = ProblemBuilder::new();
        b.add_service("lonely", 4, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(2, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let out = Applsci19::default().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
    }
}
