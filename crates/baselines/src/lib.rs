#![warn(missing_docs)]

//! # rasa-baselines
//!
//! The four comparison algorithms of the paper's evaluation (Section V-A),
//! all implementing the shared [`Scheduler`](rasa_solver::Scheduler) trait:
//!
//! * [`Original`] — ByteDance's pre-RASA production scheduler: first-fit
//!   with Kubernetes-style filtering, no affinity awareness.
//! * [`K8sPlus`] — the online filter-and-score scheduler of \[14\] with an
//!   affinity-aware scoring function.
//! * [`Pop`] — POP (SOSP'21 \[23\]): random client-granular partitioning
//!   into `k` subproblems, each solved with an off-the-shelf solver; here
//!   each part runs our MIP-based algorithm on a slice of the deadline.
//!   As the paper notes, RASA's coupled services make the problem
//!   non-granular, so random partitioning loses the affinity crossing
//!   part boundaries.
//! * [`Applsci19`] — the extended offline heuristic of \[46\]: min-weight
//!   graph partitioning followed by heuristic packing that assumes a
//!   single machine size — the assumption that degrades it on
//!   heterogeneous pools (Section V-D).

pub mod applsci19;
pub mod k8s_plus;
pub mod original;
pub mod pop;

pub use applsci19::Applsci19;
pub use k8s_plus::K8sPlus;
pub use original::Original;
pub use pop::Pop;
