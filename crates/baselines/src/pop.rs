//! POP (Narayanan et al., SOSP'21 \[23\]): partition a large allocation
//! problem into `k` random subproblems, solve each with a solver, and union
//! the results. Designed for *granular* problems; RASA's affinity couples
//! services, so the random split loses cross-part affinity — exactly the
//! failure mode Fig 9 shows.

use rasa_lp::Deadline;
use rasa_model::{Placement, Problem};
use rasa_solver::pop::split_services;
use rasa_solver::{complete_placement, MipBased, ScheduleOutcome, Scheduler};
use std::time::Instant;

/// The POP baseline.
#[derive(Clone, Debug)]
pub struct Pop {
    /// Number of random subproblems.
    pub parts: usize,
    /// RNG seed for the random split.
    pub seed: u64,
    /// Run the completion pass afterwards (parity with RASA runs).
    pub complete: bool,
}

impl Default for Pop {
    fn default() -> Self {
        Pop {
            parts: 8,
            seed: 0,
            complete: true,
        }
    }
}

impl Pop {
    /// POP with `parts` subproblems.
    pub fn with_parts(parts: usize, seed: u64) -> Self {
        Pop {
            parts: parts.max(1),
            seed,
            complete: true,
        }
    }
}

impl Scheduler for Pop {
    fn name(&self) -> &'static str {
        "POP"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        // the one true shard split, shared with the solver-layer POP
        // strategy rung (`rasa_solver::pop`) so baseline and rung cannot
        // drift apart
        let service_sets = split_services(problem, self.parts, self.seed);
        // machines split proportionally to each part's demand, reusing the
        // same apportionment RASA uses so the comparison isolates the
        // service split
        let machine_sets = rasa_partition::assign_machines(problem, &service_sets);

        let mut placement = Placement::empty_for(problem);
        let mut all_done = true;
        let solver = MipBased::new();
        for (svcs, machines) in service_sets.iter().zip(&machine_sets) {
            if deadline.expired() {
                all_done = false;
                break;
            }
            let (sub, mapping) = problem.induced_subproblem(svcs, machines);
            // each part gets an equal slice of whatever budget remains
            let slice = match deadline.remaining() {
                Some(rem) => deadline.min_with(rem / service_sets.len().max(1) as u32),
                None => Deadline::none(),
            };
            let sub_out = solver.schedule(&sub, slice);
            placement.merge_subplacement(
                &sub_out.placement,
                &mapping.service_to_parent,
                &mapping.machine_to_parent,
            );
            all_done &= sub_out.completed;
        }
        if self.complete {
            complete_placement(problem, &mut placement);
        }
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), all_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder, ResourceVec};

    fn coupled_problem() -> Problem {
        // heavy pairs that POP's random split will often separate
        let mut b = ProblemBuilder::new();
        let svcs: Vec<_> = (0..12)
            .map(|i| b.add_service(format!("s{i}"), 2, ResourceVec::cpu_mem(1.0, 1.0)))
            .collect();
        b.add_machines(8, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        for i in 0..6 {
            b.add_affinity(svcs[2 * i], svcs[2 * i + 1], 10.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn produces_feasible_complete_placements() {
        let p = coupled_problem();
        let out = Pop::default().schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
    }

    #[test]
    fn single_part_equals_plain_mip_quality() {
        let p = coupled_problem();
        let pop = Pop::with_parts(1, 0).schedule(&p, Deadline::none());
        let mip = MipBased::new().schedule(&p, Deadline::none());
        assert!(
            (pop.gained_affinity - mip.gained_affinity).abs() < 1e-6,
            "pop {} vs mip {}",
            pop.gained_affinity,
            mip.gained_affinity
        );
    }

    #[test]
    fn baseline_and_strategy_rung_share_the_split() {
        // satellite: the baseline and the solver-layer POP rung must use
        // the same seeded shard split. Same (parts, seed) → same split
        // (checked via the shared helper) and the same objective when the
        // rung mirrors the baseline's configuration.
        use rasa_solver::{PopOptions, PopStrategy};
        let p = coupled_problem();
        for seed in [0u64, 7, 42] {
            let a = split_services(&p, 4, seed);
            let b = split_services(&p, 4, seed);
            assert_eq!(a, b, "seed {seed}: identical seeds, identical splits");
            let base = Pop {
                parts: 4,
                seed,
                complete: true,
            }
            .schedule(&p, Deadline::none());
            let rung = PopStrategy::new(PopOptions {
                parts: 4,
                seed,
                complete: true,
                ..Default::default()
            })
            .schedule(&p, Deadline::none());
            assert!(
                (base.gained_affinity - rung.gained_affinity).abs() < 1e-6,
                "seed {seed}: baseline {} vs rung {}",
                base.gained_affinity,
                rung.gained_affinity
            );
        }
    }

    #[test]
    fn random_split_loses_affinity_versus_single_part() {
        let p = coupled_problem();
        let whole = Pop::with_parts(1, 0).schedule(&p, Deadline::none());
        // average over seeds: splitting must not beat the unsplit solve,
        // and usually loses strictly
        let mut worse = 0;
        for seed in 0..5 {
            let split = Pop::with_parts(4, seed).schedule(&p, Deadline::none());
            assert!(split.gained_affinity <= whole.gained_affinity + 1e-6);
            if split.gained_affinity < whole.gained_affinity - 1e-6 {
                worse += 1;
            }
        }
        assert!(
            worse >= 1,
            "random splits should lose affinity at least sometimes"
        );
    }
}
