//! ORIGINAL: ByteDance's pre-RASA production behaviour — "first-fit with
//! the K8s filter and score process" (Section V-A), with no affinity term.

use rasa_lp::Deadline;
use rasa_model::{MachineId, Placement, Problem, ResourceVec};
use rasa_solver::{ScheduleOutcome, Scheduler};
use std::time::Instant;

/// Affinity-blind first-fit scheduler.
#[derive(Clone, Copy, Debug, Default)]
pub struct Original;

impl Scheduler for Original {
    fn name(&self) -> &'static str {
        "ORIGINAL"
    }

    fn schedule(&self, problem: &Problem, deadline: Deadline) -> ScheduleOutcome {
        let start = Instant::now();
        let mut expired = deadline.expired();
        let mut placement = Placement::empty_for(problem);
        let mut usage = vec![ResourceVec::ZERO; problem.num_machines()];
        let mut aa_counts: Vec<Vec<u32>> = problem
            .anti_affinity
            .iter()
            .map(|_| vec![0u32; problem.num_machines()])
            .collect();
        let rules_of: Vec<Vec<usize>> = {
            let mut map = vec![Vec::new(); problem.num_services()];
            for (ri, rule) in problem.anti_affinity.iter().enumerate() {
                for &s in &rule.services {
                    map[s.idx()].push(ri);
                }
            }
            map
        };
        // services in arrival (id) order; containers go to the first
        // machine that passes the filters
        let mut cursor = 0usize; // rotating start approximates spreading in K8s
        'services: for svc in &problem.services {
            for _ in 0..svc.replicas {
                if expired || deadline.expired() {
                    // out of budget: return the partial (still feasible)
                    // prefix instead of overrunning
                    expired = true;
                    break 'services;
                }
                let mut placed = false;
                for probe in 0..problem.num_machines() {
                    let mi = (cursor + probe) % problem.num_machines();
                    let machine = &problem.machines[mi];
                    if !machine.can_host(svc.required_features) {
                        continue;
                    }
                    if !(usage[mi] + svc.demand).fits_within(&machine.capacity, 1e-6) {
                        continue;
                    }
                    if !rules_of[svc.id.idx()]
                        .iter()
                        .all(|&ri| aa_counts[ri][mi] < problem.anti_affinity[ri].max_per_machine)
                    {
                        continue;
                    }
                    placement.add(svc.id, MachineId(mi as u32), 1);
                    usage[mi] += svc.demand;
                    for &ri in &rules_of[svc.id.idx()] {
                        aa_counts[ri][mi] += 1;
                    }
                    cursor = mi;
                    placed = true;
                    break;
                }
                if !placed {
                    break;
                }
            }
        }
        ScheduleOutcome::evaluate(problem, placement, start.elapsed(), !expired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_model::{validate, FeatureMask, ProblemBuilder};

    #[test]
    fn places_everything_when_capacity_allows() {
        let mut b = ProblemBuilder::new();
        b.add_service("a", 5, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_service("b", 5, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(4.0, 4.0), FeatureMask::EMPTY);
        let p = b.build().unwrap();
        let out = Original.schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
        assert!(out.completed);
    }

    #[test]
    fn ignores_affinity() {
        // two affine services and plenty of room: first-fit typically
        // spreads across different machines as the cursor rotates, so the
        // outcome must simply be feasible — we only check it doesn't crash
        // and fills the SLA; affinity value is whatever it is.
        let mut b = ProblemBuilder::new();
        let s0 = b.add_service("a", 2, ResourceVec::cpu_mem(1.0, 1.0));
        let s1 = b.add_service("b", 2, ResourceVec::cpu_mem(1.0, 1.0));
        b.add_machines(4, ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_affinity(s0, s1, 1.0);
        let p = b.build().unwrap();
        let out = Original.schedule(&p, Deadline::none());
        assert!(validate(&p, &out.placement, true).is_empty());
    }

    #[test]
    fn respects_filters() {
        let mut b = ProblemBuilder::new();
        let s = b.add_service_full(
            rasa_model::Service::new(
                rasa_model::ServiceId(0),
                "needs",
                2,
                ResourceVec::cpu_mem(1.0, 1.0),
            )
            .with_features(FeatureMask::bit(2)),
        );
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::EMPTY);
        b.add_machine(ResourceVec::cpu_mem(8.0, 8.0), FeatureMask::bit(2));
        let p = b.build().unwrap();
        let out = Original.schedule(&p, Deadline::none());
        assert_eq!(out.placement.count(s, MachineId(0)), 0);
        assert_eq!(out.placement.count(s, MachineId(1)), 2);
    }
}
