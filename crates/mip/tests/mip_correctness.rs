//! Branch-and-bound correctness on MIPs with known optima, infeasible /
//! unbounded detection, anytime behaviour under deadlines.

use rasa_mip::{Deadline, MipModel, MipOptions, MipStatus};
use std::time::Duration;

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
}

#[test]
fn small_knapsack() {
    // max 8a + 11b + 6c + 4d ; 5a + 7b + 4c + 3d <= 14 ; binary
    // optimum: b + c + d = 21 (weight 14)
    let mut m = MipModel::new();
    let a = m.add_bin_var(8.0);
    let b = m.add_bin_var(11.0);
    let c = m.add_bin_var(6.0);
    let d = m.add_bin_var(4.0);
    m.add_row_le(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], 14.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, 21.0);
    assert_close(sol.x[1], 1.0);
    assert_close(sol.x[2], 1.0);
    assert_close(sol.x[3], 1.0);
}

#[test]
fn integer_rounding_matters() {
    // max x + y ; 2x + 3y <= 12 ; 3x + 2y <= 12 ; integers.
    // LP opt: x=y=2.4 (obj 4.8) → MIP opt obj 4 (e.g. x=2, y=2 or 0,4? 3·0+2·4=8 ok, 2·0+3·4=12 ok → obj 4)
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_int_var(0.0, f64::INFINITY, 1.0);
    m.add_row_le(vec![(x, 2.0), (y, 3.0)], 12.0);
    m.add_row_le(vec![(x, 3.0), (y, 2.0)], 12.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, 4.0);
    assert!(sol.gap <= 1e-6);
}

#[test]
fn mixed_integer_and_continuous() {
    // max 3x + 2y ; x integer in [0, 4]; y continuous in [0, 3.5]; x + y <= 5.2
    // → x = 4, y = 1.2, obj = 14.4
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 4.0, 3.0);
    let y = m.add_var(0.0, 3.5, 2.0);
    m.add_row_le(vec![(x, 1.0), (y, 1.0)], 5.2);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, 14.4);
    assert_close(sol.x[0], 4.0);
    assert_close(sol.x[1], 1.2);
}

#[test]
fn equality_constrained_mip() {
    // max a + 2b ; a + b == 5 ; a, b integer >= 0; b <= 3 → a=2, b=3, obj 8
    let mut m = MipModel::new();
    let a = m.add_int_var(0.0, f64::INFINITY, 1.0);
    let b = m.add_int_var(0.0, 3.0, 2.0);
    m.add_row_eq(vec![(a, 1.0), (b, 1.0)], 5.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, 8.0);
}

#[test]
fn infeasible_mip() {
    let mut m = MipModel::new();
    let a = m.add_bin_var(1.0);
    m.add_row_ge(vec![(a, 1.0)], 2.0);
    assert_eq!(m.solve().status, MipStatus::Infeasible);
}

#[test]
fn integrality_gap_infeasible() {
    // 2x == 3 has LP solution x = 1.5 but no integer solution.
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 10.0, 1.0);
    m.add_row_eq(vec![(x, 1.0)], 1.5);
    assert_eq!(m.solve().status, MipStatus::Infeasible);
}

#[test]
fn fractional_bounds_are_tightened() {
    // integer x in [0.3, 2.7] → effectively [1, 2]
    let mut m = MipModel::new();
    let _x = m.add_int_var(0.3, 2.7, 1.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.x[0], 2.0);
}

#[test]
fn crossed_tightened_bounds_are_infeasible() {
    // integer x in [2.1, 2.9] contains no integer
    let mut m = MipModel::new();
    m.add_int_var(2.1, 2.9, 1.0);
    assert_eq!(m.solve().status, MipStatus::Infeasible);
}

#[test]
fn unbounded_mip() {
    let mut m = MipModel::new();
    m.add_int_var(0.0, f64::INFINITY, 1.0);
    assert_eq!(m.solve().status, MipStatus::Unbounded);
}

#[test]
fn integral_relaxation_short_circuits() {
    // LP optimum already integral → solved at the root.
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 10.0, 1.0);
    m.add_row_le(vec![(x, 1.0)], 7.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, 7.0);
    assert_eq!(sol.nodes, 1);
}

#[test]
fn bigger_knapsack_exact() {
    // 12-item knapsack, optimum computed by brute force in-test.
    let values = [
        92.0, 57.0, 49.0, 68.0, 60.0, 43.0, 67.0, 84.0, 87.0, 72.0, 33.0, 15.0,
    ];
    let weights = [
        23.0, 31.0, 29.0, 44.0, 53.0, 38.0, 63.0, 85.0, 89.0, 82.0, 20.0, 10.0,
    ];
    let cap = 180.0;
    let mut m = MipModel::new();
    let vars: Vec<_> = values.iter().map(|&v| m.add_bin_var(v)).collect();
    m.add_row_le(
        vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
        cap,
    );
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);

    // brute force
    let mut best = 0.0f64;
    for mask in 0u32..(1 << 12) {
        let (mut w, mut v) = (0.0, 0.0);
        for i in 0..12 {
            if mask & (1 << i) != 0 {
                w += weights[i];
                v += values[i];
            }
        }
        if w <= cap {
            best = best.max(v);
        }
    }
    assert_close(sol.objective, best);
}

#[test]
fn assignment_problem_is_integral() {
    // 3×3 assignment: maximize total score, each row/col exactly once.
    let score = [[9.0, 2.0, 7.0], [6.0, 4.0, 3.0], [5.0, 8.0, 1.0]];
    let mut m = MipModel::new();
    let mut v = [[rasa_mip::VarId(0); 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            v[i][j] = m.add_bin_var(score[i][j]);
        }
    }
    for i in 0..3 {
        m.add_row_eq((0..3).map(|j| (v[i][j], 1.0)).collect(), 1.0);
        m.add_row_eq((0..3).map(|j| (v[j][i], 1.0)).collect(), 1.0);
    }
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    // best: (0,0)=9 + (1,2)=3? or hungarian: 9 + 4 + 1 = 14, 9+3+8=20, 7+6+8=21, 2+6+? ...
    // enumerate: perms of cols: (0,1,2)=9+4+1=14; (0,2,1)=9+3+8=20; (1,0,2)=2+6+1=9;
    // (1,2,0)=2+3+5=10; (2,0,1)=7+6+8=21; (2,1,0)=7+4+5=16 → max 21
    assert_close(sol.objective, 21.0);
}

#[test]
fn anytime_returns_incumbent_under_deadline() {
    // A knapsack big enough to need some search; the zero deadline forces
    // immediate return, but the root LP cannot even run → NoSolution;
    // a small-but-positive deadline yields at least the rounded incumbent.
    let n = 25;
    let mut m = MipModel::new();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_bin_var(10.0 + ((i * 37) % 17) as f64))
        .collect();
    m.add_row_le(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 5.0 + ((i * 13) % 7) as f64))
            .collect(),
        60.0,
    );
    let sol = m.solve_with(
        &MipOptions::default(),
        Deadline::after(Duration::from_millis(200)),
    );
    assert!(
        matches!(sol.status, MipStatus::Optimal | MipStatus::Feasible),
        "status {:?}",
        sol.status
    );
    assert!(sol.has_incumbent());
    assert!(m.is_feasible_point(&sol.x, 1e-5));
}

#[test]
fn node_limit_reports_feasible_with_gap() {
    let n = 20;
    let mut m = MipModel::new();
    // correlated knapsack — hard for B&B, so 3 nodes won't close the gap
    let vars: Vec<_> = (0..n).map(|i| m.add_bin_var(100.0 + i as f64)).collect();
    m.add_row_le(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, 100.0 + i as f64 + 0.5))
            .collect(),
        1000.0,
    );
    let opts = MipOptions {
        max_nodes: 3,
        ..Default::default()
    };
    let sol = m.solve_with(&opts, Deadline::none());
    if sol.status == MipStatus::Feasible {
        assert!(sol.gap > 0.0);
        assert!(sol.best_bound >= sol.objective - 1e-9);
    }
}

#[test]
fn best_bound_dominates_incumbent() {
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 9.0, 1.0);
    let y = m.add_int_var(0.0, 9.0, 1.0);
    m.add_row_le(vec![(x, 3.0), (y, 5.0)], 19.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert!(sol.best_bound >= sol.objective - 1e-9);
    assert!(sol.gap <= 1e-6);
}

#[test]
fn negative_objective_coefficients() {
    // max -3x - 2y ; x + y >= 4 ; integers → minimize cost: x=0,y=4? −8 vs x=4 → −12; pick y=4.
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 10.0, -3.0);
    let y = m.add_int_var(0.0, 10.0, -2.0);
    m.add_row_ge(vec![(x, 1.0), (y, 1.0)], 4.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert_close(sol.objective, -8.0);
    assert_close(sol.x[1], 4.0);
}

#[test]
fn min_gained_affinity_linearization_pattern() {
    // The exact pattern rasa-solver builds: maximize a with
    // a <= w·x1/d1, a <= w·x2/d2, x integer — checks the MIP handles the
    // continuous epigraph variable alongside integer placement vars.
    let (w, d1, d2) = (10.0, 4.0, 2.0);
    let mut m = MipModel::new();
    let x1 = m.add_int_var(0.0, 4.0, 0.0);
    let x2 = m.add_int_var(0.0, 2.0, 0.0);
    let a = m.add_var(0.0, w, 1.0);
    m.add_row_le(vec![(a, 1.0), (x1, -w / d1)], 0.0);
    m.add_row_le(vec![(a, 1.0), (x2, -w / d2)], 0.0);
    // capacity-style coupling: x1 + x2 <= 4
    m.add_row_le(vec![(x1, 1.0), (x2, 1.0)], 4.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    // best: x1=2, x2=2 → a = min(10·2/4, 10·2/2) = 5 ; or x1=3,x2=1 → min(7.5,5)=5
    assert_close(sol.objective, 5.0);
}
