//! Tests for the LP diving heuristic: it must find integral incumbents on
//! problems where naive rounding fails, and never report an infeasible one.

use rasa_mip::{Deadline, MipModel, MipOptions, MipStatus};

/// A covering-style MIP where nearest-rounding of the LP optimum is
/// infeasible (fractional 0.5s round down and violate the cover), but
/// diving finds a good integral point.
fn covering_problem() -> MipModel {
    // min x1 + x2 + x3 (as max of negative) s.t. pairwise covers ≥ 1
    let mut m = MipModel::new();
    let x1 = m.add_bin_var(-1.0);
    let x2 = m.add_bin_var(-1.0);
    let x3 = m.add_bin_var(-1.0);
    m.add_row_ge(vec![(x1, 1.0), (x2, 1.0)], 1.0);
    m.add_row_ge(vec![(x2, 1.0), (x3, 1.0)], 1.0);
    m.add_row_ge(vec![(x1, 1.0), (x3, 1.0)], 1.0);
    m
}

#[test]
fn diving_solves_the_odd_cover() {
    // LP optimum is x = (0.5, 0.5, 0.5) with objective −1.5; the integral
    // optimum picks two variables (objective −2).
    let sol = covering_problem().solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert!((sol.objective + 2.0).abs() < 1e-6, "obj {}", sol.objective);
}

#[test]
fn dive_disabled_still_solves_via_branching() {
    let opts = MipOptions {
        dive: false,
        ..Default::default()
    };
    let sol = covering_problem().solve_with(&opts, Deadline::none());
    assert_eq!(sol.status, MipStatus::Optimal);
    assert!((sol.objective + 2.0).abs() < 1e-6);
}

#[test]
fn dive_incumbents_are_feasible_on_equality_systems() {
    // equality rows make naive rounding fragile; the dive's floor fallback
    // must not report an infeasible incumbent
    let mut m = MipModel::new();
    let a = m.add_int_var(0.0, 10.0, 3.0);
    let b = m.add_int_var(0.0, 10.0, 2.0);
    let c = m.add_var(0.0, 30.0, 1.0);
    m.add_row_eq(vec![(a, 1.0), (b, 1.0)], 7.0);
    m.add_row_le(vec![(a, 2.0), (c, 1.0)], 20.0);
    let sol = m.solve();
    assert_eq!(sol.status, MipStatus::Optimal);
    assert!(m.is_feasible_point(&sol.x, 1e-5));
    // optimum: a = 0, b = 7 (a's higher coefficient loses to c's capacity
    // cost 2:1), c = 20 → 0 + 14 + 20 = 34
    assert!((sol.objective - 34.0).abs() < 1e-5, "obj {}", sol.objective);
}

#[test]
fn bound_never_sits_below_the_incumbent() {
    // regression for the stale-bound bug: best_bound must dominate the
    // reported objective for every status with an incumbent
    for seed in 0..6u64 {
        let mut m = MipModel::new();
        let n = 6;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_int_var(0.0, 3.0, 1.0 + ((seed + i as u64) % 5) as f64))
            .collect();
        m.add_row_le(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect(),
            9.0 + seed as f64,
        );
        let sol = m.solve();
        if sol.has_incumbent() {
            assert!(
                sol.best_bound >= sol.objective - 1e-9,
                "seed {seed}: bound {} < objective {}",
                sol.best_bound,
                sol.objective
            );
        }
    }
}
