//! Every branch-and-bound exit path must follow one sign convention for
//! `best_bound` / `gap` (maximization — see the table on `MipSolution`):
//! proven verdicts (Infeasible, Unbounded) have objective and bound
//! agreeing and gap 0; NoSolution has gap infinity; exits with an
//! incumbent have `best_bound >= objective` and the documented relative
//! gap.  The historical bug: the root-unbounded exit and the
//! heap-exhausted-without-incumbent exit disagreed with the other
//! infeasible/unbounded sites (infinite gap, stale bound).

use rasa_mip::{MipModel, MipOptions, MipStatus};
use rasa_lp::Deadline;

fn opts() -> MipOptions {
    MipOptions::default()
}

#[test]
fn integer_bound_tightening_infeasibility() {
    // An integer variable boxed into (0.3, 0.7) admits no integer at all;
    // detected before the root LP is even solved.
    let mut m = MipModel::new();
    m.add_int_var(0.3, 0.7, 1.0);
    let sol = m.solve_with(&opts(), Deadline::none());
    assert_eq!(sol.status, MipStatus::Infeasible);
    assert_eq!(sol.objective, f64::NEG_INFINITY);
    assert_eq!(sol.best_bound, f64::NEG_INFINITY);
    assert_eq!(sol.gap, 0.0);
}

#[test]
fn root_relaxation_infeasibility() {
    // x >= 0 and x <= -1 conflict: the root LP itself is infeasible.
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 10.0, 1.0);
    m.add_row_le(vec![(x, 1.0)], -1.0);
    let sol = m.solve_with(&opts(), Deadline::none());
    assert_eq!(sol.status, MipStatus::Infeasible);
    assert_eq!(sol.objective, f64::NEG_INFINITY);
    assert_eq!(sol.best_bound, f64::NEG_INFINITY);
    assert_eq!(sol.gap, 0.0);
}

#[test]
fn root_relaxation_unbounded() {
    // Maximize x with no upper bound or rows: unbounded above.  The
    // verdict is proven, so objective == best_bound == +inf and gap == 0
    // (the old exit reported an infinite gap here).
    let mut m = MipModel::new();
    m.add_int_var(0.0, f64::INFINITY, 1.0);
    let sol = m.solve_with(&opts(), Deadline::none());
    assert_eq!(sol.status, MipStatus::Unbounded);
    assert_eq!(sol.objective, f64::INFINITY);
    assert_eq!(sol.best_bound, f64::INFINITY);
    assert_eq!(sol.gap, 0.0);
}

#[test]
fn root_relaxation_iteration_limit_is_no_solution() {
    // A zero simplex iteration budget kills the root LP before anything
    // is proven: no incumbent, no bound, infinite gap.
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 2.0, 1.0);
    m.add_row_le(vec![(x, 1.0)], 1.5);
    let mut o = opts();
    o.lp.max_iterations = 0;
    let sol = m.solve_with(&o, Deadline::none());
    assert_eq!(sol.status, MipStatus::NoSolution);
    assert_eq!(sol.objective, f64::NEG_INFINITY);
    assert_eq!(sol.best_bound, f64::INFINITY);
    assert_eq!(sol.gap, f64::INFINITY);
}

#[test]
fn heap_exhausted_without_incumbent_is_proven_infeasible() {
    // 0.4 <= x <= 0.6 via rows: the LP is feasible but no integer fits.
    // Both children of the root branch are infeasible, the heap drains,
    // and that PROVES infeasibility — same convention as the root exits
    // (the old code left the stale root bound and an infinite gap).
    let mut m = MipModel::new();
    let x = m.add_int_var(0.0, 10.0, 1.0);
    m.add_row_le(vec![(x, 2.0)], 1.2);
    m.add_row_le(vec![(x, -2.0)], -0.8);
    let sol = m.solve_with(&opts(), Deadline::none());
    assert_eq!(sol.status, MipStatus::Infeasible);
    assert_eq!(sol.objective, f64::NEG_INFINITY);
    assert_eq!(sol.best_bound, f64::NEG_INFINITY);
    assert_eq!(sol.gap, 0.0);
}

#[test]
fn optimal_exit_has_consistent_bound_and_gap() {
    // Small knapsack with a fractional relaxation: branching required.
    let mut m = MipModel::new();
    let a = m.add_int_var(0.0, 1.0, 8.0);
    let b = m.add_int_var(0.0, 1.0, 11.0);
    let c = m.add_int_var(0.0, 1.0, 6.0);
    let d = m.add_int_var(0.0, 1.0, 4.0);
    m.add_row_le(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], 14.0);
    let o = opts();
    let sol = m.solve_with(&o, Deadline::none());
    assert_eq!(sol.status, MipStatus::Optimal);
    assert!((sol.objective - 21.0).abs() < 1e-6, "obj = {}", sol.objective);
    assert!(sol.best_bound >= sol.objective);
    assert!(sol.best_bound.is_finite());
    let expected = ((sol.best_bound - sol.objective) / sol.objective.abs().max(1.0)).max(0.0);
    assert!((sol.gap - expected).abs() < 1e-12);
    assert!(sol.gap <= o.gap_tol);
}

#[test]
fn node_budget_exhaustion_with_incumbent_is_feasible() {
    // Zero node budget, but the root heuristics still produce an
    // incumbent: anytime exit with bound >= objective and a finite gap.
    let mut m = MipModel::new();
    let a = m.add_int_var(0.0, 1.0, 8.0);
    let b = m.add_int_var(0.0, 1.0, 11.0);
    let c = m.add_int_var(0.0, 1.0, 6.0);
    let d = m.add_int_var(0.0, 1.0, 4.0);
    m.add_row_le(vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], 14.0);
    let mut o = opts();
    o.max_nodes = 0;
    let sol = m.solve_with(&o, Deadline::none());
    assert_eq!(sol.status, MipStatus::Feasible);
    assert!(sol.objective.is_finite());
    assert!(sol.best_bound >= sol.objective);
    assert!(sol.gap.is_finite());
    let expected = ((sol.best_bound - sol.objective) / sol.objective.abs().max(1.0)).max(0.0);
    assert!((sol.gap - expected).abs() < 1e-12);
}

#[test]
fn node_budget_exhaustion_without_incumbent_is_no_solution() {
    // Zero node budget AND heuristics disabled: stopped early with
    // nothing proven — the root bound survives, the gap is infinite.
    let mut m = MipModel::new();
    let a = m.add_int_var(0.0, 1.0, 8.0);
    let b = m.add_int_var(0.0, 1.0, 11.0);
    let c = m.add_int_var(0.0, 1.0, 6.0);
    m.add_row_le(vec![(a, 5.0), (b, 7.0), (c, 4.0)], 9.0);
    let mut o = opts();
    o.max_nodes = 0;
    o.rounding_every = 0;
    o.dive = false;
    let sol = m.solve_with(&o, Deadline::none());
    assert_eq!(sol.status, MipStatus::NoSolution);
    assert_eq!(sol.objective, f64::NEG_INFINITY);
    assert!(sol.best_bound.is_finite(), "root bound should survive");
    assert_eq!(sol.gap, f64::INFINITY);
}
