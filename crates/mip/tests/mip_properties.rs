//! Property tests: branch-and-bound must match brute-force enumeration on
//! random small binary programs.

use proptest::prelude::*;
use rasa_mip::{MipModel, MipStatus};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knapsack_matches_brute_force(
        values in proptest::collection::vec(1.0f64..50.0, 3..9),
        weights in proptest::collection::vec(1.0f64..20.0, 3..9),
        cap_frac in 0.2f64..0.8,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let cap = cap_frac * weights.iter().sum::<f64>();

        let mut m = MipModel::new();
        let vars: Vec<_> = values.iter().map(|&v| m.add_bin_var(v)).collect();
        m.add_row_le(vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect(), cap);
        let sol = m.solve();
        prop_assert_eq!(sol.status, MipStatus::Optimal);

        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut v) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap + 1e-9 {
                best = best.max(v);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-5,
            "b&b {} vs brute force {}", sol.objective, best);
    }

    #[test]
    fn two_constraint_binary_program_matches_brute_force(
        values in proptest::collection::vec(-20.0f64..50.0, 3..8),
        w1 in proptest::collection::vec(0.5f64..10.0, 3..8),
        w2 in proptest::collection::vec(0.5f64..10.0, 3..8),
    ) {
        let n = values.len().min(w1.len()).min(w2.len());
        let (values, w1, w2) = (&values[..n], &w1[..n], &w2[..n]);
        let c1 = 0.6 * w1.iter().sum::<f64>();
        let c2 = 0.4 * w2.iter().sum::<f64>();

        let mut m = MipModel::new();
        let vars: Vec<_> = values.iter().map(|&v| m.add_bin_var(v)).collect();
        m.add_row_le(vars.iter().zip(w1).map(|(&v, &w)| (v, w)).collect(), c1);
        m.add_row_le(vars.iter().zip(w2).map(|(&v, &w)| (v, w)).collect(), c2);
        let sol = m.solve();
        prop_assert_eq!(sol.status, MipStatus::Optimal);

        let mut best = 0.0f64; // empty set feasible, objective 0
        for mask in 0u32..(1 << n) {
            let (mut a, mut b, mut v) = (0.0, 0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    a += w1[i];
                    b += w2[i];
                    v += values[i];
                }
            }
            if a <= c1 + 1e-9 && b <= c2 + 1e-9 {
                best = best.max(v);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-5,
            "b&b {} vs brute force {}", sol.objective, best);
    }

    #[test]
    fn incumbents_are_always_integral_and_feasible(
        values in proptest::collection::vec(1.0f64..30.0, 3..7),
        bound in 2.0f64..15.0,
    ) {
        let mut m = MipModel::new();
        let vars: Vec<_> = values.iter().map(|&v| m.add_int_var(0.0, 3.0, v)).collect();
        m.add_row_le(vars.iter().map(|&v| (v, 1.0)).collect(), bound);
        let sol = m.solve();
        prop_assert_eq!(sol.status, MipStatus::Optimal);
        prop_assert!(m.is_feasible_point(&sol.x, 1e-5));
        for (j, &x) in sol.x.iter().enumerate() {
            prop_assert!((x - x.round()).abs() < 1e-5, "x[{}] = {} not integral", j, x);
        }
        // with integer slots capped at 3 each, optimum = sort desc, take floor(bound) slots
        let take = bound.floor() as usize;
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut expect = 0.0;
        let mut left = take;
        for v in sorted {
            let cnt = left.min(3);
            expect += v * cnt as f64;
            left -= cnt;
            if left == 0 { break; }
        }
        prop_assert!((sol.objective - expect).abs() < 1e-5,
            "b&b {} vs greedy {}", sol.objective, expect);
    }
}
