#![warn(missing_docs)]

//! # rasa-mip
//!
//! A branch-and-bound **mixed-integer programming** solver built on the
//! `rasa-lp` simplex. This is the repository's stand-in for the commercial
//! solver (Gurobi) the RASA paper feeds its MIP formulation to
//! (Section IV-C1).
//!
//! Capabilities, matching what the paper's workload needs:
//!
//! * maximization of a linear objective over linear rows with integer and
//!   continuous variables,
//! * **anytime behaviour**: an incumbent is kept at all times and returned
//!   when the [`Deadline`] fires, so the caller can impose the paper's
//!   one-minute-style time-outs and still get the best schedule found,
//! * best-bound node selection with most-fractional branching, plus an LP
//!   rounding heuristic to find early incumbents,
//! * proof of optimality within a relative gap tolerance.
//!
//! ## Example
//!
//! ```
//! use rasa_mip::{MipModel, MipStatus};
//!
//! // knapsack: max 8a + 11b + 6c  s.t.  5a + 7b + 4c <= 14, binary
//! let mut m = MipModel::new();
//! let a = m.add_int_var(0.0, 1.0, 8.0);
//! let b = m.add_int_var(0.0, 1.0, 11.0);
//! let c = m.add_int_var(0.0, 1.0, 6.0);
//! m.add_row_le(vec![(a, 5.0), (b, 7.0), (c, 4.0)], 14.0);
//! let sol = m.solve();
//! assert_eq!(sol.status, MipStatus::Optimal);
//! assert_eq!(sol.objective.round() as i64, 19); // b + c
//! ```

pub mod branch_and_bound;
pub mod model;
pub mod solution;

pub use branch_and_bound::MipOptions;
pub use model::MipModel;
pub use rasa_lp::{Deadline, VarId};
pub use solution::{MipSolution, MipStatus};
