//! MIP model builder: an [`LpModel`] plus integrality marks.

use crate::branch_and_bound::{solve_branch_and_bound, MipOptions};
use crate::solution::MipSolution;
use rasa_lp::{Deadline, LpModel, RowSense, VarId};

/// A mixed-integer program in maximization form.
#[derive(Clone, Debug, Default)]
pub struct MipModel {
    pub(crate) lp: LpModel,
    pub(crate) is_integer: Vec<bool>,
}

impl MipModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a continuous variable.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        let v = self.lp.add_var(lower, upper, obj);
        self.is_integer.push(false);
        v
    }

    /// Add an integer variable. Bounds may be fractional; the solver only
    /// accepts integral *values* within them.
    pub fn add_int_var(&mut self, lower: f64, upper: f64, obj: f64) -> VarId {
        let v = self.lp.add_var(lower, upper, obj);
        self.is_integer.push(true);
        v
    }

    /// Add a binary (0/1) variable.
    pub fn add_bin_var(&mut self, obj: f64) -> VarId {
        self.add_int_var(0.0, 1.0, obj)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.lp.num_rows()
    }

    /// Number of integer variables.
    pub fn num_int_vars(&self) -> usize {
        self.is_integer.iter().filter(|&&b| b).count()
    }

    /// Is `v` marked integral?
    pub fn is_integer(&self, v: VarId) -> bool {
        self.is_integer[v.0]
    }

    /// Add a constraint row (duplicates merged, like [`LpModel::add_row`]).
    pub fn add_row(&mut self, coeffs: Vec<(VarId, f64)>, sense: RowSense, rhs: f64) {
        self.lp.add_row(coeffs, sense, rhs);
    }

    /// Shorthand for a `<=` row.
    pub fn add_row_le(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.lp.add_row_le(coeffs, rhs);
    }

    /// Shorthand for a `>=` row.
    pub fn add_row_ge(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.lp.add_row_ge(coeffs, rhs);
    }

    /// Shorthand for an `==` row.
    pub fn add_row_eq(&mut self, coeffs: Vec<(VarId, f64)>, rhs: f64) {
        self.lp.add_row_eq(coeffs, rhs);
    }

    /// Read-only access to the underlying LP (relaxation).
    pub fn lp(&self) -> &LpModel {
        &self.lp
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.lp.objective_value(x)
    }

    /// Check feasibility of a point including integrality (within `tol`).
    pub fn is_feasible_point(&self, x: &[f64], tol: f64) -> bool {
        if !self.lp.is_feasible_point(x, tol) {
            return false;
        }
        self.is_integer
            .iter()
            .zip(x)
            .all(|(&int, &v)| !int || (v - v.round()).abs() <= tol)
    }

    /// Solve with default options and no deadline.
    pub fn solve(&self) -> MipSolution {
        solve_branch_and_bound(self, &MipOptions::default(), Deadline::none())
    }

    /// Solve with explicit options and deadline.
    pub fn solve_with(&self, options: &MipOptions, deadline: Deadline) -> MipSolution {
        solve_branch_and_bound(self, options, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_kinds_are_tracked() {
        let mut m = MipModel::new();
        let a = m.add_var(0.0, 1.0, 1.0);
        let b = m.add_int_var(0.0, 5.0, 1.0);
        let c = m.add_bin_var(1.0);
        assert!(!m.is_integer(a));
        assert!(m.is_integer(b));
        assert!(m.is_integer(c));
        assert_eq!(m.num_int_vars(), 2);
        assert_eq!(m.num_vars(), 3);
    }

    #[test]
    fn integral_feasibility_check() {
        let mut m = MipModel::new();
        let a = m.add_int_var(0.0, 5.0, 1.0);
        let b = m.add_var(0.0, 5.0, 1.0);
        m.add_row_le(vec![(a, 1.0), (b, 1.0)], 6.0);
        assert!(m.is_feasible_point(&[2.0, 3.5], 1e-6));
        assert!(
            !m.is_feasible_point(&[2.5, 3.0], 1e-6),
            "a must be integral"
        );
        assert!(!m.is_feasible_point(&[4.0, 3.0], 1e-6), "row violated");
    }
}
