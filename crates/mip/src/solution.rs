//! MIP solver results.

/// Why branch-and-bound stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MipStatus {
    /// The incumbent is optimal within the gap tolerance.
    Optimal,
    /// A feasible incumbent exists but the node/time budget ran out before
    /// optimality was proven — the paper's anytime mode.
    Feasible,
    /// The problem has no feasible integral point.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// Budget exhausted before any incumbent was found.
    NoSolution,
}

/// Result of a branch-and-bound run.
///
/// Every exit path follows one sign convention for this maximization
/// solver:
///
/// | status       | `objective` | `best_bound`            | `gap`      |
/// |--------------|-------------|-------------------------|------------|
/// | `Optimal`    | incumbent   | `>= objective`, finite  | `<= tol`   |
/// | `Feasible`   | incumbent   | `>= objective`          | finite     |
/// | `Infeasible` | `-inf`      | `-inf`                  | `0`        |
/// | `Unbounded`  | `+inf`      | `+inf`                  | `0`        |
/// | `NoSolution` | `-inf`      | best proven (may `+inf`)| `+inf`     |
///
/// Proven verdicts (`Infeasible`, `Unbounded`) have objective and bound
/// agreeing, hence gap 0; `NoSolution` proves nothing, hence gap infinity.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Final status.
    pub status: MipStatus,
    /// Incumbent objective (meaningful for `Optimal` / `Feasible`).
    pub objective: f64,
    /// Incumbent point (integral within tolerance).
    pub x: Vec<f64>,
    /// Best proven upper bound on the optimum. Never below `objective`
    /// when an incumbent exists.
    pub best_bound: f64,
    /// Relative optimality gap `(best_bound − objective) / max(|objective|, 1)`,
    /// clamped to `>= 0`.
    pub gap: f64,
    /// Branch-and-bound nodes processed.
    pub nodes: usize,
    /// Total simplex iterations across all LP relaxations.
    pub lp_iterations: usize,
}

impl MipSolution {
    /// `true` if a usable incumbent is present.
    pub fn has_incumbent(&self) -> bool {
        matches!(self.status, MipStatus::Optimal | MipStatus::Feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_incumbent_matches_status() {
        let base = MipSolution {
            status: MipStatus::Optimal,
            objective: 1.0,
            x: vec![],
            best_bound: 1.0,
            gap: 0.0,
            nodes: 1,
            lp_iterations: 0,
        };
        assert!(base.has_incumbent());
        assert!(MipSolution {
            status: MipStatus::Feasible,
            ..base.clone()
        }
        .has_incumbent());
        assert!(!MipSolution {
            status: MipStatus::Infeasible,
            ..base.clone()
        }
        .has_incumbent());
        assert!(!MipSolution {
            status: MipStatus::NoSolution,
            ..base
        }
        .has_incumbent());
    }
}
