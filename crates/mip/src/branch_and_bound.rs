//! Best-bound branch-and-bound over LP relaxations.

use crate::model::MipModel;
use crate::solution::{MipSolution, MipStatus};
use rasa_lp::{Deadline, LpModel, LpStatus, SimplexOptions};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Options for [`MipModel::solve_with`].
#[derive(Clone, Debug)]
pub struct MipOptions {
    /// Simplex options used for every relaxation.
    pub lp: SimplexOptions,
    /// Integrality tolerance: a value within this of an integer counts as
    /// integral.
    pub int_tol: f64,
    /// Relative gap at which the incumbent is declared optimal.
    pub gap_tol: f64,
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Try the LP-rounding incumbent heuristic at the root and every this
    /// many nodes (0 disables).
    pub rounding_every: usize,
    /// Run the LP diving heuristic at the root for a strong initial
    /// incumbent (a handful of extra LP solves).
    pub dive: bool,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            lp: SimplexOptions::default(),
            int_tol: 1e-6,
            gap_tol: 1e-6,
            max_nodes: 200_000,
            rounding_every: 64,
            dive: true,
        }
    }
}

/// A subproblem: variable bound overrides relative to the root model.
struct Node {
    /// LP bound inherited from the parent (upper bound on this subtree).
    bound: f64,
    /// Overridden bounds: `(var index, lower, upper)`.
    changes: Vec<(usize, f64, f64)>,
    depth: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap on bound (best-first); deeper first on ties → plunging
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

/// Most-fractional integer variable, if any.
fn pick_branch_var(model: &MipModel, x: &[f64], int_tol: f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, (&is_int, &v)) in model.is_integer.iter().zip(x).enumerate() {
        if !is_int {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac > int_tol {
            let dist = (v - v.floor() - 0.5).abs(); // 0 = most fractional
            if best.map_or(true, |(_, bd)| dist < bd) {
                best = Some((j, dist));
            }
        }
    }
    best.map(|(j, _)| j)
}

/// LP diving: repeatedly solve the relaxation, pin every integer variable
/// that already sits on an integer, then round the fractional variable
/// closest to an integer and pin it too. If a rounding makes the LP
/// infeasible, retry with its floor (for `<=`-dominated models flooring
/// only relaxes rows), then with its ceiling, before giving up. Returns an
/// integral feasible point, usually far better than naive rounding, at the
/// cost of a handful of LP solves.
fn diving_heuristic(
    model: &MipModel,
    lp_template: &LpModel,
    options: &MipOptions,
    deadline: Deadline,
) -> Option<(Vec<f64>, f64)> {
    let mut lp = lp_template.clone();
    let max_rounds = 24usize;
    // the batch pinned in the previous round, kept for the floor fallback
    let mut last_batch: Vec<(usize, f64, f64, f64)> = Vec::new(); // (var, lp value, orig_l, orig_u)
    let mut retried = false;
    for _ in 0..max_rounds {
        if deadline.expired() {
            return None;
        }
        let sol = lp.solve_with(&options.lp, deadline);
        if sol.status != LpStatus::Optimal {
            // the last batch over-constrained the LP: retry it with floors
            if !retried && !last_batch.is_empty() {
                retried = true;
                for &(j, v, orig_l, orig_u) in &last_batch {
                    let floored = v.floor().clamp(orig_l, orig_u);
                    lp.set_bounds(rasa_lp::VarId(j), floored, floored);
                }
                continue;
            }
            return None;
        }
        retried = false;

        // pin everything already integral; collect the fractional rest
        let mut fractional: Vec<(usize, f64, f64)> = Vec::new(); // (var, value, dist)
        for (j, &is_int) in model.is_integer.iter().enumerate() {
            if !is_int {
                continue;
            }
            let (l, u) = lp.bounds(rasa_lp::VarId(j));
            if l == u {
                continue; // already pinned
            }
            let v = sol.x[j];
            let dist = (v - v.round()).abs();
            if dist <= options.int_tol {
                let r = v.round().clamp(l, u);
                lp.set_bounds(rasa_lp::VarId(j), r, r);
            } else {
                fractional.push((j, v, dist));
            }
        }
        if fractional.is_empty() {
            let mut x = sol.x.clone();
            for (k, &is_int) in model.is_integer.iter().enumerate() {
                if is_int {
                    x[k] = x[k].round();
                }
            }
            if model.is_feasible_point(&x, options.int_tol.max(1e-6)) {
                let obj = model.objective_value(&x);
                return Some((x, obj));
            }
            return None;
        }
        // round-pin the third of the fractionals nearest an integer (at
        // least one), so the dive finishes in logarithmically many LP solves
        fractional.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let take = fractional.len().div_ceil(3);
        last_batch.clear();
        for &(j, v, _) in fractional.iter().take(take) {
            let (l, u) = lp.bounds(rasa_lp::VarId(j));
            let r = v.round().clamp(l, u);
            lp.set_bounds(rasa_lp::VarId(j), r, r);
            last_batch.push((j, v, l, u));
        }
    }
    None
}

/// Round the relaxation's integer variables to the nearest integers and
/// check full feasibility — a cheap incumbent heuristic.
fn rounding_heuristic(model: &MipModel, x: &[f64], int_tol: f64) -> Option<(Vec<f64>, f64)> {
    let mut rounded = x.to_vec();
    for (j, &is_int) in model.is_integer.iter().enumerate() {
        if is_int {
            rounded[j] = rounded[j].round();
        }
    }
    if model.is_feasible_point(&rounded, int_tol.max(1e-6)) {
        let obj = model.objective_value(&rounded);
        Some((rounded, obj))
    } else {
        None
    }
}

/// Counters private to one solve, flushed into the global telemetry
/// registry by the [`solve_branch_and_bound`] wrapper.
#[derive(Default)]
struct BnbCounters {
    /// Nodes discarded because the relaxation was infeasible.
    pruned_infeasible: u64,
    /// Nodes discarded because their relaxation bound could not beat the
    /// incumbent.
    pruned_bound: u64,
    /// Times the incumbent was set or improved (heuristics and integral
    /// nodes alike).
    incumbent_updates: u64,
}

/// Solve `model` by branch-and-bound. See [`MipOptions`] for knobs;
/// `deadline` makes the solve anytime (incumbent returned on expiry).
pub fn solve_branch_and_bound(
    model: &MipModel,
    options: &MipOptions,
    deadline: Deadline,
) -> MipSolution {
    let mut counters = BnbCounters::default();
    let _fs = rasa_obs::flight::span("mip.bnb");
    let sol = solve_bnb_impl(model, options, deadline, &mut counters);
    let obs = rasa_obs::global();
    if obs.enabled() {
        obs.add("bnb.solves", 1);
        obs.add("bnb.nodes", sol.nodes as u64);
        obs.add("bnb.lp_iterations", sol.lp_iterations as u64);
        obs.add("bnb.pruned_infeasible", counters.pruned_infeasible);
        obs.add("bnb.pruned_bound", counters.pruned_bound);
        obs.add("bnb.incumbent_updates", counters.incumbent_updates);
        if sol.gap.is_finite() {
            obs.record("bnb.final_gap", sol.gap);
        }
    }
    sol
}

fn solve_bnb_impl(
    model: &MipModel,
    options: &MipOptions,
    deadline: Deadline,
    counters: &mut BnbCounters,
) -> MipSolution {
    let mut lp: LpModel = model.lp.clone();
    let mut lp_iterations = 0usize;
    let mut nodes = 0usize;

    // Integer variables with fractional bounds can never take a value at a
    // fractional bound anyway; tighten them once up front.
    let int_vars: Vec<usize> = model
        .is_integer
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(j, _)| j)
        .collect();
    for &j in &int_vars {
        let (l, u) = lp.bounds(rasa_lp::VarId(j));
        let tl = if l.is_finite() { l.ceil() } else { l };
        let tu = if u.is_finite() { u.floor() } else { u };
        if tl > tu {
            return MipSolution {
                status: MipStatus::Infeasible,
                objective: f64::NEG_INFINITY,
                x: vec![0.0; model.num_vars()],
                best_bound: f64::NEG_INFINITY,
                gap: 0.0,
                nodes: 0,
                lp_iterations: 0,
            };
        }
        lp.set_bounds(rasa_lp::VarId(j), tl, tu);
    }
    let root_lower = lp.lower_bounds().to_vec();
    let root_upper = lp.upper_bounds().to_vec();

    // root relaxation
    let root = lp.solve_with(&options.lp, deadline);
    lp_iterations += root.iterations;
    match root.status {
        LpStatus::Infeasible => {
            return MipSolution {
                status: MipStatus::Infeasible,
                objective: f64::NEG_INFINITY,
                x: vec![0.0; model.num_vars()],
                best_bound: f64::NEG_INFINITY,
                gap: 0.0,
                nodes: 1,
                lp_iterations,
            };
        }
        LpStatus::Unbounded => {
            // objective and bound agree at +inf — nothing left to prove,
            // so the gap is 0 (same convention as the infeasible exits,
            // where both sit at -inf).
            return MipSolution {
                status: MipStatus::Unbounded,
                objective: f64::INFINITY,
                x: root.x,
                best_bound: f64::INFINITY,
                gap: 0.0,
                nodes: 1,
                lp_iterations,
            };
        }
        LpStatus::IterationLimit => {
            return MipSolution {
                status: MipStatus::NoSolution,
                objective: f64::NEG_INFINITY,
                x: vec![0.0; model.num_vars()],
                best_bound: f64::INFINITY,
                gap: f64::INFINITY,
                nodes: 1,
                lp_iterations,
            };
        }
        LpStatus::Optimal => {}
    }

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut global_bound;

    // root incumbent attempts
    if pick_branch_var(model, &root.x, options.int_tol).is_none() {
        // relaxation already integral
        let obj = root.objective;
        return MipSolution {
            status: MipStatus::Optimal,
            objective: obj,
            x: root.x,
            best_bound: obj,
            gap: 0.0,
            nodes: 1,
            lp_iterations,
        };
    }
    if options.rounding_every > 0 {
        incumbent = rounding_heuristic(model, &root.x, options.int_tol);
        if let Some((_, obj)) = &incumbent {
            counters.incumbent_updates += 1;
            let (obj, bound) = (*obj, root.objective);
            rasa_obs::flight::emit(|| rasa_obs::TraceEvent::bnb_incumbent(obj, bound, 1));
        }
    }
    if options.dive {
        if let Some((x, obj)) = diving_heuristic(model, &lp, options, deadline) {
            if incumbent.as_ref().map_or(true, |(_, best)| obj > *best) {
                incumbent = Some((x, obj));
                counters.incumbent_updates += 1;
                let bound = root.objective;
                rasa_obs::flight::emit(|| rasa_obs::TraceEvent::bnb_incumbent(obj, bound, 1));
            }
        }
    }

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        changes: Vec::new(),
        depth: 0,
    });

    let finish = |status: MipStatus,
                  incumbent: Option<(Vec<f64>, f64)>,
                  bound: f64,
                  nodes: usize,
                  lp_iterations: usize| {
        match incumbent {
            Some((x, obj)) => {
                // a stale node bound can sit below the incumbent (the node
                // was queued before the incumbent improved); the proven
                // bound is never below the best feasible solution
                let bound = bound.max(obj);
                let gap = ((bound - obj) / obj.abs().max(1.0)).max(0.0);
                MipSolution {
                    status,
                    objective: obj,
                    x,
                    best_bound: bound,
                    gap,
                    nodes,
                    lp_iterations,
                }
            }
            None => {
                // Exhausting the tree without an incumbent proves
                // infeasibility: bound and objective both collapse to -inf
                // and the gap is 0, matching the root infeasible exits.
                // Stopping early (budget/deadline) proves nothing: the
                // bound stays at whatever was established and the gap is
                // infinite.
                let proven_infeasible = status == MipStatus::Optimal;
                MipSolution {
                    status: if proven_infeasible {
                        MipStatus::Infeasible
                    } else {
                        MipStatus::NoSolution
                    },
                    objective: f64::NEG_INFINITY,
                    x: vec![0.0; model.num_vars()],
                    best_bound: if proven_infeasible {
                        f64::NEG_INFINITY
                    } else {
                        bound
                    },
                    gap: if proven_infeasible { 0.0 } else { f64::INFINITY },
                    nodes,
                    lp_iterations,
                }
            }
        }
    };

    // trace the bound trajectory, but only on strict improvement: with a
    // best-first heap the popped bound is non-increasing, so this emits one
    // event per distinct bound level rather than one per node
    let mut last_bound_event = f64::INFINITY;
    while let Some(node) = heap.pop() {
        global_bound = node.bound;
        if global_bound < last_bound_event {
            last_bound_event = global_bound;
            let (b, n) = (global_bound, nodes as u64);
            rasa_obs::flight::emit(|| rasa_obs::TraceEvent::bnb_bound(b, n));
        }
        // prune against incumbent
        if let Some((_, inc_obj)) = &incumbent {
            let gap = (global_bound - inc_obj) / inc_obj.abs().max(1.0);
            if gap <= options.gap_tol {
                return finish(
                    MipStatus::Optimal,
                    incumbent,
                    global_bound,
                    nodes,
                    lp_iterations,
                );
            }
        }
        if nodes >= options.max_nodes || deadline.expired() {
            return finish(
                MipStatus::Feasible,
                incumbent,
                global_bound,
                nodes,
                lp_iterations,
            );
        }
        nodes += 1;

        // apply bound changes
        lp.set_all_bounds(&root_lower, &root_upper);
        for &(j, l, u) in &node.changes {
            lp.set_bounds(rasa_lp::VarId(j), l, u);
        }

        let relax = lp.solve_with(&options.lp, deadline);
        lp_iterations += relax.iterations;
        match relax.status {
            LpStatus::Infeasible => {
                counters.pruned_infeasible += 1;
                continue;
            }
            LpStatus::IterationLimit => {
                // deadline mid-node: return what we have
                return finish(
                    MipStatus::Feasible,
                    incumbent,
                    global_bound,
                    nodes,
                    lp_iterations,
                );
            }
            LpStatus::Unbounded => {
                // Bounded root + tightened bounds cannot become unbounded;
                // treat defensively as a numerical failure of this node.
                continue;
            }
            LpStatus::Optimal => {}
        }

        // prune by bound
        if let Some((_, inc_obj)) = &incumbent {
            if relax.objective <= *inc_obj + options.gap_tol {
                counters.pruned_bound += 1;
                continue;
            }
        }

        match pick_branch_var(model, &relax.x, options.int_tol) {
            None => {
                // integral: candidate incumbent
                let obj = relax.objective;
                if incumbent.as_ref().map_or(true, |(_, best)| obj > *best) {
                    incumbent = Some((relax.x.clone(), obj));
                    counters.incumbent_updates += 1;
                    let (b, n) = (global_bound, nodes as u64);
                    rasa_obs::flight::emit(|| rasa_obs::TraceEvent::bnb_incumbent(obj, b, n));
                }
            }
            Some(j) => {
                // occasionally try rounding deeper in the tree
                if options.rounding_every > 0 && nodes % options.rounding_every == 0 {
                    if let Some((x, obj)) = rounding_heuristic(model, &relax.x, options.int_tol) {
                        if incumbent.as_ref().map_or(true, |(_, best)| obj > *best) {
                            incumbent = Some((x, obj));
                            counters.incumbent_updates += 1;
                            let (b, n) = (global_bound, nodes as u64);
                            rasa_obs::flight::emit(|| {
                                rasa_obs::TraceEvent::bnb_incumbent(obj, b, n)
                            });
                        }
                    }
                }
                let v = relax.x[j];
                let floor = v.floor();
                // down child: x_j <= floor
                let mut down = node.changes.clone();
                let (cur_l, cur_u) = lp.bounds(rasa_lp::VarId(j));
                if floor >= cur_l {
                    down.push((j, cur_l, floor));
                    heap.push(Node {
                        bound: relax.objective,
                        changes: down,
                        depth: node.depth + 1,
                    });
                }
                // up child: x_j >= floor + 1
                if floor + 1.0 <= cur_u {
                    let mut up = node.changes.clone();
                    up.push((j, floor + 1.0, cur_u));
                    heap.push(Node {
                        bound: relax.objective,
                        changes: up,
                        depth: node.depth + 1,
                    });
                }
            }
        }
    }

    // heap exhausted: incumbent (if any) is optimal
    let bound = incumbent.as_ref().map_or(f64::NEG_INFINITY, |(_, o)| *o);
    finish(MipStatus::Optimal, incumbent, bound, nodes, lp_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_var_picks_most_fractional() {
        let mut m = MipModel::new();
        m.add_int_var(0.0, 10.0, 1.0);
        m.add_int_var(0.0, 10.0, 1.0);
        m.add_var(0.0, 10.0, 1.0);
        let x = vec![2.9, 1.5, 0.5];
        assert_eq!(pick_branch_var(&m, &x, 1e-6), Some(1));
        let x = vec![3.0, 2.0, 0.5];
        assert_eq!(
            pick_branch_var(&m, &x, 1e-6),
            None,
            "continuous vars ignored"
        );
    }

    #[test]
    fn rounding_heuristic_validates() {
        let mut m = MipModel::new();
        let a = m.add_int_var(0.0, 10.0, 1.0);
        m.add_row_le(vec![(a, 1.0)], 3.2);
        // 3.4 rounds to 3 — feasible
        assert!(rounding_heuristic(&m, &[3.4], 1e-6).is_some());
        // 3.6 rounds to 4 — violates the row
        assert!(rounding_heuristic(&m, &[3.6], 1e-6).is_none());
    }
}
