#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

//! # rasa-serve
//!
//! The crash-tolerant long-running allocation daemon: cluster snapshots
//! and incremental deltas arrive over HTTP/1.1 + JSON, are admitted
//! through the `ProblemValidator` gate, re-solved warm via the session
//! `SolveCache`, certified, and published — continuously, per tenant,
//! under overload.
//!
//! The transport is deliberately boring (`std::net::TcpListener`, one
//! request per connection); the substance is the resilience layer:
//!
//! * **Backpressure** — per-tenant [`BoundedQueue`]s; a full queue answers
//!   `429 Too Many Requests` + `Retry-After` instead of buffering without
//!   bound ([`queue`]).
//! * **Deadline budgets** — every round runs under a per-tenant deadline
//!   that the pipeline's wave-based slicing subdivides across subproblems.
//! * **Retry with jittered backoff** — transient certification failures
//!   retry on a seeded, deterministic [`BackoffSchedule`] ([`backoff`]).
//! * **Circuit breaking** — repeated ladder exhaustion trips a per-tenant
//!   [`CircuitBreaker`]; while open, the daemon serves the last *certified*
//!   placement with `stale: true` rather than erroring ([`breaker`]).
//! * **Panic isolation** — per connection and per solve round; a caught
//!   panic is counted, penalized, and degraded around, never fatal.
//! * **Graceful drain** — stop accepting, finish or black-box in-flight
//!   rounds, flush the flight recorder and metrics ([`server`]).
//! * **Request-scoped tracing** — every request adopts (or is minted) an
//!   `X-Rasa-Request-Id` that propagates through the solve to every span,
//!   black-box dump, and structured-log entry ([`log`]).
//! * **Per-tenant SLOs** — latency/availability objectives scored with
//!   5m/1h burn rates, surfaced by `GET /tenants` and `slo.*` metrics
//!   ([`slo`]).
//!
//! See `docs/ARCHITECTURE.md` ("Service layer") for the request lifecycle
//! and `docs/METRICS.md` for the `serve.*` metric glossary.

pub mod backoff;
pub mod breaker;
pub mod http;
pub mod log;
pub mod queue;
pub mod server;
pub mod slo;
pub mod wal;

pub use backoff::BackoffSchedule;
pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
pub use http::{HttpError, HttpLimits, Request, Response};
pub use log::{event_log, EventLog, LogEntry, LogLevel};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{DrainReport, ServeConfig, Server, ServerHandle};
pub use slo::{SloBurn, SloConfig, SloTracker};
pub use wal::{
    recover_all, recover_tenant, JournaledPlacement, RecoveredTenant, RecoveryOutcome,
    ReplayStats, SyncPolicy, TenantJournal, WalConfig, WalError, WalRecord, WalRecordKind,
};
