//! Jittered exponential backoff for transient solve failures.
//!
//! The schedule is "equal jitter": retry `k` sleeps uniformly in
//! `[ceil/2, ceil]` where `ceil = min(cap, base * 2^k)`. Jitter keeps
//! simultaneous retries from different tenants de-synchronized; the lower
//! bound keeps the daemon from hammering a failing solver instantly. The
//! RNG is seeded, so a given seed produces one deterministic schedule —
//! asserted by tests and relied on by the seeded soak campaign.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// A seeded backoff delay generator.
#[derive(Debug)]
pub struct BackoffSchedule {
    base: Duration,
    cap: Duration,
    rng: StdRng,
}

impl BackoffSchedule {
    /// A schedule starting at `base`, doubling per attempt, capped at
    /// `cap`, jittered by a RNG seeded with `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        BackoffSchedule {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The delay before retry `attempt` (0-based). Consumes RNG state, so
    /// call it once per actual retry.
    pub fn next_delay(&mut self, attempt: u32) -> Duration {
        let ceil = self.ceiling(attempt);
        let half = ceil / 2;
        let frac: f64 = self.rng.gen_range(0.0..1.0);
        half + Duration::from_secs_f64(half.as_secs_f64() * frac)
    }

    /// The deterministic (jitter-free) upper bound for retry `attempt`.
    pub fn ceiling(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 42);
        let mut b = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 42);
        let sa: Vec<Duration> = (0..8).map(|k| a.next_delay(k)).collect();
        let sb: Vec<Duration> = (0..8).map(|k| b.next_delay(k)).collect();
        assert_eq!(sa, sb, "seeded schedules must be bit-identical");
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mut a = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 1);
        let mut b = BackoffSchedule::new(Duration::from_millis(50), Duration::from_secs(1), 2);
        let sa: Vec<Duration> = (0..8).map(|k| a.next_delay(k)).collect();
        let sb: Vec<Duration> = (0..8).map(|k| b.next_delay(k)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn delays_stay_inside_the_jitter_window() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(1);
        let mut s = BackoffSchedule::new(base, cap, 7);
        for attempt in 0..12 {
            let ceil = s.ceiling(attempt);
            let d = s.next_delay(attempt);
            assert!(d >= ceil / 2, "attempt {attempt}: {d:?} below {ceil:?}/2");
            assert!(d <= ceil, "attempt {attempt}: {d:?} above {ceil:?}");
            assert!(ceil <= cap);
        }
        // exponential growth until the cap
        assert_eq!(s.ceiling(0), base);
        assert_eq!(s.ceiling(1), base * 2);
        assert_eq!(s.ceiling(10), cap);
        // huge attempt numbers must not overflow
        assert_eq!(s.ceiling(u32::MAX), cap);
    }
}
