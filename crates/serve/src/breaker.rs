//! Per-tenant circuit breaker: repeated ladder exhaustion trips the tenant
//! into a degraded stale-serving mode instead of burning solver budget on
//! a world that keeps failing.
//!
//! The state machine is the classic three-state breaker:
//!
//! * **Closed** — normal operation; consecutive solve failures are
//!   counted, and reaching the threshold trips the breaker **Open**.
//! * **Open** — solve requests are answered from the last certified
//!   placement (`stale: true`) without touching the solver. After the
//!   cooldown elapses, the next request is admitted as a **probe**.
//! * **Half-open** — exactly one probe solve is in flight at a time; a
//!   successful probe closes the breaker, a failed one re-opens it and
//!   restarts the cooldown.
//!
//! All time-dependent transitions take `now: Instant` as an argument so
//! tests drive the clock explicitly (`base + cooldown`) instead of
//! sleeping.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long the breaker stays Open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        }
    }
}

/// The breaker's externally visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Tripped: serve stale, wait out the cooldown.
    Open,
    /// Cooldown elapsed: probing with a single solve.
    HalfOpen,
}

/// What the breaker decided for an incoming solve request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the solve normally.
    Solve,
    /// Run the solve as the half-open recovery probe (its outcome decides
    /// whether the breaker closes or re-opens).
    Probe,
    /// Do not solve; serve the last certified placement with `stale: true`.
    ServeStale,
}

/// Per-tenant circuit breaker. Not internally synchronized — the daemon
/// keeps one behind the tenant's control lock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_in_flight: false,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current state, advancing Open → HalfOpen if the cooldown has
    /// elapsed by `now` (pure: does not start a probe).
    pub fn state(&self, now: Instant) -> BreakerState {
        match self.state {
            BreakerState::Open if self.cooldown_elapsed(now) => BreakerState::HalfOpen,
            s => s,
        }
    }

    /// Gate one incoming solve request at `now`.
    pub fn admit(&mut self, now: Instant) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Solve,
            BreakerState::Open => {
                if self.cooldown_elapsed(now) {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::ServeStale
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    BreakerDecision::ServeStale
                } else {
                    self.probe_in_flight = true;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Report a successful (certified, non-degraded) solve round.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.probe_in_flight = false;
                self.consecutive_failures = 0;
                self.recoveries += 1;
            }
            _ => self.consecutive_failures = 0,
        }
    }

    /// Report a failed round (ladder exhaustion, certification failure, or
    /// a caught solve panic) observed at `now`.
    pub fn on_failure(&mut self, now: Instant) {
        match self.state {
            BreakerState::HalfOpen => {
                // failed probe: straight back to Open, cooldown restarts
                self.state = BreakerState::Open;
                self.probe_in_flight = false;
                self.opened_at = Some(now);
                self.trips += 1;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(now);
                    self.trips += 1;
                }
            }
            BreakerState::Open => {}
        }
    }

    /// A probe was admitted but abandoned before completing (e.g. drain);
    /// release the probe slot so the tenant is not stuck half-open forever.
    pub fn abandon_probe(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.probe_in_flight = false;
        }
    }

    /// Closed → Open transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Half-open probes that closed the breaker.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    fn cooldown_elapsed(&self, now: Instant) -> bool {
        self.opened_at
            .is_some_and(|t| now.duration_since(t) >= self.config.cooldown)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker();
        let t0 = Instant::now();
        assert_eq!(b.admit(t0), BreakerDecision::Solve);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        // a success resets the streak
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.admit(t0), BreakerDecision::ServeStale);
    }

    #[test]
    fn cooldown_admits_exactly_one_probe() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let before = t0 + Duration::from_secs(9);
        assert_eq!(b.admit(before), BreakerDecision::ServeStale);
        let after = t0 + Duration::from_secs(10);
        assert_eq!(b.state(after), BreakerState::HalfOpen);
        assert_eq!(b.admit(after), BreakerDecision::Probe);
        // concurrent request while the probe is out: stale
        assert_eq!(b.admit(after), BreakerDecision::ServeStale);
    }

    #[test]
    fn successful_probe_closes_failed_probe_reopens() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let t1 = t0 + Duration::from_secs(10);
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
        b.on_success();
        assert_eq!(b.state(t1), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
        assert_eq!(b.admit(t1), BreakerDecision::Solve);

        // trip again, fail the probe this time
        for _ in 0..3 {
            b.on_failure(t1);
        }
        let t2 = t1 + Duration::from_secs(10);
        assert_eq!(b.admit(t2), BreakerDecision::Probe);
        b.on_failure(t2);
        assert_eq!(b.state(t2), BreakerState::Open);
        assert_eq!(b.trips(), 3, "initial trip + re-trip + failed probe");
        // cooldown restarted from the failed probe
        assert_eq!(
            b.admit(t2 + Duration::from_secs(9)),
            BreakerDecision::ServeStale
        );
        assert_eq!(
            b.admit(t2 + Duration::from_secs(10)),
            BreakerDecision::Probe
        );
    }

    #[test]
    fn abandoned_probe_releases_the_slot() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let t1 = t0 + Duration::from_secs(10);
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
        b.abandon_probe();
        assert_eq!(b.admit(t1), BreakerDecision::Probe);
    }
}
