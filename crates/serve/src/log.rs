//! The daemon's structured event log: leveled JSON entries in a bounded
//! in-memory ring, replacing ad-hoc `eprintln!` lines so operational
//! events are queryable (`GET /debug/log?tail=N`) and joinable to
//! requests — every entry captures the ambient
//! [`RequestContext`](rasa_obs::RequestContext) when one is installed.
//!
//! Configuration comes from the environment at daemon startup
//! ([`EventLog::configure_from_env`]):
//!
//! * `RASA_LOG_LEVEL` — minimum level kept (`debug`/`info`/`warn`/`error`;
//!   default `info`);
//! * `RASA_LOG_CAP` — ring capacity in entries (default 512; oldest
//!   entries are dropped and counted, never silently lost);
//! * `RASA_LOG_STDERR` — `0` silences the stderr echo of `warn`/`error`
//!   entries (default on, so a crashing daemon still leaves a trail).

use rasa_obs::flight::current_request_context;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Entry severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Development chatter (off by default).
    Debug = 0,
    /// Routine lifecycle events (startup, drain phases, publishes).
    Info = 1,
    /// Degraded-but-handled conditions (breaker trips, stale serves).
    Warn = 2,
    /// Failures (flush errors, panics, bind failures).
    Error = 3,
}

impl LogLevel {
    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parse a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Debug,
            1 => LogLevel::Info,
            2 => LogLevel::Warn,
            _ => LogLevel::Error,
        }
    }
}

/// One structured log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Monotone per-process sequence number.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Severity.
    pub level: LogLevel,
    /// Subsystem that emitted the entry (`"serve"`, `"drain"`, …).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Request id ambient when the entry was emitted (empty outside any
    /// request context).
    pub request_id: String,
    /// Tenant ambient when the entry was emitted (empty likewise).
    pub tenant: String,
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl LogEntry {
    /// Render as one JSON object (the `/debug/log` wire format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"unix_ms\":{},\"level\":\"{}\",\"target\":\"{}\",\
             \"message\":\"{}\",\"request_id\":\"{}\",\"tenant\":\"{}\"}}",
            self.seq,
            self.unix_ms,
            self.level.as_str(),
            json_escape(&self.target),
            json_escape(&self.message),
            json_escape(&self.request_id),
            json_escape(&self.tenant),
        )
    }
}

/// The bounded, leveled, process-wide event log behind [`event_log()`].
#[derive(Debug)]
pub struct EventLog {
    min_level: AtomicU8,
    echo_stderr: AtomicBool,
    cap: AtomicUsize,
    seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<LogEntry>>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            min_level: AtomicU8::new(LogLevel::Info as u8),
            echo_stderr: AtomicBool::new(true),
            cap: AtomicUsize::new(512),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }
}

impl EventLog {
    /// Set the minimum level kept.
    pub fn set_min_level(&self, level: LogLevel) {
        self.min_level.store(level as u8, Ordering::Relaxed);
    }

    /// The minimum level kept.
    pub fn min_level(&self) -> LogLevel {
        LogLevel::from_u8(self.min_level.load(Ordering::Relaxed))
    }

    /// Set the ring capacity (existing overflow is dropped and counted).
    pub fn set_capacity(&self, cap: usize) {
        let cap = cap.max(1);
        self.cap.store(cap, Ordering::Relaxed);
        let mut ring = self.lock_ring();
        while ring.len() > cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Enable or disable the stderr echo of `warn`/`error` entries.
    pub fn set_echo_stderr(&self, echo: bool) {
        self.echo_stderr.store(echo, Ordering::Relaxed);
    }

    /// Apply `RASA_LOG_LEVEL`, `RASA_LOG_CAP`, and `RASA_LOG_STDERR` from
    /// the environment (see module docs); unset variables keep defaults.
    pub fn configure_from_env(&self) {
        if let Some(level) = std::env::var("RASA_LOG_LEVEL")
            .ok()
            .and_then(|v| LogLevel::parse(&v))
        {
            self.set_min_level(level);
        }
        if let Some(cap) = std::env::var("RASA_LOG_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            self.set_capacity(cap);
        }
        if let Ok(v) = std::env::var("RASA_LOG_STDERR") {
            self.set_echo_stderr(v != "0");
        }
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, VecDeque<LogEntry>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one entry (no-op below the minimum level). The ambient
    /// request context, if any, is stamped into the entry.
    pub fn emit(&self, level: LogLevel, target: &str, message: impl Into<String>) {
        if (level as u8) < self.min_level.load(Ordering::Relaxed) {
            return;
        }
        let message = message.into();
        let ctx = current_request_context().unwrap_or_default();
        if level >= LogLevel::Warn && self.echo_stderr.load(Ordering::Relaxed) {
            eprintln!("rasa-serve [{}] {target}: {message}", level.as_str());
        }
        let entry = LogEntry {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            level,
            target: target.to_string(),
            message,
            request_id: ctx.request_id,
            tenant: ctx.tenant,
        };
        let cap = self.cap.load(Ordering::Relaxed).max(1);
        let mut ring = self.lock_ring();
        while ring.len() >= cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// The newest `n` entries, oldest first.
    pub fn tail(&self, n: usize) -> Vec<LogEntry> {
        let ring = self.lock_ring();
        ring.iter().skip(ring.len().saturating_sub(n)).cloned().collect()
    }

    /// Entries dropped by the bounded ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the newest `n` entries as the `/debug/log` JSON document.
    pub fn tail_json(&self, n: usize) -> String {
        let entries: Vec<String> = self.tail(n).iter().map(LogEntry::to_json).collect();
        format!(
            "{{\"dropped\":{},\"entries\":[{}]}}",
            self.dropped(),
            entries.join(",")
        )
    }
}

/// The process-wide event log.
pub fn event_log() -> &'static EventLog {
    static LOG: OnceLock<EventLog> = OnceLock::new();
    LOG.get_or_init(EventLog::default)
}

/// Emit an `info` entry to the process-wide log.
pub fn info(target: &str, message: impl Into<String>) {
    event_log().emit(LogLevel::Info, target, message);
}

/// Emit a `warn` entry to the process-wide log.
pub fn warn(target: &str, message: impl Into<String>) {
    event_log().emit(LogLevel::Warn, target, message);
}

/// Emit an `error` entry to the process-wide log.
pub fn error(target: &str, message: impl Into<String>) {
    event_log().emit(LogLevel::Error, target, message);
}

/// Emit a `debug` entry to the process-wide log.
pub fn debug(target: &str, message: impl Into<String>) {
    event_log().emit(LogLevel::Debug, target, message);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let log = EventLog::default();
        log.set_capacity(3);
        log.set_echo_stderr(false);
        for i in 0..7 {
            log.emit(LogLevel::Info, "test", format!("m{i}"));
        }
        let tail = log.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].message, "m4");
        assert_eq!(tail[2].message, "m6");
        assert_eq!(log.dropped(), 4);
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn min_level_filters_and_parse_round_trips() {
        let log = EventLog::default();
        log.set_echo_stderr(false);
        log.set_min_level(LogLevel::Warn);
        log.emit(LogLevel::Info, "test", "dropped");
        log.emit(LogLevel::Error, "test", "kept");
        let tail = log.tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].level, LogLevel::Error);
        for level in [
            LogLevel::Debug,
            LogLevel::Info,
            LogLevel::Warn,
            LogLevel::Error,
        ] {
            assert_eq!(LogLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(LogLevel::parse("bogus"), None);
    }

    #[test]
    fn entries_capture_the_ambient_request_context() {
        let log = EventLog::default();
        log.set_echo_stderr(false);
        {
            let _ctx = rasa_obs::with_request_context(rasa_obs::RequestContext::new(
                "req-7", "acme",
            ));
            log.emit(LogLevel::Info, "serve", "round published");
        }
        log.emit(LogLevel::Info, "serve", "outside");
        let tail = log.tail(10);
        assert_eq!(tail[0].request_id, "req-7");
        assert_eq!(tail[0].tenant, "acme");
        assert_eq!(tail[1].request_id, "");
        let json = tail[0].to_json();
        assert!(json.contains("\"request_id\":\"req-7\""));
        assert!(json.contains("\"level\":\"info\""));
    }

    #[test]
    fn json_escaping_survives_hostile_messages() {
        let log = EventLog::default();
        log.set_echo_stderr(false);
        log.emit(LogLevel::Info, "t", "quote \" slash \\ newline \n end");
        let json = log.tail_json(1);
        assert!(json.contains("quote \\\" slash \\\\ newline \\n end"));
        assert!(json.starts_with("{\"dropped\":0,\"entries\":["));
    }
}
