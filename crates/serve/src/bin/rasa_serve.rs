//! `rasa-serve` — run the allocation daemon from the command line.
//!
//! ```text
//! rasa-serve [--addr 127.0.0.1:7070] [--workers 2] [--queue-capacity 4]
//!            [--max-tenants 64] [--deadline-ms 2000] [--seed 42]
//!            [--drain-grace-ms 5000] [--metrics-out PATH]
//!            [--retrain-every N] [--wal-dir PATH] [--wal-sync POLICY]
//!            [--sample-stream PATH]
//! ```
//!
//! `--wal-dir` turns on per-tenant write-ahead journaling: acked state is
//! durable before the 200, and on restart the daemon replays the journals
//! through both trust gates (`--wal-sync` is `always` (default), `never`,
//! or `every:N`). `--sample-stream` persists the online selector sample
//! stream across restarts.
//!
//! The bound address is printed as `listening on <addr>` once the socket
//! is open (scripts parse this when binding port 0). SIGTERM or SIGINT
//! initiates graceful drain; the process exits 0 after the drain report
//! is printed. The flight recorder reads its `RASA_FLIGHT_*` environment
//! configuration at startup, so black-box dumps work the same way as in
//! the batch CLI; the structured event log likewise reads `RASA_LOG_*`
//! (`RASA_LOG_LEVEL`, `RASA_LOG_CAP`, `RASA_LOG_STDERR`) and is served
//! back by `GET /debug/log?tail=N`.

#![warn(clippy::unwrap_used)]

use rasa_serve::{ServeConfig, Server, SyncPolicy, WalConfig};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // No signal-handling crate is vendored; std links libc anyway, so a
    // two-line FFI declaration is all we need. The handler only performs
    // an atomic store — the async-signal-safe minimum.
    extern "C" fn on_signal(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> &'static str {
    "usage: rasa-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]\n\
     \x20                 [--max-tenants N] [--deadline-ms N] [--seed N]\n\
     \x20                 [--drain-grace-ms N] [--metrics-out PATH]\n\
     \x20                 [--retrain-every N] [--wal-dir PATH]\n\
     \x20                 [--wal-sync always|never|every:N] [--wal-compact-every N]\n\
     \x20                 [--wal-segment-bytes N] [--sample-stream PATH]"
}

/// The WAL config a `--wal-*` flag mutates, defaulting it into existence
/// on first use (flag order doesn't matter; the root must end up set).
fn wal_tuning(config: &mut ServeConfig) -> &mut WalConfig {
    config.wal.get_or_insert_with(|| WalConfig::new(""))
}

fn parse_args(config: &mut ServeConfig) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number".to_string())?
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|_| "--queue-capacity: not a number".to_string())?
            }
            "--max-tenants" => {
                config.max_tenants = value("--max-tenants")?
                    .parse()
                    .map_err(|_| "--max-tenants: not a number".to_string())?
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms: not a number".to_string())?;
                config.default_deadline = Duration::from_millis(ms.max(1));
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not a number".to_string())?
            }
            "--drain-grace-ms" => {
                let ms: u64 = value("--drain-grace-ms")?
                    .parse()
                    .map_err(|_| "--drain-grace-ms: not a number".to_string())?;
                config.drain_grace = Duration::from_millis(ms);
            }
            "--metrics-out" => {
                config.metrics_flush_path = Some(value("--metrics-out")?.into());
            }
            "--retrain-every" => {
                let every: u64 = value("--retrain-every")?
                    .parse()
                    .map_err(|_| "--retrain-every: not a number".to_string())?;
                config.retrain_every = (every > 0).then_some(every);
            }
            "--wal-dir" => {
                let root: std::path::PathBuf = value("--wal-dir")?.into();
                // tuning flags parsed before --wal-dir are kept
                wal_tuning(config).root = root;
            }
            "--wal-sync" => {
                let sync = SyncPolicy::parse(&value("--wal-sync")?)
                    .map_err(|e| format!("--wal-sync: {e}"))?;
                wal_tuning(config).sync = sync;
            }
            "--wal-compact-every" => {
                let every: u64 = value("--wal-compact-every")?
                    .parse()
                    .map_err(|_| "--wal-compact-every: not a number".to_string())?;
                wal_tuning(config).compact_every = every.max(1);
            }
            "--wal-segment-bytes" => {
                let bytes: u64 = value("--wal-segment-bytes")?
                    .parse()
                    .map_err(|_| "--wal-segment-bytes: not a number".to_string())?;
                wal_tuning(config).segment_max_bytes = bytes;
            }
            "--sample-stream" => {
                config.sample_stream_path = Some(value("--sample-stream")?.into());
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if config
        .wal
        .as_ref()
        .is_some_and(|w| w.root.as_os_str().is_empty())
    {
        return Err("--wal-sync/--wal-compact-every/--wal-segment-bytes require --wal-dir".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..ServeConfig::default()
    };
    if let Err(message) = parse_args(&mut config) {
        eprintln!("{message}");
        return ExitCode::from(2);
    }
    rasa_obs::flight::recorder().configure_from_env();
    rasa_serve::log::event_log().configure_from_env();
    install_signal_handlers();

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            rasa_serve::log::error("main", format!("bind failed: {e}"));
            return ExitCode::from(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("listening on {addr}");
            rasa_serve::log::info("main", format!("listening on {addr}"));
        }
        Err(e) => rasa_serve::log::error("main", format!("local_addr: {e}")),
    }

    let handle = server.handle();
    let watcher = std::thread::spawn(move || {
        while !TERMINATE.load(Ordering::SeqCst) {
            if handle.is_draining() {
                return; // drained via POST /drain — nothing to signal
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        handle.shutdown();
    });

    let report = server.run();
    println!(
        "drained: {:.3}s, abandoned_jobs={}, inflight_completed={}, blackbox_dumps={}",
        report.drain_seconds,
        report.abandoned_jobs,
        report.inflight_completed,
        report.blackbox_dumps
    );
    TERMINATE.store(true, Ordering::SeqCst); // unblock the watcher
    let _ = watcher.join();
    ExitCode::SUCCESS
}
