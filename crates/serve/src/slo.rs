//! Per-tenant SLO accounting with multi-window burn rates.
//!
//! Each tenant tracks two objectives over its allocation requests
//! (`POST /snapshot` / `POST /delta`):
//!
//! * **availability** — the request got a final `200` (fresh or stale);
//! * **latency** — the request was available *and* finished within the
//!   configured latency target.
//!
//! Outcomes land in per-minute buckets (a bounded deque — one hour of
//! history), and burn rates are computed on read over a 5-minute and a
//! 60-minute sliding window, SRE-style:
//!
//! ```text
//! burn = observed_error_rate / error_budget        (budget = 1 − target)
//! ```
//!
//! `burn < 1` means the tenant is within budget at the current rate; a
//! 5-minute burn well above 1 with a calm 1-hour burn flags a fresh,
//! fast-moving incident. Both windows surface in `GET /tenants` and the
//! labeled `slo.*` counters feed Prometheus.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// SLO objectives shared by every tenant (part of
/// [`ServeConfig`](crate::ServeConfig)).
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// A request slower than this misses the latency objective even when
    /// it succeeds.
    pub latency_target: Duration,
    /// Fraction of requests that must be available (e.g. `0.999`).
    pub availability_target: f64,
    /// Fraction of requests that must meet the latency target
    /// (e.g. `0.99`).
    pub latency_objective: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_target: Duration::from_secs(1),
            availability_target: 0.999,
            latency_objective: 0.99,
        }
    }
}

/// One minute of outcomes.
#[derive(Clone, Copy, Debug)]
struct MinuteBucket {
    minute: u64,
    total: u64,
    latency_misses: u64,
    unavailable: u64,
}

/// Burn rates over one window (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SloBurn {
    /// Requests observed in the window.
    pub events: u64,
    /// Latency-objective burn rate (`0` when the window is empty).
    pub latency: f64,
    /// Availability-objective burn rate (`0` when the window is empty).
    pub availability: f64,
}

/// `observed_error_rate / error_budget`, with the budget floored so a
/// `target` of exactly 1.0 cannot divide by zero.
fn burn_rate(bad: u64, total: u64, target: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let error_rate = bad as f64 / total as f64;
    error_rate / (1.0 - target).max(1e-9)
}

/// Per-tenant SLO state: minute buckets plus lifetime tallies.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    origin: Instant,
    buckets: VecDeque<MinuteBucket>,
    total: u64,
    latency_misses: u64,
    unavailable: u64,
}

impl SloTracker {
    /// An empty tracker under `config`.
    pub fn new(config: SloConfig) -> Self {
        SloTracker {
            config,
            origin: Instant::now(),
            buckets: VecDeque::new(),
            total: 0,
            latency_misses: 0,
            unavailable: 0,
        }
    }

    /// The objectives this tracker scores against.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    fn minute_now(&self) -> u64 {
        self.origin.elapsed().as_secs() / 60
    }

    /// Record one request outcome: its final status (`200` counts as
    /// available, anything else as unavailable) and wall duration.
    pub fn record(&mut self, status: u16, duration: Duration) {
        let available = status == 200;
        let latency_ok = available && duration <= self.config.latency_target;
        self.record_outcome(available, latency_ok);
    }

    fn record_outcome(&mut self, available: bool, latency_ok: bool) {
        let minute = self.minute_now();
        let need_new = !matches!(self.buckets.back(), Some(b) if b.minute == minute);
        if need_new {
            self.buckets.push_back(MinuteBucket {
                minute,
                total: 0,
                latency_misses: 0,
                unavailable: 0,
            });
            // one hour of history is all any window reads
            while self.buckets.len() > 61 {
                self.buckets.pop_front();
            }
        }
        if let Some(bucket) = self.buckets.back_mut() {
            bucket.total += 1;
            if !latency_ok {
                bucket.latency_misses += 1;
            }
            if !available {
                bucket.unavailable += 1;
            }
        }
        self.total += 1;
        if !latency_ok {
            self.latency_misses += 1;
        }
        if !available {
            self.unavailable += 1;
        }
    }

    /// Burn rates over the trailing `minutes`-minute window (including the
    /// current minute).
    pub fn burn(&self, minutes: u64) -> SloBurn {
        let now = self.minute_now();
        let from = now.saturating_sub(minutes.max(1) - 1);
        let (mut total, mut lm, mut ua) = (0u64, 0u64, 0u64);
        for b in &self.buckets {
            if b.minute >= from {
                total += b.total;
                lm += b.latency_misses;
                ua += b.unavailable;
            }
        }
        SloBurn {
            events: total,
            latency: burn_rate(lm, total, self.config.latency_objective),
            availability: burn_rate(ua, total, self.config.availability_target),
        }
    }

    /// The fast window: 5-minute burn.
    pub fn burn_short(&self) -> SloBurn {
        self.burn(5)
    }

    /// The slow window: 60-minute burn.
    pub fn burn_long(&self) -> SloBurn {
        self.burn(60)
    }

    /// Lifetime `(total, latency_misses, unavailable)` tallies.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.total, self.latency_misses, self.unavailable)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(SloConfig {
            latency_target: Duration::from_millis(100),
            availability_target: 0.9,
            latency_objective: 0.9,
        })
    }

    #[test]
    fn clean_traffic_burns_nothing() {
        let mut t = tracker();
        for _ in 0..50 {
            t.record(200, Duration::from_millis(10));
        }
        let burn = t.burn_short();
        assert_eq!(burn.events, 50);
        assert_eq!(burn.latency, 0.0);
        assert_eq!(burn.availability, 0.0);
        assert_eq!(t.totals(), (50, 0, 0));
    }

    #[test]
    fn failures_burn_proportionally_to_the_budget() {
        let mut t = tracker();
        // 10% unavailable against a 10% error budget → burn ≈ 1.0
        for i in 0..100 {
            let status = if i % 10 == 0 { 504 } else { 200 };
            t.record(status, Duration::from_millis(10));
        }
        let burn = t.burn_short();
        assert!((burn.availability - 1.0).abs() < 1e-9, "{burn:?}");
        // unavailable requests also miss latency (never latency-good)
        assert!((burn.latency - 1.0).abs() < 1e-9, "{burn:?}");
    }

    #[test]
    fn slow_successes_miss_latency_but_not_availability() {
        let mut t = tracker();
        for _ in 0..10 {
            t.record(200, Duration::from_secs(2));
        }
        let burn = t.burn_short();
        assert_eq!(burn.availability, 0.0);
        assert!(burn.latency > 1.0, "every request misses: {burn:?}");
        assert_eq!(t.totals(), (10, 10, 0));
    }

    #[test]
    fn empty_windows_and_full_budget_do_not_divide_by_zero() {
        let t = SloTracker::new(SloConfig {
            availability_target: 1.0,
            ..SloConfig::default()
        });
        let burn = t.burn_short();
        assert_eq!(burn.events, 0);
        assert_eq!(burn.availability, 0.0);
        let mut t = SloTracker::new(SloConfig {
            availability_target: 1.0,
            ..SloConfig::default()
        });
        t.record(504, Duration::from_millis(1));
        assert!(t.burn_short().availability.is_finite());
    }

    #[test]
    fn bucket_history_is_bounded() {
        let mut t = tracker();
        // force many synthetic minutes by manipulating origin is not
        // possible from here; instead verify the deque never exceeds its
        // cap under same-minute load
        for _ in 0..1000 {
            t.record(200, Duration::from_millis(1));
        }
        assert!(t.buckets.len() <= 61);
    }
}
