//! Per-tenant write-ahead journal: the durability layer under the daemon.
//!
//! Every state transition a tenant acks — an admitted snapshot, an applied
//! delta, a certified placement — is appended to an on-disk journal
//! *before* the client sees the 200, so a `kill -9` never loses
//! acknowledged state. On restart [`recover_all`] replays each tenant's
//! journal back into a [`RestoredState`] that the server feeds through
//! `AllocationSession::restore` — which re-runs **both trust gates**
//! (admission and `certify_placement`) on the recovered bytes. A corrupt
//! or torn journal can therefore only quarantine its tenant; it can never
//! panic the daemon or publish uncertified state.
//!
//! ## On-disk format
//!
//! A tenant's journal is a directory `<root>/<tenant>/` holding segment
//! files `seg-<seq>.wal` and checkpoint files `ckpt-<seq>.wal`. Every
//! file starts with the 8-byte magic `RASAWAL1`, followed by framed
//! records:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload bytes]
//! ```
//!
//! The payload is the JSON encoding of one [`WalRecord`]. CRC-32
//! (IEEE polynomial, the zlib/PNG one) is implemented here — the
//! workspace vendors no checksum crate.
//!
//! ## Compaction
//!
//! Appends rotate to a fresh segment past [`WalConfig::segment_max_bytes`]
//! and, every [`WalConfig::compact_every`] records, fold the tenant's
//! whole state into a checkpoint: a single `Checkpoint` record carrying
//! the admitted problem, the last certified placement, and a `watermark`
//! — the highest segment sequence folded in. The checkpoint is written to
//! a temp file, fsynced, and renamed before any old file is deleted, so a
//! crash at *any* point of compaction leaves either the old segments or a
//! complete checkpoint on disk; deleting superseded files afterwards is
//! pure garbage collection. Recovery picks the newest checkpoint that
//! parses and replays only segments with `seq > watermark`.
//!
//! ## Torn tails and corruption
//!
//! The last record of a segment may be torn by a crash mid-write: replay
//! truncates at the last valid record and counts a
//! `recovery.torn_tails`. A record whose CRC or JSON decode fails
//! mid-segment is skipped and counted (`recovery.records_skipped`); more
//! than [`MAX_CONSECUTIVE_SKIPS`] in a row means the rest of the segment
//! is garbage and is treated as torn. Whether skip-damaged state is still
//! *servable* is not decided here — the trust gates decide on restore.
//!
//! ## Crash failpoints
//!
//! The seeded kill-9 campaign (`rasa-sim`'s crash harness) needs crashes
//! at byte-deterministic points. `RASA_WAL_CRASH_AT=append:<n>` aborts
//! the process halfway through the `n`-th journal append;
//! `RASA_WAL_CRASH_AT=compact:<n>` aborts halfway through writing the
//! `n`-th checkpoint (before the rename). Both leave a genuinely torn
//! file behind, exactly like a power cut.

use rasa_core::{apply_delta_to_problem, RestoredPlacement, RestoredState, SnapshotDelta};
use rasa_model::{Placement, Problem, ProblemValidator};
use rasa_obs::flight::{self, TraceEvent};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Magic bytes opening every journal file (segment or checkpoint).
pub const MAGIC: [u8; 8] = *b"RASAWAL1";

/// Upper bound on one record's payload, as a sanity check on the length
/// prefix of a possibly-corrupt frame (64 MiB).
pub const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// How many CRC/decode-failed records replay skips in a row before it
/// declares the rest of the segment torn.
pub const MAX_CONSECUTIVE_SKIPS: u32 = 3;

const SEGMENT_PREFIX: &str = "seg-";
const CHECKPOINT_PREFIX: &str = "ckpt-";
const WAL_SUFFIX: &str = ".wal";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE / zlib polynomial), table-driven, const-built.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the polynomial zlib and PNG use.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Configuration.

/// When the journal fsyncs after an append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append — an acked request is durable. The
    /// daemon default.
    Always,
    /// fsync after every `n` appends: bounded loss window, fewer syncs.
    EveryN(u32),
    /// Never fsync explicitly; durability is whenever the OS writes
    /// back. For benches and tests only.
    Never,
}

impl SyncPolicy {
    /// Parse `"always"`, `"never"`, or `"every:N"` (N ≥ 1).
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            other => match other.strip_prefix("every:").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => Ok(SyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "sync policy must be always, never, or every:N — got {other:?}"
                )),
            },
        }
    }
}

/// Journal tuning: where the journals live and how they sync, rotate, and
/// compact.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding one subdirectory per tenant.
    pub root: PathBuf,
    /// fsync discipline on append.
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this.
    pub segment_max_bytes: u64,
    /// Fold state into a checkpoint every this many appended records.
    pub compact_every: u64,
}

impl WalConfig {
    /// Defaults rooted at `root`: fsync always, 1 MiB segments, a
    /// checkpoint every 64 records.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        WalConfig {
            root: root.into(),
            sync: SyncPolicy::Always,
            segment_max_bytes: 1024 * 1024,
            compact_every: 64,
        }
    }
}

// ---------------------------------------------------------------------------
// Records.

/// A certified placement as journaled, with the provenance restore needs
/// to re-certify it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JournaledPlacement {
    /// Publish round number.
    pub round: u64,
    /// Snapshot generation the placement was solved against.
    pub generation: u64,
    /// The objective Gate 2 recomputed at publish time.
    pub claimed_objective: f64,
    /// Normalized gained affinity at publish time.
    pub normalized: f64,
    /// The certified container-to-machine mapping.
    pub placement: Placement,
}

/// What a [`WalRecord`] carries (the vendored serde_derive supports only
/// fieldless enums, so records are a kind tag plus optional payloads).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalRecordKind {
    /// A full admitted snapshot replaced the tenant's world
    /// (`problem` set).
    Snapshot,
    /// An incremental delta applied cleanly (`delta` set).
    Delta,
    /// A placement passed certification and was published
    /// (`placement` set).
    Placement,
    /// A compaction point superseding every segment with
    /// `seq <= watermark` (`problem` set, `placement` optional). Only
    /// ever appears alone in `ckpt-*.wal` files.
    Checkpoint,
}

/// One journal record. `Snapshot` and `Delta` are appended after the
/// mutation passed the admission gate (the journaled problem is the
/// *post-admission* repaired one, so replay re-admits clean);
/// `Placement` after the round passed the certification gate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalRecord {
    /// Which payload fields are meaningful.
    pub kind: WalRecordKind,
    /// Session generation after this record applied (`Snapshot`,
    /// `Delta`, `Checkpoint`).
    pub generation: u64,
    /// Publish rounds completed (`Checkpoint` only).
    pub rounds: u64,
    /// Highest segment sequence folded in (`Checkpoint` only).
    pub watermark: u64,
    /// The admitted problem (`Snapshot`, `Checkpoint`).
    pub problem: Option<Problem>,
    /// The applied delta (`Delta`).
    pub delta: Option<SnapshotDelta>,
    /// The certified placement (`Placement`; `Checkpoint`'s last
    /// published, if any).
    pub placement: Option<JournaledPlacement>,
}

impl WalRecord {
    fn base(kind: WalRecordKind) -> WalRecord {
        WalRecord {
            kind,
            generation: 0,
            rounds: 0,
            watermark: 0,
            problem: None,
            delta: None,
            placement: None,
        }
    }

    /// An admitted-snapshot record.
    pub fn snapshot(generation: u64, problem: Problem) -> WalRecord {
        WalRecord {
            generation,
            problem: Some(problem),
            ..WalRecord::base(WalRecordKind::Snapshot)
        }
    }

    /// An applied-delta record.
    pub fn delta(generation: u64, delta: SnapshotDelta) -> WalRecord {
        WalRecord {
            generation,
            delta: Some(delta),
            ..WalRecord::base(WalRecordKind::Delta)
        }
    }

    /// A certified-placement record.
    pub fn placement(placement: JournaledPlacement) -> WalRecord {
        WalRecord {
            placement: Some(placement),
            ..WalRecord::base(WalRecordKind::Placement)
        }
    }
}

/// Why a journal write failed.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem trouble (create, write, fsync, rename).
    Io {
        /// The journal path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The record could not be serialized (should be unreachable for the
    /// types journaled here).
    Serialize {
        /// The underlying JSON error.
        source: serde_json::Error,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            WalError::Serialize { source } => write!(f, "wal record serialize: {source}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Serialize { source } => Some(source),
        }
    }
}

fn io_err(path: &Path) -> impl Fn(io::Error) -> WalError + '_ {
    move |source| WalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Frame one payload: length, CRC, bytes.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

// ---------------------------------------------------------------------------
// Crash failpoints (see module docs).

/// `true` exactly when this call is the configured `RASA_WAL_CRASH_AT`
/// point for `op` (`"append"` or `"compact"`).
fn crash_point(op: &str) -> bool {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    static COUNT: AtomicU64 = AtomicU64::new(0);
    let spec = SPEC.get_or_init(|| {
        let raw = std::env::var("RASA_WAL_CRASH_AT").ok()?;
        let (o, n) = raw.split_once(':')?;
        Some((o.to_string(), n.parse().ok()?))
    });
    let Some((o, n)) = spec else { return false };
    if o != op {
        return false;
    }
    COUNT.fetch_add(1, Ordering::SeqCst) + 1 == *n
}

/// Tear `framed` in half into `file` and die like a power cut: the
/// partial bytes are synced (so the torn state is really on disk), then
/// the process aborts without unwinding.
fn tear_and_abort(file: &mut File, framed: &[u8]) -> ! {
    let half = framed.len() / 2;
    let _ = file.write_all(&framed[..half.max(1)]);
    let _ = file.sync_data();
    std::process::abort();
}

// ---------------------------------------------------------------------------
// The writer.

/// One tenant's open journal: the append/rotate/compact side. Reading
/// happens through [`recover_all`] / [`recover_tenant`].
pub struct TenantJournal {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_max_bytes: u64,
    compact_every: u64,
    seg_seq: u64,
    file: File,
    seg_bytes: u64,
    records_since_checkpoint: u64,
    unsynced: u32,
}

fn file_seq(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(WAL_SUFFIX)?
        .parse()
        .ok()
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:016}{WAL_SUFFIX}"))
}

fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{CHECKPOINT_PREFIX}{seq:016}{WAL_SUFFIX}"))
}

/// Sequence numbers of the segment and checkpoint files in `dir`.
fn list_sequences(dir: &Path) -> (Vec<u64>, Vec<u64>) {
    let (mut segs, mut ckpts) = (Vec::new(), Vec::new());
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = file_seq(name, SEGMENT_PREFIX) {
                segs.push(seq);
            } else if let Some(seq) = file_seq(name, CHECKPOINT_PREFIX) {
                ckpts.push(seq);
            }
        }
    }
    segs.sort_unstable();
    ckpts.sort_unstable();
    (segs, ckpts)
}

/// The state a checkpoint folds in (borrowed from the live session at
/// compaction time).
pub struct CheckpointState<'a> {
    /// The admitted problem.
    pub problem: &'a Problem,
    /// The last certified placement, if any.
    pub published: Option<JournaledPlacement>,
    /// Publish rounds completed.
    pub rounds: u64,
    /// Snapshot generation.
    pub generation: u64,
}

impl TenantJournal {
    /// Open (creating if needed) the journal for `tenant` under
    /// `config.root` and start a fresh segment after whatever is already
    /// there. Existing files are never appended to — recovery has
    /// already read them, and a fresh segment sidesteps re-validating a
    /// possibly-torn tail on the write path.
    pub fn open(config: &WalConfig, tenant: &str) -> Result<TenantJournal, WalError> {
        let dir = config.root.join(tenant);
        fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        let (segs, ckpts) = list_sequences(&dir);
        let last = segs
            .last()
            .copied()
            .max(ckpts.last().copied())
            .unwrap_or(0);
        let seg_seq = last + 1;
        let file = new_segment(&dir, seg_seq, config.sync)?;
        Ok(TenantJournal {
            dir,
            sync: config.sync,
            segment_max_bytes: config.segment_max_bytes.max(4096),
            compact_every: config.compact_every.max(1),
            seg_seq,
            file,
            seg_bytes: MAGIC.len() as u64,
            records_since_checkpoint: 0,
            unsynced: 0,
        })
    }

    /// The tenant's journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one record, honoring the sync policy, rotating past the
    /// segment cap. On `Ok`, under [`SyncPolicy::Always`], the record is
    /// durable.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let obs = rasa_obs::global();
        let payload = serde_json::to_string(record)
            .map_err(|source| WalError::Serialize { source })?
            .into_bytes();
        let framed = frame(&payload);
        if crash_point("append") {
            tear_and_abort(&mut self.file, &framed);
        }
        let path = seg_path(&self.dir, self.seg_seq);
        self.file.write_all(&framed).map_err(io_err(&path))?;
        self.seg_bytes += framed.len() as u64;
        obs.inc("wal.appends");
        obs.add("wal.bytes_written", framed.len() as u64);
        let must_sync = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::Never => false,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                self.unsynced >= n
            }
        };
        if must_sync {
            self.file.sync_data().map_err(io_err(&path))?;
            self.unsynced = 0;
            obs.inc("wal.fsyncs");
        }
        self.records_since_checkpoint += 1;
        if self.seg_bytes >= self.segment_max_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // make the outgoing segment durable before moving on — a record
        // acked under EveryN must not be lost just because we rotated
        let path = seg_path(&self.dir, self.seg_seq);
        self.file.sync_data().map_err(io_err(&path))?;
        self.seg_seq += 1;
        self.file = new_segment(&self.dir, self.seg_seq, self.sync)?;
        self.seg_bytes = MAGIC.len() as u64;
        self.unsynced = 0;
        rasa_obs::global().inc("wal.segments_rotated");
        Ok(())
    }

    /// `true` once enough records accumulated that the caller should
    /// [`checkpoint`](Self::checkpoint).
    pub fn needs_checkpoint(&self) -> bool {
        self.records_since_checkpoint >= self.compact_every
    }

    /// Fold `state` into a checkpoint superseding every current segment,
    /// then garbage-collect the superseded files. Crash-safe at every
    /// step: the checkpoint is complete-and-renamed before anything is
    /// deleted, and deletion itself is pure GC (recovery ignores
    /// leftovers at or below the watermark).
    pub fn checkpoint(&mut self, state: &CheckpointState<'_>) -> Result<(), WalError> {
        let obs = rasa_obs::global();
        let watermark = self.seg_seq;
        let record = WalRecord {
            watermark,
            rounds: state.rounds,
            generation: state.generation,
            problem: Some(state.problem.clone()),
            placement: state.published.clone(),
            ..WalRecord::base(WalRecordKind::Checkpoint)
        };
        let payload = serde_json::to_string(&record)
            .map_err(|source| WalError::Serialize { source })?
            .into_bytes();
        let framed = frame(&payload);
        let final_path = ckpt_path(&self.dir, watermark);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err(&tmp_path))?;
            tmp.write_all(&MAGIC).map_err(io_err(&tmp_path))?;
            if crash_point("compact") {
                tear_and_abort(&mut tmp, &framed);
            }
            tmp.write_all(&framed).map_err(io_err(&tmp_path))?;
            tmp.sync_all().map_err(io_err(&tmp_path))?;
        }
        fs::rename(&tmp_path, &final_path).map_err(io_err(&final_path))?;
        sync_dir(&self.dir);
        obs.inc("wal.checkpoints");

        // the checkpoint is durable; everything below is GC + rollover
        self.seg_seq = watermark + 1;
        self.file = new_segment(&self.dir, self.seg_seq, self.sync)?;
        self.seg_bytes = MAGIC.len() as u64;
        self.records_since_checkpoint = 0;
        self.unsynced = 0;
        let (segs, ckpts) = list_sequences(&self.dir);
        for seq in segs.into_iter().filter(|s| *s <= watermark) {
            let _ = fs::remove_file(seg_path(&self.dir, seq));
        }
        for seq in ckpts.into_iter().filter(|s| *s < watermark) {
            let _ = fs::remove_file(ckpt_path(&self.dir, seq));
        }
        Ok(())
    }
}

fn new_segment(dir: &Path, seq: u64, sync: SyncPolicy) -> Result<File, WalError> {
    let path = seg_path(dir, seq);
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&path)
        .map_err(io_err(&path))?;
    file.write_all(&MAGIC).map_err(io_err(&path))?;
    if sync == SyncPolicy::Always {
        file.sync_data().map_err(io_err(&path))?;
    }
    sync_dir(dir);
    Ok(file)
}

/// fsync a directory so renames/creates inside it are durable. Best
/// effort — not every filesystem supports it, and the record-level CRCs
/// catch what slips through.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Delete a tenant's journal directory outright (serving `DELETE
/// /tenant`, or operator cleanup of a quarantined journal).
pub fn remove_tenant_journal(root: &Path, tenant: &str) -> io::Result<()> {
    let dir = root.join(tenant);
    if dir.is_dir() {
        fs::remove_dir_all(&dir)
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay / recovery.

/// Tallies from replaying one tenant's journal.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Segment files read (checkpoint files not counted).
    pub segments: u64,
    /// Records applied to the rebuilt state.
    pub records_replayed: u64,
    /// Records skipped for CRC or decode failure.
    pub records_skipped: u64,
    /// Segments that ended in a torn (partial or garbage) region.
    pub torn_tails: u64,
    /// Checkpoint files that failed to parse and were passed over for an
    /// older one.
    pub checkpoints_skipped: u64,
}

/// What replay produced for one tenant. `Recovered` still has to pass
/// the trust gates (`AllocationSession::restore`) before it is served.
#[derive(Debug)]
pub enum RecoveryOutcome {
    /// A consistent state was rebuilt from the journal.
    Recovered(Box<RestoredState>),
    /// The journal is damaged beyond safe use; the tenant must be
    /// quarantined (503), never served from these bytes.
    Quarantined {
        /// What replay found.
        reason: String,
    },
    /// The journal holds no state (created but never snapshotted, and
    /// nothing was lost getting here) — no tenant to rebuild.
    Empty,
}

/// One tenant's replay result.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// Tenant name (the journal subdirectory name).
    pub tenant: String,
    /// Replay tallies.
    pub stats: ReplayStats,
    /// The rebuilt state, a quarantine, or nothing.
    pub outcome: RecoveryOutcome,
}

/// Parse the framed records of one journal file. Returns the decoded
/// records; tallies skips and torn tails into `stats` and emits
/// `wal_record_skipped` / `wal_torn_tail` flight events.
fn read_frames(path: &Path, seq: u64, stats: &mut ReplayStats) -> Vec<WalRecord> {
    let obs = rasa_obs::global();
    let mut torn = |valid: usize, total: usize| {
        stats.torn_tails += 1;
        obs.inc("recovery.torn_tails");
        flight::emit(|| {
            TraceEvent::wal_torn_tail(seq, valid as u64, total.saturating_sub(valid) as u64)
        });
    };
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(_) => {
            torn(0, 0);
            return Vec::new();
        }
    };
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        torn(0, bytes.len());
        return Vec::new();
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    let mut consecutive_skips = 0u32;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            torn(pos, bytes.len());
            break;
        }
        let len_bytes: [u8; 4] = bytes[pos..pos + 4].try_into().unwrap_or_default();
        let crc_bytes: [u8; 4] = bytes[pos + 4..pos + 8].try_into().unwrap_or_default();
        let rec_len = u32::from_le_bytes(len_bytes);
        let want_crc = u32::from_le_bytes(crc_bytes);
        if rec_len == 0 || rec_len > MAX_RECORD_BYTES {
            // the length prefix itself is garbage — there is no way to
            // find the next frame boundary; the rest is torn
            torn(pos, bytes.len());
            break;
        }
        let end = pos + 8 + rec_len as usize;
        if end > bytes.len() {
            torn(pos, bytes.len());
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != want_crc {
            stats.records_skipped += 1;
            obs.inc("recovery.records_skipped");
            flight::emit(|| TraceEvent::wal_record_skipped(seq, pos as u64, "crc"));
            consecutive_skips += 1;
            if consecutive_skips >= MAX_CONSECUTIVE_SKIPS {
                torn(end, bytes.len());
                break;
            }
            pos = end;
            continue;
        }
        let decoded = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| serde_json::from_str::<WalRecord>(text).ok());
        match decoded {
            Some(record) => {
                records.push(record);
                consecutive_skips = 0;
            }
            None => {
                stats.records_skipped += 1;
                obs.inc("recovery.records_skipped");
                flight::emit(|| TraceEvent::wal_record_skipped(seq, pos as u64, "decode"));
                consecutive_skips += 1;
                if consecutive_skips >= MAX_CONSECUTIVE_SKIPS {
                    torn(end, bytes.len());
                    break;
                }
            }
        }
        pos = end;
    }
    records
}

/// Replay one tenant's journal into a [`RecoveredTenant`]. Never panics
/// on any byte content; damage either skips records (counted) or
/// quarantines the tenant.
pub fn recover_tenant(config: &WalConfig, tenant: &str) -> RecoveredTenant {
    let obs = rasa_obs::global();
    let dir = config.root.join(tenant);
    let mut stats = ReplayStats::default();
    let (segs, ckpts) = list_sequences(&dir);

    // newest checkpoint that parses wins; damaged ones are passed over
    let mut problem: Option<Problem> = None;
    let mut published: Option<JournaledPlacement> = None;
    let mut rounds = 0u64;
    let mut generation = 0u64;
    let mut watermark = 0u64;
    for seq in ckpts.iter().rev() {
        let mut ckpt_stats = ReplayStats::default();
        let records = read_frames(&ckpt_path(&dir, *seq), *seq, &mut ckpt_stats);
        match records.into_iter().next() {
            Some(record)
                if record.kind == WalRecordKind::Checkpoint && record.problem.is_some() =>
            {
                problem = record.problem;
                published = record.placement;
                rounds = record.rounds;
                generation = record.generation;
                watermark = record.watermark;
                break;
            }
            _ => {
                stats.checkpoints_skipped += 1;
                obs.inc("recovery.records_skipped");
            }
        }
    }

    let mut quarantine: Option<String> = None;
    for seq in segs.iter().filter(|s| **s > watermark) {
        stats.segments += 1;
        for record in read_frames(&seg_path(&dir, *seq), *seq, &mut stats) {
            match (record.kind, record.problem, record.delta, record.placement) {
                (WalRecordKind::Snapshot, Some(p), _, _) => {
                    problem = Some(p);
                    generation = record.generation;
                }
                (WalRecordKind::Delta, _, Some(delta), _) => {
                    let Some(base) = problem.as_ref() else {
                        quarantine =
                            Some("journaled delta precedes any snapshot".to_string());
                        break;
                    };
                    match apply_delta_to_problem(base, &delta) {
                        Ok(next) => {
                            // mirror the live apply_delta: re-admit and
                            // keep the repaired problem
                            let (repaired, _report) = ProblemValidator::new().admit(&next);
                            problem = Some(repaired.unwrap_or(next));
                            generation = record.generation;
                        }
                        Err(e) => {
                            quarantine =
                                Some(format!("journaled delta failed to re-apply: {e}"));
                            break;
                        }
                    }
                }
                (WalRecordKind::Placement, _, _, Some(jp)) => {
                    rounds = rounds.max(jp.round);
                    published = Some(jp);
                }
                _ => {
                    // a CRC-valid record with the wrong payload shape for
                    // its kind (or a checkpoint inside a segment) is
                    // corruption; skip it like a bad record
                    stats.records_skipped += 1;
                    obs.inc("recovery.records_skipped");
                    continue;
                }
            }
            stats.records_replayed += 1;
            obs.inc("recovery.records_replayed");
        }
        if quarantine.is_some() {
            break;
        }
    }

    let outcome = match (quarantine, problem) {
        (Some(reason), _) => RecoveryOutcome::Quarantined { reason },
        (None, Some(problem)) => RecoveryOutcome::Recovered(Box::new(RestoredState {
            problem,
            published: published.map(|jp| RestoredPlacement {
                placement: jp.placement,
                claimed_objective: jp.claimed_objective,
                normalized: jp.normalized,
                round: jp.round,
                generation: jp.generation,
            }),
            rounds,
            generation,
        })),
        (None, None) => {
            if stats.records_skipped + stats.torn_tails + stats.checkpoints_skipped > 0 {
                // records were lost and nothing usable remains — we cannot
                // tell "never had state" from "lost the snapshot"
                RecoveryOutcome::Quarantined {
                    reason: "no usable snapshot survived in the journal".to_string(),
                }
            } else {
                RecoveryOutcome::Empty
            }
        }
    };
    RecoveredTenant {
        tenant: tenant.to_string(),
        stats,
        outcome,
    }
}

/// Discover every tenant journal under `config.root` and replay each.
/// Subdirectory names that are not valid tenant names are ignored.
pub fn recover_all(config: &WalConfig) -> Vec<RecoveredTenant> {
    let mut tenants: Vec<String> = Vec::new();
    if let Ok(entries) = fs::read_dir(&config.root) {
        for entry in entries.flatten() {
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                tenants.push(name.to_string());
            }
        }
    }
    tenants.sort_unstable();
    tenants
        .iter()
        .map(|t| recover_tenant(config, t))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rasa_core::{EdgeUpdate, SnapshotDelta};
    use rasa_trace::{generate, tiny_cluster};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rasa_wal_test_{name}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn admitted_problem(seed: u64) -> Problem {
        let raw = generate(&tiny_cluster(seed));
        let (repaired, _) = ProblemValidator::new().admit(&raw);
        repaired.unwrap_or(raw)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard IEEE CRC-32 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert_eq!(SyncPolicy::parse("every:8").unwrap(), SyncPolicy::EveryN(8));
        assert!(SyncPolicy::parse("every:0").is_err());
        assert!(SyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn append_and_replay_round_trips() {
        let root = temp_root("roundtrip");
        let config = WalConfig::new(&root);
        let problem = admitted_problem(3);
        let mut journal = TenantJournal::open(&config, "acme").unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem.clone()))
            .unwrap();
        journal
            .append(&WalRecord::delta(
                2,
                SnapshotDelta {
                    edge_updates: vec![EdgeUpdate {
                        a: 0,
                        b: 1,
                        weight: 77.0,
                    }],
                    replica_updates: vec![],
                },
            ))
            .unwrap();

        let rec = recover_tenant(&config, "acme");
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("expected recovery, got {:?}", rec.outcome);
        };
        assert_eq!(state.generation, 2);
        assert_eq!(rec.stats.records_replayed, 2);
        assert_eq!(rec.stats.records_skipped, 0);
        assert_eq!(rec.stats.torn_tails, 0);
        let edge = state
            .problem
            .affinity_edges
            .iter()
            .find(|e| (e.a.0, e.b.0) == (0, 1) || (e.a.0, e.b.0) == (1, 0));
        assert!(edge.is_some_and(|e| (e.weight - 77.0).abs() < 1e-9));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_record() {
        let root = temp_root("torn");
        let config = WalConfig::new(&root);
        let problem = admitted_problem(4);
        let mut journal = TenantJournal::open(&config, "t");
        let journal = journal.as_mut().unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem))
            .unwrap();
        journal
            .append(&WalRecord::placement(JournaledPlacement {
                round: 1,
                generation: 1,
                claimed_objective: 10.0,
                normalized: 0.9,
                placement: Placement::default(),
            }))
            .unwrap();
        // tear the tail: chop 7 bytes off the last record
        let path = seg_path(&config.root.join("t"), journal.seg_seq);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let rec = recover_tenant(&config, "t");
        assert_eq!(rec.stats.torn_tails, 1);
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("snapshot before the tear must survive");
        };
        // the torn placement record is gone; the snapshot survived
        assert!(state.published.is_none());
        assert_eq!(state.generation, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bit_flip_skips_the_record_and_counts_it() {
        let root = temp_root("bitflip");
        let config = WalConfig::new(&root);
        let problem = admitted_problem(5);
        let mut journal = TenantJournal::open(&config, "t").unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem))
            .unwrap();
        let flip_at = fs::read(seg_path(&config.root.join("t"), journal.seg_seq))
            .unwrap()
            .len();
        journal
            .append(&WalRecord::placement(JournaledPlacement {
                round: 1,
                generation: 1,
                claimed_objective: 10.0,
                normalized: 0.9,
                placement: Placement::default(),
            }))
            .unwrap();
        journal
            .append(&WalRecord::delta(2, SnapshotDelta::default()))
            .unwrap();
        // flip one byte inside the placement record's payload
        let path = seg_path(&config.root.join("t"), journal.seg_seq);
        let mut bytes = fs::read(&path).unwrap();
        bytes[flip_at + 20] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let rec = recover_tenant(&config, "t");
        assert_eq!(rec.stats.records_skipped, 1, "{:?}", rec.stats);
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("state around the flip must survive");
        };
        assert!(state.published.is_none(), "flipped placement must not be restored");
        assert_eq!(state.generation, 2, "delta after the flip still replays");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_it() {
        let root = temp_root("ckpt");
        let config = WalConfig::new(&root);
        let problem = admitted_problem(6);
        let mut journal = TenantJournal::open(&config, "t").unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem.clone()))
            .unwrap();
        for g in 2..6 {
            journal
                .append(&WalRecord::delta(g, SnapshotDelta::default()))
                .unwrap();
        }
        journal
            .checkpoint(&CheckpointState {
                problem: &problem,
                published: Some(JournaledPlacement {
                    round: 3,
                    generation: 5,
                    claimed_objective: 12.5,
                    normalized: 0.95,
                    placement: Placement::default(),
                }),
                rounds: 3,
                generation: 5,
            })
            .unwrap();

        // superseded segment is gone, checkpoint + fresh segment remain
        let (segs, ckpts) = list_sequences(&config.root.join("t"));
        assert_eq!(ckpts.len(), 1);
        assert_eq!(segs.len(), 1);
        assert!(segs[0] > ckpts[0]);

        let rec = recover_tenant(&config, "t");
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("checkpoint must recover");
        };
        assert_eq!(state.generation, 5);
        assert_eq!(state.rounds, 3);
        assert!(state.published.is_some());
        // nothing replayed from segments — all state came from the checkpoint
        assert_eq!(rec.stats.records_replayed, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_segments() {
        let root = temp_root("badckpt");
        let config = WalConfig::new(&root);
        let problem = admitted_problem(7);
        let mut journal = TenantJournal::open(&config, "t").unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem.clone()))
            .unwrap();
        journal
            .checkpoint(&CheckpointState {
                problem: &problem,
                published: None,
                rounds: 0,
                generation: 1,
            })
            .unwrap();
        journal
            .append(&WalRecord::snapshot(2, problem.clone()))
            .unwrap();
        // truncate the checkpoint to half: replay must fall back to the
        // segments that survive (only those past the watermark — the
        // pre-checkpoint segment was GC'd, so generation 2 is what's left)
        let dir = config.root.join("t");
        let (_, ckpts) = list_sequences(&dir);
        let ckpt = ckpt_path(&dir, ckpts[0]);
        let bytes = fs::read(&ckpt).unwrap();
        fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();

        let rec = recover_tenant(&config, "t");
        assert!(rec.stats.checkpoints_skipped >= 1 || rec.stats.torn_tails >= 1);
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("segment past the watermark must still recover, got {:?}", rec.outcome);
        };
        assert_eq!(state.generation, 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_journal_is_empty_not_quarantined() {
        let root = temp_root("empty");
        let config = WalConfig::new(&root);
        let _journal = TenantJournal::open(&config, "t").unwrap();
        let rec = recover_tenant(&config, "t");
        assert!(matches!(rec.outcome, RecoveryOutcome::Empty), "{:?}", rec.outcome);

        // but an all-garbage journal quarantines
        let dir = config.root.join("t");
        let (segs, _) = list_sequences(&dir);
        fs::write(seg_path(&dir, segs[0]), b"RASAWAL1\xff\xff\xff\xff garbage").unwrap();
        let rec = recover_tenant(&config, "t");
        assert!(
            matches!(rec.outcome, RecoveryOutcome::Quarantined { .. }),
            "{:?}",
            rec.outcome
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn segment_rotation_keeps_every_record() {
        let root = temp_root("rotate");
        let mut config = WalConfig::new(&root);
        config.segment_max_bytes = 4096; // floor — rotate almost every append
        let problem = admitted_problem(8);
        let mut journal = TenantJournal::open(&config, "t").unwrap();
        journal
            .append(&WalRecord::snapshot(1, problem))
            .unwrap();
        for g in 2..8 {
            journal
                .append(&WalRecord::delta(g, SnapshotDelta::default()))
                .unwrap();
        }
        let (segs, _) = list_sequences(&config.root.join("t"));
        assert!(segs.len() > 1, "expected rotation, got {segs:?}");
        let rec = recover_tenant(&config, "t");
        let RecoveryOutcome::Recovered(state) = rec.outcome else {
            panic!("rotated journal must recover");
        };
        assert_eq!(state.generation, 7);
        assert_eq!(rec.stats.records_replayed, 7);
        let _ = fs::remove_dir_all(&root);
    }
}
