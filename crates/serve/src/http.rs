//! A deliberately tiny HTTP/1.1 layer on `std::net` — no external
//! dependencies, one request per connection (`Connection: close`).
//!
//! The parser is written for hostile inputs: header and body sizes are
//! capped, reads carry a socket timeout (so a slow-loris client costs one
//! bounded read, not a wedged thread), and every failure mode maps to a
//! typed [`HttpError`] the server turns into a specific status code
//! instead of a panic or a silent hang.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Parser limits and socket timeouts.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum body bytes (larger declared bodies are refused with 413).
    pub max_body_bytes: usize,
    /// Socket read timeout; a client quieter than this is dropped (408).
    pub read_timeout: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(2),
        }
    }
}

/// Why a request could not be read. Each variant maps to one response
/// status in the server (`Timeout` → 408, `BodyTooLarge` → 413,
/// `Malformed` → 400, `Disconnected`/`Io` → close without response).
#[derive(Debug)]
pub enum HttpError {
    /// The client went quiet longer than the read timeout (slow-loris).
    Timeout,
    /// Declared or actual body exceeded [`HttpLimits::max_body_bytes`],
    /// or the head exceeded [`HttpLimits::max_head_bytes`].
    BodyTooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The bytes on the wire are not a parseable HTTP/1.1 request.
    Malformed(&'static str),
    /// The client hung up before the request was complete.
    Disconnected,
    /// Any other socket error.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte limit")
            }
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::Disconnected => write!(f, "client disconnected mid-request"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// Path without the query string, e.g. `/snapshot`.
    pub path: String,
    /// Query parameters (`?tenant=acme&deadline_ms=500`).
    pub query: BTreeMap<String, String>,
    /// Request headers, names lowercased and values trimmed (later
    /// occurrences of a repeated header win).
    pub headers: BTreeMap<String, String>,
    /// Raw body (UTF-8; JSON endpoints parse it further).
    pub body: String,
}

impl Request {
    /// A query parameter by name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// A header by case-insensitive name (e.g. `X-Rasa-Request-Id`).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// Read and parse one request from `stream` under `limits`.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(limits.read_timeout))
        .map_err(HttpError::Io)?;

    // read until the blank line separating head from body
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::BodyTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::Malformed("empty head"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts.next().ok_or(HttpError::Malformed("missing target"))?;
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    let mut headers = BTreeMap::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
        headers.insert(
            name.trim().to_ascii_lowercase(),
            value.trim().to_string(),
        );
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    // body: whatever followed the head in the buffer, plus the rest
    let mut body_bytes = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => body_bytes.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    body_bytes.truncate(content_length);
    let body =
        String::from_utf8(body_bytes).map_err(|_| HttpError::Malformed("body is not UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), BTreeMap::new()),
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn parse_query(q: &str) -> BTreeMap<String, String> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// One response, written with `Connection: close` and a computed
/// `Content-Length`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the computed ones.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// Attach an extra header (e.g. `Retry-After`).
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serialize onto `stream`. Errors are returned, not panicked — a
    /// client that hung up mid-response is routine.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())
    }
}

/// Canonical reason phrase for the status codes this daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    fn round_trip(raw: &[u8], limits: HttpLimits) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // keep the socket open long enough for the reader to finish
            thread::sleep(Duration::from_millis(200));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, &limits);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_query_and_body() {
        let raw =
            b"POST /snapshot?tenant=acme&deadline_ms=250 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}x";
        let req = round_trip(raw, HttpLimits::default()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/snapshot");
        assert_eq!(req.param("tenant"), Some("acme"));
        assert_eq!(req.param("deadline_ms"), Some("250"));
        assert_eq!(req.body, "{\"a\": 1}x");
        assert_eq!(req.header("Host"), Some("x"));
    }

    #[test]
    fn headers_are_lowercased_and_values_trimmed() {
        let raw = b"GET /placement HTTP/1.1\r\nX-Rasa-Request-Id:  Req-7 \r\nHost: x\r\n\r\n";
        let req = round_trip(raw, HttpLimits::default()).unwrap();
        assert_eq!(req.header("x-rasa-request-id"), Some("Req-7"));
        assert_eq!(req.header("X-RASA-REQUEST-ID"), Some("Req-7"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn oversized_declared_body_is_refused() {
        let raw = b"POST /snapshot HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let limits = HttpLimits {
            max_body_bytes: 1024,
            ..HttpLimits::default()
        };
        assert!(matches!(
            round_trip(raw, limits),
            Err(HttpError::BodyTooLarge { limit: 1024 })
        ));
    }

    #[test]
    fn slow_loris_times_out() {
        let limits = HttpLimits {
            read_timeout: Duration::from_millis(50),
            ..HttpLimits::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HT").unwrap();
            thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, &limits);
        assert!(matches!(result, Err(HttpError::Timeout)));
        writer.join().unwrap();
    }

    #[test]
    fn mid_request_disconnect_is_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"POST /delta HTTP/1.1\r\nContent-Length: 100\r\n\r\nhalf")
                .unwrap();
            // drop: connection closes with 96 body bytes missing
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, &HttpLimits::default());
        assert!(matches!(result, Err(HttpError::Disconnected)));
        writer.join().unwrap();
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        let raw = b"NONSENSE\r\n\r\n";
        assert!(matches!(
            round_trip(raw, HttpLimits::default()),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(429, "{\"error\":\"backpressure\"}".to_string())
            .with_header("Retry-After", "3".to_string())
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let wire = reader.join().unwrap();
        assert!(wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(wire.contains("Retry-After: 3\r\n"));
        assert!(wire.contains("Content-Length: 24\r\n"));
        assert!(wire.ends_with("{\"error\":\"backpressure\"}"));
    }
}
