//! The daemon: accept loop, worker pool, per-tenant state, and the drain
//! coordinator.
//!
//! Request lifecycle (one `POST /snapshot` or `POST /delta`):
//!
//! 1. **Parse** — bounded read ([`crate::http`]), typed 400/408/413 on
//!    hostile input; JSON bodies report the 1-based line/column where
//!    parsing stopped, like `rasa_trace::persist::PersistError`.
//! 2. **Gate** — draining refuses with 503, the per-tenant circuit
//!    breaker may short-circuit to a stale-but-certified answer, and the
//!    bounded queue sheds overload with `429 + Retry-After`.
//! 3. **Solve** — a worker applies the mutation through the admission
//!    gate, re-solves warm via the session cache under the tenant's
//!    deadline budget, retrying transient failures with jittered backoff.
//! 4. **Certify & publish** — only placements passing
//!    `certify_placement` are published; an uncertified round leaves the
//!    previous placement in effect and the client is told so.
//!
//! Panics are isolated per connection and per solve round; a caught panic
//! is counted, reported to the breaker, and answered with the last
//! certified placement when one exists.

use crate::backoff::BackoffSchedule;
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
use crate::http::{read_request, HttpError, HttpLimits, Request, Response};
use crate::log;
use crate::queue::{BoundedQueue, QueueFull};
use crate::slo::{SloConfig, SloTracker};
use crate::wal::{
    self, CheckpointState, JournaledPlacement, RecoveryOutcome, TenantJournal, WalConfig,
    WalRecord,
};
use rasa_core::{AllocationSession, RasaConfig, SelectionSample, SessionError, SnapshotDelta};
use rasa_core::Deadline;
use rasa_model::{Placement, Problem};
use rasa_obs::flight;
use rasa_obs::RequestContext;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Per-tenant bounded queue capacity (beyond it: 429).
    pub queue_capacity: usize,
    /// Maximum simultaneous tenants (beyond it: 429 on new tenants).
    pub max_tenants: usize,
    /// HTTP parser limits and socket timeout.
    pub http: HttpLimits,
    /// Default per-round solve deadline budget.
    pub default_deadline: Duration,
    /// Cap for per-request `?deadline_ms=` overrides.
    pub max_deadline: Duration,
    /// How long a handler waits for its round's result before answering
    /// 504 (the round still completes and publishes).
    pub request_timeout: Duration,
    /// Retries after a transient solve failure (certification failure).
    pub max_retries: u32,
    /// Jittered-backoff base delay between retries.
    pub backoff_base: Duration,
    /// Jittered-backoff delay cap.
    pub backoff_cap: Duration,
    /// Per-tenant circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Seed for backoff jitter (per-tenant streams derive from it).
    pub seed: u64,
    /// Pipeline configuration used by every tenant session.
    pub rasa: RasaConfig,
    /// How long drain waits for in-flight rounds before black-boxing the
    /// still-queued remainder.
    pub drain_grace: Duration,
    /// Where to flush a final Prometheus snapshot on drain (optional).
    pub metrics_flush_path: Option<PathBuf>,
    /// Refit each tenant's algorithm selector from its accumulated online
    /// sample stream every N published rounds
    /// (`AllocationSession::retrain_selector`). `None` (the default)
    /// disables mid-session retraining. Retraining only changes future
    /// routing — every publish still passes the certification gate.
    pub retrain_every: Option<u64>,
    /// Per-tenant SLO objectives scored by the burn-rate tracker
    /// (`GET /tenants`, `slo.*` metrics).
    pub slo: SloConfig,
    /// Per-tenant write-ahead journaling ([`crate::wal`]). When set, every
    /// acked snapshot, delta, and certified placement is journaled before
    /// the client sees the 200, and [`Server::bind`] replays the journals
    /// through both trust gates to rebuild tenant state after a crash.
    /// `None` (the default) disables durability.
    pub wal: Option<WalConfig>,
    /// JSONL file persisting the online selector sample stream: loaded
    /// into [`RasaConfig::sample_log`] on bind (so retraining after a
    /// restart sees pre-crash samples), saved back on drain.
    pub sample_stream_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 4,
            max_tenants: 64,
            http: HttpLimits::default(),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(10),
            request_timeout: Duration::from_secs(30),
            max_retries: 2,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            breaker: BreakerConfig::default(),
            seed: 42,
            rasa: RasaConfig::default(),
            drain_grace: Duration::from_secs(5),
            metrics_flush_path: None,
            retrain_every: None,
            slo: SloConfig::default(),
            wal: None,
            sample_stream_path: None,
        }
    }
}

/// What graceful drain accomplished.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Wall-clock the drain took.
    pub drain_seconds: f64,
    /// Queued jobs answered `503` and black-boxed instead of solved.
    pub abandoned_jobs: u64,
    /// Rounds that completed after drain began (finished, not dropped).
    pub inflight_completed: u64,
    /// Flight-recorder black-box files written over the process lifetime.
    pub blackbox_dumps: u64,
}

enum JobKind {
    Snapshot(Box<Problem>),
    Delta(SnapshotDelta),
}

struct Job {
    kind: JobKind,
    deadline: Duration,
    probe: bool,
    reply: SyncSender<Response>,
    /// Request identity captured at ingress; the worker re-installs it so
    /// the solve's flight recording and log lines carry the same id.
    ctx: RequestContext,
}

/// Snapshot of the last published placement, readable without touching the
/// (potentially solving) engine lock.
#[derive(Clone)]
struct PublishedView {
    round: u64,
    generation: u64,
    objective: f64,
    normalized: f64,
    placement: Placement,
    /// Request id of the round that produced this placement.
    request_id: String,
}

struct Control {
    breaker: CircuitBreaker,
    backoff: BackoffSchedule,
}

struct TenantSlot {
    name: String,
    queue: BoundedQueue<Job>,
    engine: Mutex<AllocationSession>,
    control: Mutex<Control>,
    published: Mutex<Option<PublishedView>>,
    /// Latest accepted snapshot generation (mirrors the session's, but
    /// readable without the engine lock).
    latest_generation: AtomicU64,
    /// SLO burn-rate accounting over this tenant's allocation requests.
    slo: Mutex<SloTracker>,
    /// Request id of the last allocation request that reached this tenant.
    last_request_id: Mutex<String>,
    /// Verdict of the last solve round (`"ok"`, `"degraded"`,
    /// `"breaker_open"`, …; `"none"` before the first round).
    last_verdict: Mutex<String>,
    /// This tenant's open write-ahead journal (`None` when journaling is
    /// disabled, or after a journal write error disabled it).
    journal: Mutex<Option<TenantJournal>>,
    /// Set when recovery found this tenant's journal damaged beyond safe
    /// use: the reason. While set, allocation and placement requests
    /// answer 503 — quarantined state is never served. Cleared only by
    /// `DELETE /tenant` (which also removes the journal directory).
    quarantined: Mutex<Option<String>>,
}

/// Record the verdict of a tenant's most recent round (shown in
/// `GET /tenants`).
fn note_verdict(slot: &TenantSlot, verdict: &str) {
    *lock_or_recover(&slot.last_verdict) = verdict.to_string();
}

/// Build a tenant slot around `engine` — used both by ingest (fresh
/// session) and by crash recovery (restored session, whose published
/// placement and generation seed the read-side views).
fn new_slot(
    config: &ServeConfig,
    tenant: &str,
    engine: AllocationSession,
    journal: Option<TenantJournal>,
    quarantined: Option<String>,
) -> Arc<TenantSlot> {
    let seed = config.seed ^ fnv1a(tenant);
    let published = engine.published().map(|p| PublishedView {
        round: p.round,
        generation: p.generation,
        objective: p.objective,
        normalized: p.normalized,
        placement: p.placement.clone(),
        request_id: String::new(),
    });
    let latest_generation = engine.generation();
    Arc::new(TenantSlot {
        name: tenant.to_string(),
        queue: BoundedQueue::new(config.queue_capacity),
        engine: Mutex::new(engine),
        control: Mutex::new(Control {
            breaker: CircuitBreaker::new(config.breaker),
            backoff: BackoffSchedule::new(config.backoff_base, config.backoff_cap, seed),
        }),
        published: Mutex::new(published),
        latest_generation: AtomicU64::new(latest_generation),
        slo: Mutex::new(SloTracker::new(config.slo)),
        last_request_id: Mutex::new(String::new()),
        last_verdict: Mutex::new("none".to_string()),
        journal: Mutex::new(journal),
        quarantined: Mutex::new(quarantined),
    })
}

/// Open a tenant's journal, counting and logging (never propagating) a
/// failure: a tenant whose journal cannot open serves without durability
/// rather than not at all.
fn open_journal(config: &Option<WalConfig>, tenant: &str) -> Option<TenantJournal> {
    let walcfg = config.as_ref()?;
    match TenantJournal::open(walcfg, tenant) {
        Ok(journal) => Some(journal),
        Err(e) => {
            rasa_obs::global().inc("wal.open_errors");
            log::error(
                "wal",
                format!("journal for {tenant} failed to open; serving without durability: {e}"),
            );
            None
        }
    }
}

/// Append to the tenant's journal when one is open. A write error is
/// counted and disables journaling for the tenant (the daemon keeps
/// serving; durability is lost, loudly) — it never fails the round.
fn journal_append(slot: &TenantSlot, record: &WalRecord) {
    let mut journal = lock_or_recover(&slot.journal);
    if let Some(j) = journal.as_mut() {
        if let Err(e) = j.append(record) {
            rasa_obs::global().inc("wal.append_errors");
            log::error(
                "wal",
                format!(
                    "journal append for {} failed; disabling journaling: {e}",
                    slot.name
                ),
            );
            *journal = None;
        }
    }
}

/// Fold the session's state into a checkpoint when the journal is due for
/// one. Same error policy as [`journal_append`].
fn maybe_checkpoint(slot: &TenantSlot, session: &AllocationSession) {
    let mut journal = lock_or_recover(&slot.journal);
    let Some(j) = journal.as_mut() else { return };
    if !j.needs_checkpoint() {
        return;
    }
    let Some(problem) = session.problem() else {
        return;
    };
    let state = CheckpointState {
        problem,
        published: session.published().map(|p| JournaledPlacement {
            round: p.round,
            generation: p.generation,
            claimed_objective: p.objective,
            normalized: p.normalized,
            placement: p.placement.clone(),
        }),
        rounds: session.rounds(),
        generation: session.generation(),
    };
    if let Err(e) = j.checkpoint(&state) {
        rasa_obs::global().inc("wal.append_errors");
        log::error(
            "wal",
            format!(
                "journal compaction for {} failed; disabling journaling: {e}",
                slot.name
            ),
        );
        *journal = None;
    }
}

struct Shared {
    config: ServeConfig,
    tenants: Mutex<BTreeMap<String, Arc<TenantSlot>>>,
    work: Mutex<VecDeque<String>>,
    work_cv: Condvar,
    draining: AtomicBool,
    workers_stop: AtomicBool,
    active_rounds: AtomicU64,
    open_connections: AtomicU64,
    abandoned_jobs: AtomicU64,
    inflight_completed: AtomicU64,
}

/// Recover a mutex guard even if a (caught) panic poisoned it: the daemon
/// must keep serving other requests, and the guarded state is structurally
/// valid Rust data either way.
fn lock_or_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    fn enqueue_work(&self, tenant: &str) {
        lock_or_recover(&self.work).push_back(tenant.to_string());
        self.work_cv.notify_one();
    }

    fn tenant(&self, name: &str) -> Option<Arc<TenantSlot>> {
        lock_or_recover(&self.tenants).get(name).cloned()
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.work_cv.notify_all();
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// The daemon. Bind, then either [`Server::run`] on the current thread or
/// keep a [`ServerHandle`] and run on a spawned one; `run` returns the
/// [`DrainReport`] after a graceful drain.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Cloneable remote control for a running [`Server`]: initiate drain,
/// observe drain state.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful drain: stop accepting, finish or black-box in-flight
    /// rounds, flush the flight recorder and metrics. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// `true` once drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Bind the listener (non-blocking accept; the loop polls the drain
    /// flag between accepts).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // one labeled series per tenant, at most: tie metric-label
        // cardinality to the tenant cap (overflow folds into `other`)
        rasa_obs::global().set_label_cap(config.max_tenants);
        if let Some(path) = &config.sample_stream_path {
            reload_sample_stream(&config.rasa, path);
        }
        let tenants = recover_tenants(&config);
        let shared = Arc::new(Shared {
            config,
            tenants: Mutex::new(tenants),
            work: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            workers_stop: AtomicBool::new(false),
            active_rounds: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            abandoned_jobs: AtomicU64::new(0),
            inflight_completed: AtomicU64::new(0),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote-control handle.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until drain is initiated (via [`ServerHandle::shutdown`] or
    /// `POST /drain`), then drain gracefully and report.
    pub fn run(self) -> DrainReport {
        let shared = &self.shared;
        let mut workers = Vec::new();
        for i in 0..shared.config.workers.max(1) {
            let s = Arc::clone(shared);
            workers.push(
                thread::Builder::new()
                    .name(format!("rasa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawning a worker thread"),
            );
        }

        while !shared.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let s = Arc::clone(shared);
                    s.open_connections.fetch_add(1, Ordering::SeqCst);
                    let spawned = thread::Builder::new()
                        .name("rasa-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(&s, stream);
                            s.open_connections.fetch_sub(1, Ordering::SeqCst);
                        });
                    if spawned.is_err() {
                        shared.open_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(_) => thread::sleep(Duration::from_millis(20)),
            }
        }

        drain(shared, workers)
    }
}

/// Load the persisted selector sample stream into the (shared) sample
/// log, so a retrain after restart sees pre-crash samples. A missing file
/// is a fresh start; a damaged one is logged and skipped.
fn reload_sample_stream(rasa: &RasaConfig, path: &std::path::Path) {
    if !path.exists() {
        return;
    }
    match rasa_trace::load_jsonl::<SelectionSample>(path) {
        Ok(samples) => {
            let n = samples.len();
            rasa.sample_log.extend(samples);
            rasa_obs::global().add("recovery.samples_reloaded", n as u64);
            log::info(
                "recovery",
                format!("reloaded {n} selector samples from {}", path.display()),
            );
        }
        Err(e) => log::warn(
            "recovery",
            format!("sample stream {} unreadable, starting empty: {e}", path.display()),
        ),
    }
}

/// The startup recovery pass: replay every tenant journal under the WAL
/// root, push each rebuilt state back through **both trust gates**
/// (`AllocationSession::restore` re-admits the problem and re-certifies
/// the placement), and seed the tenant map. Journals too damaged to trust
/// produce quarantined slots that answer 503 until an operator removes
/// the tenant — recovery never panics the daemon and never publishes
/// uncertified state.
fn recover_tenants(config: &ServeConfig) -> BTreeMap<String, Arc<TenantSlot>> {
    let mut tenants = BTreeMap::new();
    let Some(walcfg) = &config.wal else {
        return tenants;
    };
    let obs = rasa_obs::global();
    let started = Instant::now();
    let mut scope = flight::begin_solve("serve.recovery", &[]);
    let mut quarantined_n = 0u64;
    for rec in wal::recover_all(walcfg) {
        if !valid_tenant(&rec.tenant) {
            continue;
        }
        let tenant = rec.tenant;
        let quarantine = |reason: String| {
            obs.inc("recovery.tenants_quarantined");
            flight::emit(|| flight::TraceEvent::recovery_quarantine(&tenant, &reason));
            log::error(
                "recovery",
                format!("tenant {tenant} quarantined: {reason}"),
            );
            new_slot(
                config,
                &tenant,
                AllocationSession::new(config.rasa.clone()),
                // leave the damaged journal untouched for forensics
                None,
                Some(reason),
            )
        };
        let slot = match rec.outcome {
            RecoveryOutcome::Empty => continue,
            RecoveryOutcome::Quarantined { reason } => {
                quarantined_n += 1;
                quarantine(reason)
            }
            RecoveryOutcome::Recovered(state) => {
                let restore = catch_unwind(AssertUnwindSafe(|| {
                    AllocationSession::restore(config.rasa.clone(), *state)
                }));
                match restore {
                    Ok(Ok(restored)) => {
                        obs.inc("recovery.tenants_recovered");
                        if restored.stale_placement_dropped {
                            obs.inc("recovery.placements_dropped");
                            log::warn(
                                "recovery",
                                format!(
                                    "tenant {tenant}: journaled placement predated the \
                                     final snapshot and failed re-certification; dropped"
                                ),
                            );
                        }
                        log::info(
                            "recovery",
                            format!(
                                "tenant {tenant} recovered through both gates \
                                 (generation {}, round {})",
                                restored.session.generation(),
                                restored.session.rounds(),
                            ),
                        );
                        // re-open the journal and immediately fold the
                        // recovered state into a checkpoint, so the next
                        // crash replays one compact file instead of the
                        // whole tail again
                        let journal = open_journal(&config.wal, &tenant).map(|mut j| {
                            let state = CheckpointState {
                                problem: restored
                                    .session
                                    .problem()
                                    .expect("restored session has a problem"),
                                published: restored.session.published().map(|p| {
                                    JournaledPlacement {
                                        round: p.round,
                                        generation: p.generation,
                                        claimed_objective: p.objective,
                                        normalized: p.normalized,
                                        placement: p.placement.clone(),
                                    }
                                }),
                                rounds: restored.session.rounds(),
                                generation: restored.session.generation(),
                            };
                            if let Err(e) = j.checkpoint(&state) {
                                log::warn(
                                    "recovery",
                                    format!("post-recovery checkpoint for {tenant} failed: {e}"),
                                );
                            }
                            j
                        });
                        new_slot(config, &tenant, restored.session, journal, None)
                    }
                    Ok(Err(e)) => {
                        quarantined_n += 1;
                        quarantine(format!("restored state failed the trust gates: {e}"))
                    }
                    Err(_) => {
                        quarantined_n += 1;
                        quarantine("restore panicked".to_string())
                    }
                }
            }
        };
        tenants.insert(slot.name.clone(), slot);
    }
    let seconds = started.elapsed().as_secs_f64();
    obs.record("recovery.seconds", seconds);
    scope.set_verdict(
        if quarantined_n > 0 { "quarantined" } else { "ok" },
        quarantined_n > 0,
    );
    drop(scope);
    if !tenants.is_empty() {
        log::info(
            "recovery",
            format!(
                "recovered {} tenant(s) in {seconds:.3}s ({quarantined_n} quarantined)",
                tenants.len()
            ),
        );
    }
    tenants
}

/// The drain coordinator: give in-flight work a grace window, then answer
/// and black-box whatever is still queued, stop the workers, and flush.
fn drain(shared: &Arc<Shared>, workers: Vec<thread::JoinHandle<()>>) -> DrainReport {
    let obs = rasa_obs::global();
    let started = Instant::now();
    log::info("drain", "graceful drain started");

    // Phase 1: let workers finish queued + in-flight rounds.
    while started.elapsed() < shared.config.drain_grace {
        let queued: usize = lock_or_recover(&shared.tenants)
            .values()
            .map(|t| t.queue.len())
            .sum();
        let busy = shared.active_rounds.load(Ordering::SeqCst) > 0
            || shared.open_connections.load(Ordering::SeqCst) > 0
            || queued > 0;
        if !busy {
            break;
        }
        shared.work_cv.notify_all();
        thread::sleep(Duration::from_millis(20));
    }

    // Phase 2: whatever is still queued gets an explicit 503 and a
    // black-box dump — never a silent drop.
    let tenants: Vec<Arc<TenantSlot>> = lock_or_recover(&shared.tenants).values().cloned().collect();
    for slot in &tenants {
        for job in slot.queue.drain() {
            if job.probe {
                lock_or_recover(&slot.control).breaker.abandon_probe();
            }
            // re-install the job's request identity so its black box and
            // log line are joinable to the 503 the client received
            let _ctx = flight::with_request_context(job.ctx.clone());
            let mut scope = flight::begin_solve(
                "serve.drain_abandon",
                &[("tenant", slot.name.clone())],
            );
            scope.set_verdict("drained", true);
            drop(scope);
            log::warn("drain", format!("abandoned queued job for {}", slot.name));
            obs.inc("serve.drained_jobs");
            shared.abandoned_jobs.fetch_add(1, Ordering::SeqCst);
            let _ = job.reply.try_send(
                Response::json(503, "{\"error\":\"draining\"}".to_string())
                    .with_header("Retry-After", "10".to_string()),
            );
        }
    }

    // Phase 3: stop and join the worker pool (a worker mid-round finishes
    // it first; rounds are deadline-bounded).
    shared.workers_stop.store(true, Ordering::SeqCst);
    shared.work_cv.notify_all();
    for w in workers {
        let _ = w.join();
    }

    // Phase 4: persist the selector sample stream and flush observability.
    if let Some(path) = &shared.config.sample_stream_path {
        let samples = shared.config.rasa.sample_log.snapshot();
        if !samples.is_empty() {
            match rasa_trace::save_jsonl(&samples, path) {
                Ok(()) => log::info(
                    "drain",
                    format!("persisted {} selector samples to {}", samples.len(), path.display()),
                ),
                Err(e) => log::error(
                    "drain",
                    format!("sample stream flush to {} failed: {e}", path.display()),
                ),
            }
        }
    }
    let drain_seconds = started.elapsed().as_secs_f64();
    obs.record("serve.drain_seconds", drain_seconds);
    if let Some(path) = &shared.config.metrics_flush_path {
        let snapshot = obs.snapshot();
        match rasa_obs::write_prometheus(&snapshot, rasa_obs::MetricsGlossary::builtin()) {
            Ok(text) => {
                if let Err(e) = std::fs::write(path, text) {
                    log::error(
                        "drain",
                        format!("metrics flush to {} failed: {e}", path.display()),
                    );
                }
            }
            Err(e) => log::error("drain", format!("metrics flush failed: {e}")),
        }
    }
    log::info("drain", format!("drain finished in {drain_seconds:.3}s"));

    DrainReport {
        drain_seconds,
        abandoned_jobs: shared.abandoned_jobs.load(Ordering::SeqCst),
        inflight_completed: shared.inflight_completed.load(Ordering::SeqCst),
        blackbox_dumps: flight::recorder().dumps_written(),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let name = {
            let mut work = lock_or_recover(&shared.work);
            loop {
                if let Some(n) = work.pop_front() {
                    break Some(n);
                }
                if shared.workers_stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(work, Duration::from_millis(100))
                    .unwrap_or_else(|poisoned| {
                        let g = poisoned.into_inner();
                        (g.0, g.1)
                    });
                work = guard;
            }
        };
        let Some(name) = name else { return };
        if let Some(slot) = shared.tenant(&name) {
            process_one(shared, &slot);
        }
    }
}

/// Pop and run one job for `slot`, with panic isolation around the round.
fn process_one(shared: &Arc<Shared>, slot: &Arc<TenantSlot>) {
    let Some(job) = slot.queue.pop() else { return };
    let obs = rasa_obs::global();
    obs.inc("serve.rounds");
    shared.active_rounds.fetch_add(1, Ordering::SeqCst);
    let started = Instant::now();
    let draining = shared.draining.load(Ordering::SeqCst);

    let Job {
        kind,
        deadline,
        probe,
        reply,
        ctx,
    } = job;
    // the worker thread adopts the request's identity for the round, so
    // flight recordings and log lines carry the ingress request id
    let _ctx_guard = flight::with_request_context(ctx);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_round(shared, slot, kind, deadline)
    }));
    let response = match outcome {
        Ok(response) => response,
        Err(_) => {
            // The pipeline has its own panic guards, so reaching this belt
            // means something outside them blew up. Count it, penalize the
            // breaker, serve stale if possible.
            obs.inc("serve.solve_panics");
            breaker_report(slot, false);
            note_verdict(slot, "solve_panicked");
            stale_or_unavailable(slot, "solve_panicked")
        }
    };
    // `probe` rounds already reported success/failure to the breaker in
    // run_round / above; nothing extra — the flag only matters when a probe
    // is abandoned before running (drain path calls abandon_probe).
    let _ = probe;
    obs.record_duration("serve.round_seconds", started.elapsed());
    let _ = reply.try_send(response);
    if draining {
        shared.inflight_completed.fetch_add(1, Ordering::SeqCst);
    }
    shared.active_rounds.fetch_sub(1, Ordering::SeqCst);
    if !slot.queue.is_empty() {
        shared.enqueue_work(&slot.name);
    }
}

/// Report a round result to the tenant's breaker, counting trips and
/// recoveries.
fn breaker_report(slot: &TenantSlot, success: bool) {
    let obs = rasa_obs::global();
    let mut control = lock_or_recover(&slot.control);
    let (trips, recoveries) = (control.breaker.trips(), control.breaker.recoveries());
    if success {
        control.breaker.on_success();
    } else {
        control.breaker.on_failure(Instant::now());
    }
    if control.breaker.trips() > trips {
        obs.inc("serve.breaker_trips");
    }
    if control.breaker.recoveries() > recoveries {
        obs.inc("serve.breaker_recoveries");
    }
}

/// Apply the job's mutation and solve-with-retries. Returns the response
/// to send; all state updates (publish view, breaker) happen here.
fn run_round(
    shared: &Arc<Shared>,
    slot: &Arc<TenantSlot>,
    kind: JobKind,
    deadline: Duration,
) -> Response {
    let obs = rasa_obs::global();
    let mut session = lock_or_recover(&slot.engine);

    let (admission, wal_record) = match kind {
        JobKind::Snapshot(problem) => {
            obs.inc("serve.snapshots");
            let report = session.apply_snapshot(&problem);
            // journal the POST-admission repaired problem, so replay
            // re-admits byte-identical state without re-repairing
            let admitted = session.problem().cloned().unwrap_or(*problem);
            (report, Some(WalRecord::snapshot(session.generation(), admitted)))
        }
        JobKind::Delta(delta) => {
            obs.inc("serve.deltas");
            match session.apply_delta(&delta) {
                Ok(report) => {
                    if let Ok(plan) = session.delta_plan() {
                        obs.add("serve.delta_dirty", plan.dirty as u64);
                        obs.add("serve.delta_unchanged", plan.unchanged as u64);
                    }
                    (report, Some(WalRecord::delta(session.generation(), delta)))
                }
                Err(e) => {
                    obs.inc("serve.delta_rejected");
                    return Response::json(
                        422,
                        format!("{{\"error\":\"delta_rejected\",\"detail\":\"{e}\"}}"),
                    );
                }
            }
        }
    };
    slot.latest_generation
        .store(session.generation(), Ordering::SeqCst);
    // journal the accepted mutation *before* solving: the 200 below
    // implies the state change is already durable (under fsync-always)
    if let Some(record) = wal_record {
        journal_append(slot, &record);
    }

    let mut attempt: u32 = 0;
    loop {
        let mut scope = flight::begin_solve(
            "serve.round",
            &[
                ("tenant", slot.name.clone()),
                ("attempt", attempt.to_string()),
            ],
        );
        match session.resolve(Deadline::after(deadline)) {
            Ok(round) => {
                let verdict = if round.degraded { "degraded" } else { "ok" };
                scope.set_verdict(verdict, round.degraded);
                drop(scope);
                note_verdict(slot, verdict);
                obs.inc("serve.rounds_published");
                if round.degraded {
                    obs.inc("serve.rounds_degraded");
                    log::warn(
                        "serve",
                        format!("degraded round {} published for {}", round.round, slot.name),
                    );
                }
                *lock_or_recover(&slot.published) = Some(PublishedView {
                    round: round.round,
                    generation: session.generation(),
                    objective: round.objective,
                    normalized: round.normalized,
                    placement: round.run.outcome.placement.clone(),
                    request_id: flight::current_request_context()
                        .map(|c| c.request_id)
                        .unwrap_or_default(),
                });
                // the placement passed Gate 2 — journal it, then compact
                // if the journal is due (checkpointing folds the session's
                // whole state, so it must see the post-publish view)
                journal_append(
                    slot,
                    &WalRecord::placement(JournaledPlacement {
                        round: round.round,
                        generation: session.generation(),
                        claimed_objective: round.objective,
                        normalized: round.normalized,
                        placement: round.run.outcome.placement.clone(),
                    }),
                );
                maybe_checkpoint(slot, &session);
                // A degraded round is still published (it certified), but
                // it counts as ladder exhaustion for the breaker.
                breaker_report(slot, !round.degraded);
                // Online-learning hook: every N published rounds, refit the
                // selector from the session's accumulated sample stream.
                // Happens after the publish, so a slow refit never sits
                // between solve and publish.
                if let Some(every) = shared.config.retrain_every {
                    if every > 0
                        && round.round % every == 0
                        && session.retrain_selector().is_some()
                    {
                        obs.inc("serve.retrains");
                    }
                }
                let (hits, misses) = round
                    .run
                    .cache
                    .as_ref()
                    .map(|c| (c.hits, c.misses))
                    .unwrap_or((0, 0));
                return Response::json(
                    200,
                    format!(
                        "{{\"tenant\":\"{}\",\"accepted\":true,\"certified\":true,\"stale\":false,\
                         \"round\":{},\"objective\":{:.6},\"normalized\":{:.6},\"degraded\":{},\
                         \"cache\":{{\"hits\":{hits},\"misses\":{misses}}},\
                         \"admission\":{{\"clean\":{},\"quarantined_services\":{},\"quarantined_machines\":{}}}}}",
                        slot.name,
                        round.round,
                        round.objective,
                        round.normalized,
                        round.degraded,
                        admission.is_clean(),
                        admission.quarantined_services.len(),
                        admission.quarantined_machines.len(),
                    ),
                );
            }
            Err(SessionError::Uncertified(failure)) => {
                scope.set_verdict("uncertified", true);
                drop(scope);
                obs.inc("serve.uncertified_rejected");
                if attempt < shared.config.max_retries
                    && !shared.draining.load(Ordering::SeqCst)
                {
                    obs.inc("serve.retries");
                    let delay = lock_or_recover(&slot.control).backoff.next_delay(attempt);
                    attempt += 1;
                    thread::sleep(delay);
                    continue;
                }
                breaker_report(slot, false);
                let _ = failure;
                note_verdict(slot, "uncertified_after_retries");
                return stale_or_unavailable(slot, "uncertified_after_retries");
            }
            Err(e) => {
                scope.set_verdict("rejected", true);
                drop(scope);
                note_verdict(slot, "rejected");
                return Response::json(
                    422,
                    format!("{{\"error\":\"rejected\",\"detail\":\"{e}\"}}"),
                );
            }
        }
    }
}

/// Degraded-mode answer: the last certified placement with `stale: true`,
/// or 503 when this tenant has never published.
fn stale_or_unavailable(slot: &TenantSlot, reason: &str) -> Response {
    let obs = rasa_obs::global();
    let published = lock_or_recover(&slot.published).clone();
    log::warn(
        "serve",
        format!("serving degraded answer for {}: {reason}", slot.name),
    );
    match published {
        Some(view) => {
            obs.inc("serve.stale_served");
            Response::json(
                200,
                format!(
                    "{{\"tenant\":\"{}\",\"accepted\":false,\"certified\":true,\"stale\":true,\
                     \"round\":{},\"objective\":{:.6},\"normalized\":{:.6},\"reason\":\"{reason}\"}}",
                    slot.name, view.round, view.objective, view.normalized,
                ),
            )
        }
        None => Response::json(
            503,
            format!("{{\"error\":\"{reason}\",\"stale\":true,\"no_placement\":true}}"),
        )
        .with_header("Retry-After", "5".to_string()),
    }
}

/// Per-connection entry point with panic isolation.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        handle_request(shared, &mut stream);
    }));
    if result.is_err() {
        rasa_obs::global().inc("serve.connection_panics");
        let _ = Response::json(500, "{\"error\":\"internal\"}".to_string()).write_to(&mut stream);
    }
}

fn handle_request(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let obs = rasa_obs::global();
    let started = Instant::now();
    // The listener is non-blocking and the accepted socket inherits that on
    // some platforms; the parser sets its own read timeout.
    let _ = stream.set_nonblocking(false);
    let request = match read_request(stream, &shared.config.http) {
        Ok(request) => request,
        Err(error) => {
            let status = match &error {
                HttpError::Timeout => {
                    obs.inc("serve.read_timeouts");
                    Some(408)
                }
                HttpError::BodyTooLarge { .. } => {
                    obs.inc("serve.payload_too_large");
                    Some(413)
                }
                HttpError::Malformed(_) => {
                    obs.inc("serve.bad_requests");
                    Some(400)
                }
                HttpError::Disconnected | HttpError::Io(_) => {
                    obs.inc("serve.disconnects");
                    None
                }
            };
            if let Some(status) = status {
                let _ = Response::json(status, format!("{{\"error\":\"{error}\"}}"))
                    .write_to(stream);
            }
            obs.record_duration("serve.request_seconds", started.elapsed());
            return;
        }
    };
    obs.inc("serve.requests");
    // Adopt the caller's X-Rasa-Request-Id (or mint one) as this thread's
    // ambient identity: every span, black box, and log line below joins
    // on it, and the response echoes it back.
    let request_id = request_identity(&request);
    let tenant_label = request
        .param("tenant")
        .filter(|t| valid_tenant(t))
        .unwrap_or("")
        .to_string();
    let _ctx = flight::with_request_context(RequestContext::new(
        request_id.clone(),
        tenant_label,
    ));
    let response = route(shared, &request)
        .with_header("X-Rasa-Request-Id", request_id);
    let status = response.status;
    let _ = response.write_to(stream);
    let elapsed = started.elapsed();
    obs.record_duration("serve.request_seconds", elapsed);
    finish_slo(shared, &request, status, elapsed);
}

/// The request id this request runs under: the caller's
/// `X-Rasa-Request-Id` when it is 1–48 chars of `[A-Za-z0-9_-]`, else a
/// daemon-minted `r<hex>` id.
fn request_identity(request: &Request) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    match request.header("x-rasa-request-id") {
        Some(id)
            if !id.is_empty()
                && id.len() <= 48
                && id
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') =>
        {
            id.to_string()
        }
        _ => format!("r{:06x}", SEQ.fetch_add(1, Ordering::Relaxed)),
    }
}

/// Score one finished allocation request against the tenant's SLO
/// objectives and tally the labeled `slo.*` / latency series.
fn finish_slo(shared: &Arc<Shared>, request: &Request, status: u16, elapsed: Duration) {
    if request.method != "POST" || !matches!(request.path.as_str(), "/snapshot" | "/delta") {
        return;
    }
    let Some(tenant) = request.param("tenant") else {
        return;
    };
    if !valid_tenant(tenant) {
        return;
    }
    let Some(slot) = shared.tenant(tenant) else {
        return;
    };
    let obs = rasa_obs::global();
    obs.record_duration_labeled("serve.request_seconds", tenant, elapsed);
    obs.inc_labeled("slo.events", tenant);
    let available = status == 200;
    let latency_ok = available && elapsed <= shared.config.slo.latency_target;
    if !available {
        obs.inc_labeled("slo.unavailable", tenant);
    }
    if !latency_ok {
        obs.inc_labeled("slo.latency_misses", tenant);
    }
    lock_or_recover(&slot.slo).record(status, elapsed);
}

fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz_response(shared),
        ("GET", "/metrics") => metrics_response(),
        ("GET", "/placement") => placement_response(shared, request),
        ("GET", "/tenants") => tenants_response(shared),
        ("GET", "/debug/log") => debug_log_response(request),
        ("POST", "/snapshot") => ingest(shared, request, true),
        ("POST", "/delta") => ingest(shared, request, false),
        ("DELETE", "/tenant") => remove_tenant(shared, request),
        ("POST", "/drain") => {
            shared.begin_drain();
            Response::json(202, "{\"draining\":true}".to_string())
        }
        (
            _,
            "/healthz" | "/metrics" | "/placement" | "/tenants" | "/debug/log" | "/snapshot"
            | "/delta" | "/tenant" | "/drain",
        ) => Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
        _ => Response::json(404, "{\"error\":\"not found\"}".to_string()),
    }
}

/// Liveness with honesty: `200 ok` only while nothing is degraded. Drain
/// in progress or any open per-tenant breaker reports `503 degraded` with
/// the reasons, so orchestrators stop routing to a daemon that is already
/// shedding load.
fn healthz_response(shared: &Arc<Shared>) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    let mut reasons: Vec<String> = Vec::new();
    if draining {
        reasons.push("\"draining\"".to_string());
    }
    let now = Instant::now();
    let tenants: Vec<Arc<TenantSlot>> =
        lock_or_recover(&shared.tenants).values().cloned().collect();
    for slot in &tenants {
        if matches!(
            lock_or_recover(&slot.control).breaker.state(now),
            BreakerState::Open
        ) {
            reasons.push(format!("\"breaker_open:{}\"", slot.name));
        }
        if lock_or_recover(&slot.quarantined).is_some() {
            reasons.push(format!("\"quarantined:{}\"", slot.name));
        }
    }
    if reasons.is_empty() {
        Response::json(200, "{\"status\":\"ok\",\"draining\":false}".to_string())
    } else {
        Response::json(
            503,
            format!(
                "{{\"status\":\"degraded\",\"draining\":{draining},\"reasons\":[{}]}}",
                reasons.join(",")
            ),
        )
    }
}

/// `GET /tenants`: one row per tenant — breaker state, queue depth, last
/// round verdict, last request id, and the 5m/1h SLO burn rates.
fn tenants_response(shared: &Arc<Shared>) -> Response {
    let tenants: Vec<Arc<TenantSlot>> =
        lock_or_recover(&shared.tenants).values().cloned().collect();
    let now = Instant::now();
    let mut rows = Vec::with_capacity(tenants.len());
    for slot in &tenants {
        let breaker = match lock_or_recover(&slot.control).breaker.state(now) {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        };
        let view = lock_or_recover(&slot.published).clone();
        let (published_round, stale) = match &view {
            Some(v) => (
                v.round.to_string(),
                v.generation < slot.latest_generation.load(Ordering::SeqCst),
            ),
            None => ("null".to_string(), false),
        };
        let last_request_id = lock_or_recover(&slot.last_request_id).clone();
        let last_verdict = lock_or_recover(&slot.last_verdict).clone();
        let quarantined = lock_or_recover(&slot.quarantined).is_some();
        let (short, long) = {
            let slo = lock_or_recover(&slot.slo);
            (slo.burn_short(), slo.burn_long())
        };
        rows.push(format!(
            "{{\"tenant\":\"{}\",\"breaker\":\"{breaker}\",\"queue_depth\":{},\
             \"last_request_id\":\"{last_request_id}\",\"last_verdict\":\"{last_verdict}\",\
             \"published_round\":{published_round},\"stale\":{stale},\
             \"quarantined\":{quarantined},\
             \"slo\":{{\"events_5m\":{},\"latency_burn_5m\":{:.4},\"availability_burn_5m\":{:.4},\
             \"events_1h\":{},\"latency_burn_1h\":{:.4},\"availability_burn_1h\":{:.4}}}}}",
            slot.name,
            slot.queue.len(),
            short.events,
            short.latency,
            short.availability,
            long.events,
            long.latency,
            long.availability,
        ));
    }
    Response::json(200, format!("{{\"tenants\":[{}]}}", rows.join(",")))
}

/// `GET /debug/log?tail=N`: the newest structured-log entries as JSON
/// (`N` defaults to 64, capped at 1024).
fn debug_log_response(request: &Request) -> Response {
    let n = request
        .param("tail")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64)
        .clamp(1, 1024);
    Response::json(200, log::event_log().tail_json(n))
}

fn metrics_response() -> Response {
    let snapshot = rasa_obs::global().snapshot();
    match rasa_obs::write_prometheus(&snapshot, rasa_obs::MetricsGlossary::builtin()) {
        Ok(text) => Response::text(200, text),
        Err(e) => Response::text(500, format!("metrics exposition failed: {e}\n")),
    }
}

fn tenant_param(request: &Request) -> Result<&str, Response> {
    match request.param("tenant") {
        Some(name) if valid_tenant(name) => Ok(name),
        Some(_) => {
            rasa_obs::global().inc("serve.bad_requests");
            Err(Response::json(
                400,
                "{\"error\":\"tenant must be 1-64 chars of [A-Za-z0-9_-]\"}".to_string(),
            ))
        }
        None => {
            rasa_obs::global().inc("serve.bad_requests");
            Err(Response::json(
                400,
                "{\"error\":\"missing tenant parameter\"}".to_string(),
            ))
        }
    }
}

fn placement_response(shared: &Arc<Shared>, request: &Request) -> Response {
    let tenant = match tenant_param(request) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Some(slot) = shared.tenant(tenant) else {
        return Response::json(404, "{\"error\":\"unknown tenant\"}".to_string());
    };
    if let Some(reason) = lock_or_recover(&slot.quarantined).clone() {
        rasa_obs::global().inc("serve.rejected_quarantined");
        return Response::json(
            503,
            format!("{{\"error\":\"quarantined\",\"detail\":\"{reason}\"}}"),
        )
        .with_header("Retry-After", "30".to_string());
    }
    let view = lock_or_recover(&slot.published).clone();
    let Some(view) = view else {
        return Response::json(404, "{\"error\":\"no placement published yet\"}".to_string());
    };
    let stale = view.generation < slot.latest_generation.load(Ordering::SeqCst);
    let breaker = match lock_or_recover(&slot.control).breaker.state(Instant::now()) {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    };
    let placement_json = match serde_json::to_string(&view.placement) {
        Ok(j) => j,
        Err(_) => return Response::json(500, "{\"error\":\"serialize\"}".to_string()),
    };
    Response::json(
        200,
        format!(
            "{{\"tenant\":\"{tenant}\",\"round\":{},\"generation\":{},\"stale\":{stale},\
             \"breaker\":\"{breaker}\",\"request_id\":\"{}\",\"objective\":{:.6},\
             \"normalized\":{:.6},\"placement\":{placement_json}}}",
            view.round, view.generation, view.request_id, view.objective, view.normalized,
        ),
    )
}

fn remove_tenant(shared: &Arc<Shared>, request: &Request) -> Response {
    let tenant = match tenant_param(request) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let removed = lock_or_recover(&shared.tenants).remove(tenant);
    match removed {
        Some(slot) => {
            rasa_obs::global().inc("serve.tenants_removed");
            for job in slot.queue.drain() {
                let _ = job.reply.try_send(Response::json(
                    503,
                    "{\"error\":\"tenant removed\"}".to_string(),
                ));
            }
            // drop the open journal handle before deleting its directory;
            // this is also how an operator clears a quarantined journal
            *lock_or_recover(&slot.journal) = None;
            if let Some(walcfg) = &shared.config.wal {
                if let Err(e) = wal::remove_tenant_journal(&walcfg.root, tenant) {
                    log::warn(
                        "wal",
                        format!("journal removal for {tenant} failed: {e}"),
                    );
                }
            }
            Response::json(200, format!("{{\"tenant\":\"{tenant}\",\"removed\":true}}"))
        }
        None => Response::json(404, "{\"error\":\"unknown tenant\"}".to_string()),
    }
}

/// Body-parse failures answer 400 with the same line/column reporting
/// `rasa_trace::persist::PersistError` gives for on-disk artifacts.
fn bad_body(error: &serde_json::Error) -> Response {
    rasa_obs::global().inc("serve.bad_requests");
    let (line, column) = (error.line(), error.column());
    let position = match (line, column) {
        (Some(l), Some(c)) => format!("\"line\":{l},\"column\":{c},"),
        _ => String::new(),
    };
    let detail: String = error
        .to_string()
        .chars()
        .map(|c| if c == '"' { '\'' } else { c })
        .collect();
    Response::json(
        400,
        format!("{{\"error\":\"malformed json\",{position}\"detail\":\"{detail}\"}}"),
    )
}

fn ingest(shared: &Arc<Shared>, request: &Request, is_snapshot: bool) -> Response {
    let obs = rasa_obs::global();
    if shared.draining.load(Ordering::SeqCst) {
        obs.inc("serve.rejected_draining");
        return Response::json(503, "{\"error\":\"draining\"}".to_string())
            .with_header("Retry-After", "10".to_string());
    }
    let tenant = match tenant_param(request) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    obs.inc_labeled("serve.requests", tenant);
    let kind = if is_snapshot {
        match serde_json::from_str::<Problem>(&request.body) {
            Ok(problem) => JobKind::Snapshot(Box::new(problem)),
            Err(e) => return bad_body(&e),
        }
    } else {
        match serde_json::from_str::<SnapshotDelta>(&request.body) {
            Ok(delta) => JobKind::Delta(delta),
            Err(e) => return bad_body(&e),
        }
    };
    let deadline = match request.param("deadline_ms") {
        None => shared.config.default_deadline,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms).min(shared.config.max_deadline),
            _ => {
                obs.inc("serve.bad_requests");
                return Response::json(
                    400,
                    "{\"error\":\"deadline_ms must be a positive integer\"}".to_string(),
                );
            }
        },
    };

    let slot = {
        let mut tenants = lock_or_recover(&shared.tenants);
        match tenants.get(tenant) {
            Some(slot) => Arc::clone(slot),
            None => {
                if tenants.len() >= shared.config.max_tenants {
                    obs.inc("serve.rejected_tenant_capacity");
                    return Response::json(
                        429,
                        "{\"error\":\"tenant capacity reached\"}".to_string(),
                    )
                    .with_header("Retry-After", "30".to_string());
                }
                obs.inc("serve.tenants_created");
                let slot = new_slot(
                    &shared.config,
                    tenant,
                    AllocationSession::new(shared.config.rasa.clone()),
                    open_journal(&shared.config.wal, tenant),
                    None,
                );
                tenants.insert(tenant.to_string(), Arc::clone(&slot));
                slot
            }
        }
    };
    // A quarantined tenant's journal is damaged: serving (or mutating)
    // it would publish state the trust gates never re-validated. 503
    // until an operator removes the tenant.
    if let Some(reason) = lock_or_recover(&slot.quarantined).clone() {
        obs.inc("serve.rejected_quarantined");
        return Response::json(
            503,
            format!("{{\"error\":\"quarantined\",\"detail\":\"{reason}\"}}"),
        )
        .with_header("Retry-After", "30".to_string());
    }
    let ctx = flight::current_request_context().unwrap_or_default();
    *lock_or_recover(&slot.last_request_id) = ctx.request_id.clone();

    // Circuit breaker gate. While open, the mutation is NOT applied — the
    // client gets the last certified placement (stale) plus a Retry-After,
    // and should re-send after the cooldown.
    let decision = lock_or_recover(&slot.control).breaker.admit(Instant::now());
    let probe = match decision {
        BreakerDecision::Solve => false,
        BreakerDecision::Probe => true,
        BreakerDecision::ServeStale => {
            note_verdict(&slot, "breaker_open");
            return stale_or_unavailable(&slot, "breaker_open")
                .with_header("Retry-After", "5".to_string());
        }
    };

    let (tx, rx) = sync_channel(1);
    let job = Job {
        kind,
        deadline,
        probe,
        reply: tx,
        ctx,
    };
    match slot.queue.try_push(job) {
        Ok(depth) => obs.record("serve.queue_depth", depth as f64),
        Err(QueueFull(job)) => {
            if job.probe {
                lock_or_recover(&slot.control).breaker.abandon_probe();
            }
            obs.inc("serve.rejected_queue_full");
            let retry_after = shared.config.default_deadline.as_secs().max(1);
            return Response::json(
                429,
                format!(
                    "{{\"error\":\"queue full\",\"tenant\":\"{tenant}\",\"capacity\":{}}}",
                    slot.queue.capacity()
                ),
            )
            .with_header("Retry-After", retry_after.to_string());
        }
    }
    shared.enqueue_work(tenant);

    match rx.recv_timeout(shared.config.request_timeout) {
        Ok(response) => response,
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            obs.inc("serve.request_timeouts");
            log::warn(
                "serve",
                format!("request timed out awaiting round for {tenant}"),
            );
            Response::json(
                504,
                "{\"error\":\"round still running; poll /placement\"}".to_string(),
            )
        }
    }
}
