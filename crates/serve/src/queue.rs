//! Per-tenant bounded request queue: the backpressure primitive.
//!
//! The daemon never buffers without bound. Each tenant gets one
//! [`BoundedQueue`] with a fixed capacity; when it is full, `try_push`
//! hands the job back and the HTTP layer answers `429 Too Many Requests`
//! with a `Retry-After` hint instead of growing memory. Workers drain with
//! non-blocking [`BoundedQueue::pop`]; wake-ups are coordinated by the
//! server's scheduler, not the queue itself, so the queue stays a small,
//! independently testable primitive.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A job refused because the queue was at capacity. Carries the job back
/// to the caller so nothing is silently dropped.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

/// Fixed-capacity, thread-safe FIFO queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    items: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1` is
    /// enforced: a zero-capacity queue would reject everything).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            items: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, returning the depth *after* the push, or hand the
    /// item back if the queue is full.
    pub fn try_push(&self, item: T) -> Result<usize, QueueFull<T>> {
        let mut items = self.lock();
        if items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        items.push_back(item);
        Ok(items.len())
    }

    /// Dequeue the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Remove and return everything queued (used at drain time, so every
    /// pending job gets an explicit response instead of vanishing).
    pub fn drain(&self) -> Vec<T> {
        self.lock().drain(..).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A poisoned queue mutex would mean a panic *inside* push/pop on a
        // VecDeque — not a state we can reach; recover the guard regardless
        // so one poisoned tenant cannot wedge the daemon.
        match self.items.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fill_reject_drain_cycle() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap(), 3);
        // full: backpressure, and the job comes back intact
        let QueueFull(returned) = q.try_push(4).unwrap_err();
        assert_eq!(returned, 4);
        assert_eq!(q.len(), 3);
        // drain one → capacity frees up
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4).unwrap(), 3);
        // FIFO order end to end
        assert_eq!(q.drain(), vec![2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(()).unwrap();
        assert!(q.try_push(()).is_err());
    }

    #[test]
    fn concurrent_pushers_never_exceed_capacity() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0usize;
                for i in 0..100 {
                    match q.try_push(t * 1000 + i) {
                        Ok(depth) => {
                            assert!(depth <= q.capacity());
                            accepted += 1;
                        }
                        Err(QueueFull(_)) => {
                            q.pop();
                        }
                    }
                }
                accepted
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert!(q.len() <= q.capacity());
    }
}
