//! Restart-recovery tests over real sockets: a drained daemon re-bound on
//! the same write-ahead journal root must republish the byte-identical
//! certified placement; a damaged journal must quarantine the tenant (503)
//! without taking the daemon down; and the persisted selector sample
//! stream must survive a restart so retraining sees pre-crash samples.

#![allow(clippy::unwrap_used)]

use rasa_serve::{ServeConfig, Server, ServerHandle, TenantJournal, WalConfig, WalRecord};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn spec(services: usize, seed: u64) -> ClusterSpec {
    let mut s = tiny_cluster(seed);
    s.services = services;
    s.target_containers = services as u64 * 4;
    s.machines = (services / 3).max(4);
    s
}

fn boot(
    config: ServeConfig,
) -> (SocketAddr, ServerHandle, thread::JoinHandle<rasa_serve::DrainReport>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rasa_recovery_test_{name}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(root: PathBuf) -> ServeConfig {
    ServeConfig {
        wal: Some(WalConfig::new(root)),
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// Round + placement JSON out of a `/placement` body — the identity key
/// across a restart (request-scoped fields excluded).
fn placement_key(body: &str) -> (u64, String) {
    let round = body
        .split("\"round\":")
        .nth(1)
        .unwrap()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap();
    let placement = body.split("\"placement\":").nth(1).unwrap();
    (round, placement.trim_end_matches('}').to_string())
}

#[test]
fn restart_republishes_the_byte_identical_certified_placement() {
    let root = scratch("restart");
    let (addr, handle, join) = boot(wal_config(root.clone()));

    let problem = generate(&spec(7, 3));
    let body = serde_json::to_string(&problem).unwrap();
    assert_eq!(http(addr, "POST", "/snapshot?tenant=acme", &body).status, 200);
    for step in 0..3 {
        let delta = format!(
            "{{\"edge_updates\":[{{\"a\":0,\"b\":{},\"weight\":{}.5}}],\"replica_updates\":[]}}",
            step + 1,
            20 + step
        );
        assert_eq!(http(addr, "POST", "/delta?tenant=acme", &delta).status, 200);
    }
    let before = http(addr, "GET", "/placement?tenant=acme", "");
    assert_eq!(before.status, 200);
    let key_before = placement_key(&before.body);

    handle.shutdown();
    let _ = join.join().unwrap();

    // same journal root, fresh process state: recovery replays the journal
    // through both trust gates and republishes
    let (addr2, handle2, join2) = boot(wal_config(root));
    let after = http(addr2, "GET", "/placement?tenant=acme", "");
    assert_eq!(after.status, 200, "recovered tenant must serve: {}", after.body);
    let key_after = placement_key(&after.body);
    assert_eq!(
        key_before, key_after,
        "recovered placement must be byte-identical to the last certified one"
    );
    // the recovered tenant is live, not quarantined: new rounds still work
    let delta = "{\"edge_updates\":[{\"a\":1,\"b\":2,\"weight\":33.0}],\"replica_updates\":[]}";
    assert_eq!(http(addr2, "POST", "/delta?tenant=acme", delta).status, 200);
    handle2.shutdown();
    let _ = join2.join().unwrap();
}

#[test]
fn damaged_journal_quarantines_the_tenant_but_the_daemon_serves() {
    let root = scratch("quarantine");
    // hand-craft an unusable journal: a delta with no snapshot before it
    // (valid frames, invalid history — recovery must refuse to guess)
    {
        let mut journal = TenantJournal::open(&WalConfig::new(root.clone()), "ghost").unwrap();
        let delta = rasa_core::SnapshotDelta {
            edge_updates: vec![rasa_core::EdgeUpdate {
                a: 0,
                b: 1,
                weight: 10.0,
            }],
            replica_updates: vec![],
        };
        journal.append(&WalRecord::delta(1, delta)).unwrap();
    }

    let (addr, handle, join) = boot(wal_config(root));

    // the poisoned tenant answers 503 + Retry-After, never a panic
    let problem = generate(&spec(6, 4));
    let body = serde_json::to_string(&problem).unwrap();
    let reply = http(addr, "POST", "/snapshot?tenant=ghost", &body);
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert!(reply.body.contains("quarantined"), "{}", reply.body);
    assert_eq!(reply.headers.get("retry-after").map(String::as_str), Some("30"));
    let view = http(addr, "GET", "/placement?tenant=ghost", "");
    assert_eq!(view.status, 503);

    // health is degraded and names the quarantined tenant…
    let health = http(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 503);
    assert!(health.body.contains("quarantined:ghost"), "{}", health.body);
    assert!(
        http(addr, "GET", "/tenants", "").body.contains("\"quarantined\":true"),
        "tenants listing must flag the quarantine"
    );

    // …but the daemon is up and other tenants are unaffected
    assert_eq!(http(addr, "POST", "/snapshot?tenant=fine", &body).status, 200);

    // the operator escape hatch: DELETE discards the tenant and its
    // journal; re-admitting it from scratch then works
    assert_eq!(http(addr, "DELETE", "/tenant?tenant=ghost", "").status, 200);
    assert_eq!(http(addr, "POST", "/snapshot?tenant=ghost", &body).status, 200);
    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);

    handle.shutdown();
    let _ = join.join().unwrap();
}

#[test]
fn retrain_after_restart_sees_precrash_samples() {
    let root = scratch("samples");
    let stream = root.join("samples.jsonl");
    let mut config = wal_config(root.clone());
    config.sample_stream_path = Some(stream.clone());

    // first life: bank selector samples, then drain (which persists them)
    let log_before = config.rasa.sample_log.clone();
    let (addr, handle, join) = boot(config);
    let problem = generate(&spec(7, 5));
    let body = serde_json::to_string(&problem).unwrap();
    assert_eq!(http(addr, "POST", "/snapshot?tenant=acme", &body).status, 200);
    assert!(
        !log_before.is_empty(),
        "a fresh solve must bank at least one selector sample"
    );
    // top the shared stream up past the retrain floor, as a long first
    // life's solve traffic would (delta rounds mostly replay the cache,
    // which deliberately records nothing)
    let features = rasa_core::portfolio_features(&problem);
    while log_before.len() < rasa_core::MIN_RETRAIN_SAMPLES + 1 {
        for &alg in &rasa_core::PoolAlgorithm::ALL {
            log_before.record(rasa_core::SelectionSample {
                features: features.clone(),
                choice: alg,
                quality: match alg {
                    rasa_core::PoolAlgorithm::Mip => 0.9,
                    rasa_core::PoolAlgorithm::Cg => 0.8,
                    rasa_core::PoolAlgorithm::Pop => 0.5,
                    rasa_core::PoolAlgorithm::Greedy => 0.2,
                },
                latency_secs: 0.05,
                degraded: false,
            });
        }
    }
    let banked = log_before.len();
    handle.shutdown();
    let _ = join.join().unwrap();
    assert!(stream.exists(), "drain must persist the sample stream");

    // second life: a *fresh* config (empty in-memory log) reloads the
    // persisted stream on bind, so retraining starts from pre-crash data
    let mut config2 = wal_config(root);
    config2.sample_stream_path = Some(stream);
    config2.retrain_every = Some(1);
    let log_after = config2.rasa.sample_log.clone();
    assert!(log_after.is_empty());
    let (addr2, handle2, join2) = boot(config2);
    assert!(
        log_after.len() >= banked,
        "restart must reload the {banked} pre-crash samples, found {}",
        log_after.len()
    );

    // the reloaded stream is already past the retrain floor, so with
    // retrain_every=1 the very next publish round refits the selector
    let retrains_before = rasa_obs::global().counter("serve.retrains").get();
    for step in 0..2 {
        let delta = format!(
            "{{\"edge_updates\":[{{\"a\":1,\"b\":{},\"weight\":{}.75}}],\"replica_updates\":[]}}",
            2 + step,
            10 + step
        );
        assert_eq!(http(addr2, "POST", "/delta?tenant=acme", &delta).status, 200);
    }
    assert!(
        rasa_obs::global().counter("serve.retrains").get() > retrains_before,
        "retraining after restart should have fired on the reloaded stream"
    );
    handle2.shutdown();
    let _ = join2.join().unwrap();
}
