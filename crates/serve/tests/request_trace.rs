//! Acceptance: one request id joins every observability surface.
//!
//! A caller-supplied `X-Rasa-Request-Id` driven through a chaos-injected
//! failing round must be findable in the HTTP response header, the
//! black-box dump (filename and JSON header), the structured log tail
//! (`GET /debug/log`), and the tenant roster (`GET /tenants`); a healthy
//! round's id must come back from `GET /placement`. This is the joining
//! property the whole tracing layer exists for — runs as its own test
//! binary because it configures the process-global flight recorder.

#![allow(clippy::unwrap_used)]

use rasa_obs::flight::{recorder, FlightConfig, FlightRecording};
use rasa_serve::{ServeConfig, Server};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

/// One HTTP/1.1 exchange, optionally carrying `X-Rasa-Request-Id`.
fn request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
    request_id: Option<&str>,
) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let id_header = match request_id {
        Some(id) => format!("X-Rasa-Request-Id: {id}\r\n"),
        None => String::new(),
    };
    let raw_request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\n{id_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw_request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn spec(services: usize, seed: u64) -> ClusterSpec {
    let mut s = tiny_cluster(seed);
    s.services = services;
    s.target_containers = services as u64 * 4;
    s.machines = (services / 3).max(4);
    s
}

#[test]
fn request_id_joins_response_blackbox_log_and_tenants() {
    // black boxes for this process land in a private temp directory
    let dump_dir = std::env::temp_dir().join(format!("rasa_request_trace_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    recorder().configure(FlightConfig {
        dump_dir: Some(dump_dir.clone()),
        max_dumps: 64,
        ..FlightConfig::default()
    });

    let server = Server::bind(ServeConfig {
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    // healthy round under a caller-supplied id: echoed on the response and
    // pinned to the published placement
    let body = serde_json::to_string(&generate(&spec(40, 13))).unwrap();
    let ok = request(addr, "POST", "/snapshot?tenant=acme", &body, Some("trace-ok-1"));
    assert_eq!(ok.status, 200, "body: {}", ok.body);
    assert_eq!(
        ok.headers.get("x-rasa-request-id").map(String::as_str),
        Some("trace-ok-1")
    );
    let placement = request(addr, "GET", "/placement?tenant=acme", "", None);
    assert_eq!(placement.status, 200);
    assert!(
        placement.body.contains("\"request_id\":\"trace-ok-1\""),
        "placement must name the round that produced it: {}",
        placement.body
    );

    // an invalid caller id is replaced by a daemon-minted one
    let hostile = request(addr, "GET", "/healthz", "", Some("not a valid id!!"));
    let minted = hostile
        .headers
        .get("x-rasa-request-id")
        .expect("every response carries an id");
    assert_ne!(minted, "not a valid id!!");
    assert!(minted.starts_with('r'), "minted ids look like r00002a: {minted}");

    // chaos-injected failing round: a 1ms deadline over 40 services
    // exhausts the fallback ladder — certified but degraded, black-boxed
    let delta = "{\"edge_updates\":[{\"a\":0,\"b\":1,\"weight\":9.0}],\"replica_updates\":[]}";
    let failing = request(
        addr,
        "POST",
        "/delta?tenant=acme&deadline_ms=1",
        delta,
        Some("trace-fail-7"),
    );
    assert_eq!(failing.status, 200, "body: {}", failing.body);
    assert!(
        failing.body.contains("\"degraded\":true"),
        "1ms over 40 services must degrade: {}",
        failing.body
    );
    assert_eq!(
        failing.headers.get("x-rasa-request-id").map(String::as_str),
        Some("trace-fail-7")
    );

    // the same id names the black-box dump file and sits in its header
    let dump = std::fs::read_dir(&dump_dir)
        .expect("dump dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("trace_fail_7"))
        })
        .expect("a dump named after the failing request");
    let dump_name = dump.file_name().unwrap().to_str().unwrap().to_string();
    assert!(dump_name.contains("acme"), "filename carries the tenant: {dump_name}");
    let text = std::fs::read_to_string(&dump).unwrap();
    let rec: FlightRecording = serde_json::from_str(&text).expect("dump parses as schema v2");
    assert_eq!(rec.request_id, "trace-fail-7");
    assert_eq!(rec.tenant, "acme");

    // the same id appears in the structured log tail...
    let log_tail = request(addr, "GET", "/debug/log?tail=256", "", None);
    assert_eq!(log_tail.status, 200);
    assert!(
        log_tail.body.contains("trace-fail-7"),
        "the degraded-publish warning carries the request id: {}",
        log_tail.body
    );

    // ...and in the tenant roster, alongside the round's verdict
    let tenants = request(addr, "GET", "/tenants", "", None);
    assert_eq!(tenants.status, 200);
    assert!(tenants.body.contains("\"tenant\":\"acme\""), "{}", tenants.body);
    assert!(
        tenants.body.contains("\"last_request_id\":\"trace-fail-7\""),
        "{}",
        tenants.body
    );
    assert!(
        tenants.body.contains("\"last_verdict\":\"degraded\""),
        "{}",
        tenants.body
    );
    // the failing round burned SLO latency budget (1ms deadline, 1s target:
    // available but possibly slow) — at minimum the events are counted
    assert!(tenants.body.contains("\"events_5m\":"), "{}", tenants.body);

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dump_dir);
}
