//! Kill-9 crash campaign against the real `rasa-serve` binary (the one
//! this package builds), one full cycle through the crash modes: SIGKILL
//! at quiesce, abort mid-append, abort mid-compaction, and kill followed
//! by torn-tail / bit-flip / truncated-segment journal damage.
//!
//! The full-size seeded campaign (≥50 crash points) runs in CI via
//! `chaos crash`; this test keeps one representative cycle in the
//! ordinary test suite so a recovery regression fails `cargo test`, not
//! just the nightly chaos job.

#![allow(clippy::unwrap_used)]

use rasa_sim::crash::{run_crash_campaign, CrashConfig};

#[test]
fn one_full_crash_mode_cycle_recovers_cleanly() {
    let work_dir = std::env::temp_dir().join(format!(
        "rasa_crash_chaos_test_{}",
        std::process::id()
    ));
    let config = CrashConfig {
        seed: 0xC4A5,
        crash_points: 6, // one of each mode
        serve_bin: env!("CARGO_BIN_EXE_rasa-serve").into(),
        work_dir: work_dir.clone(),
    };
    let report = run_crash_campaign(&config);

    let mut problems: Vec<String> = report.violations.clone();
    for r in &report.rounds {
        problems.extend(r.violations.iter().cloned());
    }
    assert!(
        report.is_clean(),
        "crash campaign violated recovery invariants:\n{}",
        problems.join("\n")
    );
    assert_eq!(report.panics, 0);
    assert!(
        report.identical_recoveries >= 1,
        "at least the quiesced-kill round must recover byte-identical state"
    );
    assert!(report.max_recovery_seconds <= rasa_sim::crash::RECOVERY_BOUND_SECS);
    let _ = std::fs::remove_dir_all(&work_dir);
}
