//! End-to-end daemon tests over real sockets: request lifecycle, typed
//! rejection of hostile bodies, backpressure under burst load, breaker
//! trip → stale-but-certified serving, and graceful drain completing
//! in-flight rounds.

#![allow(clippy::unwrap_used)]

use rasa_serve::{BreakerConfig, ServeConfig, Server, ServerHandle};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn spec(services: usize, seed: u64) -> ClusterSpec {
    let mut s = tiny_cluster(seed);
    s.services = services;
    s.target_containers = services as u64 * 4;
    s.machines = (services / 3).max(4);
    s
}

fn boot(config: ServeConfig) -> (SocketAddr, ServerHandle, thread::JoinHandle<rasa_serve::DrainReport>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());
    (addr, handle, join)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

#[test]
fn snapshot_delta_placement_lifecycle() {
    let (addr, handle, join) = boot(quick_config());
    let problem = generate(&spec(7, 1));
    let body = serde_json::to_string(&problem).unwrap();

    // cold snapshot round
    let reply = http(addr, "POST", "/snapshot?tenant=acme", &body);
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(reply.body.contains("\"accepted\":true"));
    assert!(reply.body.contains("\"certified\":true"));
    assert!(reply.body.contains("\"stale\":false"));

    // published placement is retrievable and fresh
    let placement = http(addr, "GET", "/placement?tenant=acme", "");
    assert_eq!(placement.status, 200);
    assert!(placement.body.contains("\"stale\":false"));
    assert!(placement.body.contains("\"placement\":"));

    // a small delta re-solves warm (cache hits > 0)
    let delta = "{\"edge_updates\":[{\"a\":0,\"b\":1,\"weight\":42.5}],\"replica_updates\":[]}";
    let warm = http(addr, "POST", "/delta?tenant=acme", delta);
    assert_eq!(warm.status, 200, "body: {}", warm.body);
    assert!(warm.body.contains("\"accepted\":true"));

    // unknown tenants 404, health answers, metrics expose serve counters
    assert_eq!(http(addr, "GET", "/placement?tenant=ghost", "").status, 404);
    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);
    let metrics = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200, "metrics: {}", metrics.body);
    assert!(metrics.body.contains("rasa_serve_requests"));
    assert!(metrics.body.contains("rasa_serve_rounds_published"));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn hostile_bodies_get_typed_rejections() {
    let (addr, handle, join) = boot(ServeConfig {
        http: rasa_serve::HttpLimits {
            max_body_bytes: 64 * 1024,
            ..rasa_serve::HttpLimits::default()
        },
        ..quick_config()
    });

    // truncated JSON: 400 with the line/column where parsing stopped
    let problem = generate(&spec(6, 2));
    let json = serde_json::to_string(&problem).unwrap();
    let truncated = &json[..json.len() / 2];
    let reply = http(addr, "POST", "/snapshot?tenant=acme", truncated);
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("\"line\":"),
        "syntax errors carry a position: {}",
        reply.body
    );

    // valid JSON, wrong shape: 400 without position
    let reply = http(addr, "POST", "/snapshot?tenant=acme", "[1,2,3]");
    assert_eq!(reply.status, 400);

    // oversized declared body: 413
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /snapshot?tenant=acme HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 413"), "got: {raw}");

    // missing tenant: 400; invalid tenant chars: 400
    assert_eq!(http(addr, "POST", "/snapshot", "{}").status, 400);
    assert_eq!(
        http(addr, "POST", "/snapshot?tenant=../etc", "{}").status,
        400
    );

    // wrong method / unknown route
    assert_eq!(http(addr, "PUT", "/snapshot?tenant=a", "{}").status, 405);
    assert_eq!(http(addr, "GET", "/nope", "").status, 404);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn burst_overload_sheds_with_429_and_retry_after() {
    let (addr, handle, join) = boot(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        request_timeout: Duration::from_secs(60),
        ..quick_config()
    });
    // distinct problems so no round replays another's cache
    let bodies: Vec<String> = (0..16)
        .map(|i| serde_json::to_string(&generate(&spec(12, 100 + i))).unwrap())
        .collect();

    let barrier = Arc::new(Barrier::new(bodies.len()));
    let mut clients = Vec::new();
    for (i, body) in bodies.into_iter().enumerate() {
        let barrier = Arc::clone(&barrier);
        clients.push(thread::spawn(move || {
            barrier.wait();
            let reply = http(addr, "POST", "/snapshot?tenant=burst", &body);
            (i, reply)
        }));
    }
    let replies: Vec<(usize, Reply)> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let accepted = replies.iter().filter(|(_, r)| r.status == 200).count();
    let shed: Vec<&Reply> = replies
        .iter()
        .filter(|(_, r)| r.status == 429)
        .map(|(_, r)| r)
        .collect();
    assert!(accepted >= 1, "at least one burst request must solve");
    assert!(
        !shed.is_empty(),
        "16 simultaneous requests against a 1-deep queue must shed load"
    );
    for r in &shed {
        assert!(
            r.headers.contains_key("retry-after"),
            "429 must carry Retry-After"
        );
        assert!(r.body.contains("queue full"));
    }
    assert_eq!(accepted + shed.len(), replies.len());

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn breaker_trips_to_stale_serving_under_starved_deadlines() {
    let (addr, handle, join) = boot(ServeConfig {
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(3600), // stays open for the test
        },
        ..quick_config()
    });
    // a healthy round first, so there is a certified placement to serve stale
    let problem = generate(&spec(40, 7));
    let body = serde_json::to_string(&problem).unwrap();
    let healthy = http(addr, "POST", "/snapshot?tenant=starved", &body);
    assert_eq!(healthy.status, 200, "body: {}", healthy.body);
    assert!(healthy.body.contains("\"degraded\":false"));

    // now starve the deadline: 1ms over 40 services forces ladder
    // exhaustion (deadline-expired completion floor) — certified but
    // degraded, each counting against the breaker
    let mut degraded_seen = 0;
    for i in 0..3 {
        let delta = format!(
            "{{\"edge_updates\":[{{\"a\":0,\"b\":{},\"weight\":{}}}],\"replica_updates\":[]}}",
            i + 1,
            50.0 + i as f64
        );
        let reply = http(
            addr,
            "POST",
            "/delta?tenant=starved&deadline_ms=1",
            &delta,
        );
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        if reply.body.contains("\"degraded\":true") {
            degraded_seen += 1;
        }
    }
    assert_eq!(
        degraded_seen, 3,
        "1ms deadlines over 40 services must exhaust the ladder"
    );

    // breaker is now open: the next request is served stale, not solved
    let delta = "{\"edge_updates\":[{\"a\":0,\"b\":5,\"weight\":9.0}],\"replica_updates\":[]}";
    let stale = http(addr, "POST", "/delta?tenant=starved", delta);
    assert_eq!(stale.status, 200, "body: {}", stale.body);
    assert!(stale.body.contains("\"stale\":true"), "body: {}", stale.body);
    assert!(stale.body.contains("\"certified\":true"));
    assert!(stale.body.contains("breaker_open"));
    assert!(stale.headers.contains_key("retry-after"));

    // /placement names the breaker state
    let placement = http(addr, "GET", "/placement?tenant=starved", "");
    assert!(placement.body.contains("\"breaker\":\"open\""));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn retrain_mid_session_keeps_every_publish_certified() {
    use rasa_core::{portfolio_features, PoolAlgorithm, SelectionSample};

    // retrain after every published round; pre-seed the shared online
    // sample stream past the retrain floor so the very first retrain fires
    let mut config = quick_config();
    config.retrain_every = Some(1);
    let log = config.rasa.sample_log.clone();
    let problem = generate(&spec(7, 9));
    let features = portfolio_features(&problem);
    while log.len() < rasa_core::MIN_RETRAIN_SAMPLES {
        for &alg in &PoolAlgorithm::ALL {
            log.record(SelectionSample {
                features: features.clone(),
                choice: alg,
                quality: match alg {
                    PoolAlgorithm::Mip => 0.9,
                    PoolAlgorithm::Cg => 0.8,
                    PoolAlgorithm::Pop => 0.5,
                    PoolAlgorithm::Greedy => 0.2,
                },
                latency_secs: 0.05,
                degraded: false,
            });
        }
    }
    let (addr, handle, join) = boot(config);
    let body = serde_json::to_string(&problem).unwrap();

    // round 1 publishes, then retrains (selector swaps to PORTFOLIO)
    let first = http(addr, "POST", "/snapshot?tenant=learner", &body);
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert!(first.body.contains("\"certified\":true"));

    // rounds 2..4 run under the retrained selector (and keep retraining):
    // every publish must still be certified and fresh — retraining may
    // change routing, never let an uncertified placement through
    for round in 0..3 {
        let delta = format!(
            "{{\"edge_updates\":[{{\"a\":0,\"b\":1,\"weight\":{}}}],\"replica_updates\":[]}}",
            10.0 + round as f64
        );
        let reply = http(addr, "POST", "/delta?tenant=learner", &delta);
        assert_eq!(reply.status, 200, "round {round}: {}", reply.body);
        assert!(reply.body.contains("\"certified\":true"), "{}", reply.body);
        assert!(reply.body.contains("\"stale\":false"), "{}", reply.body);
    }

    // the retrain counter is visible on /metrics
    let metrics = http(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("rasa_serve_retrains"),
        "metrics must expose serve.retrains: {}",
        metrics.body
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn healthz_degrades_on_open_breaker_and_drain() {
    let (addr, handle, join) = boot(ServeConfig {
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(3600), // stays open for the test
        },
        ..quick_config()
    });
    // healthy daemon: 200 ok
    let healthy = http(addr, "GET", "/healthz", "");
    assert_eq!(healthy.status, 200);
    assert!(healthy.body.contains("\"status\":\"ok\""));

    // trip the breaker: one certified placement, then three starved rounds
    let body = serde_json::to_string(&generate(&spec(40, 11))).unwrap();
    assert_eq!(
        http(addr, "POST", "/snapshot?tenant=starved", &body).status,
        200
    );
    for i in 0..3 {
        let delta = format!(
            "{{\"edge_updates\":[{{\"a\":0,\"b\":{},\"weight\":1.0}}],\"replica_updates\":[]}}",
            i + 1
        );
        let reply = http(addr, "POST", "/delta?tenant=starved&deadline_ms=1", &delta);
        assert_eq!(reply.status, 200, "body: {}", reply.body);
    }

    // breaker open → /healthz degrades and names the tenant
    let degraded = http(addr, "GET", "/healthz", "");
    assert_eq!(degraded.status, 503, "body: {}", degraded.body);
    assert!(
        degraded.body.contains("\"breaker_open:starved\""),
        "body: {}",
        degraded.body
    );

    // pre-open a connection so its handler thread is already waiting when
    // drain begins (the accept loop stops at drain), then ask it for
    // /healthz mid-drain: "draining" must appear as a reason
    let mut early = TcpStream::connect(addr).expect("pre-drain connect");
    thread::sleep(Duration::from_millis(50)); // let the accept loop take it
    handle.shutdown();
    assert!(handle.is_draining());
    early
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("write on pre-drain connection");
    let mut raw = String::new();
    early.read_to_string(&mut raw).expect("read healthz mid-drain");
    assert!(raw.starts_with("HTTP/1.1 503"), "got: {raw}");
    assert!(raw.contains("\"draining\""), "got: {raw}");

    join.join().unwrap();
}

#[test]
fn graceful_drain_completes_in_flight_rounds() {
    let (addr, handle, join) = boot(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        drain_grace: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    // three rounds enqueued back-to-back against one worker
    let mut clients = Vec::new();
    for i in 0..3u64 {
        let body = serde_json::to_string(&generate(&spec(10, 500 + i))).unwrap();
        clients.push(thread::spawn(move || {
            http(addr, "POST", &format!("/snapshot?tenant=t{i}"), &body)
        }));
    }
    // let the requests land, then drain while they are in flight
    thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    assert!(handle.is_draining());

    for client in clients {
        let reply = client.join().unwrap();
        assert_eq!(
            reply.status, 200,
            "a round accepted before drain must complete: {}",
            reply.body
        );
        assert!(reply.body.contains("\"accepted\":true"));
    }

    let report = join.join().unwrap();
    assert_eq!(report.abandoned_jobs, 0, "grace window fits 3 tiny rounds");

    // post-drain the listener is closed: connections fail or are reset —
    // either way no new work is admitted
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(b"POST /snapshot?tenant=late HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}");
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        assert!(
            raw.is_empty() || !raw.contains("\"accepted\":true"),
            "a drained daemon must not accept new work: {raw}"
        );
    }
}
