//! Retry semantics under overload: the jittered backoff schedule must
//! stay inside its documented envelope (`[ceil/2, ceil]`, ceiling capped,
//! deterministic per seed), and the `Retry-After` hints the daemon sends
//! with 429s must match their documented values — the queue-full hint
//! tracks the tenant's deadline budget, the tenant-capacity hint is a
//! flat 30 seconds.

#![allow(clippy::unwrap_used)]

use rasa_serve::{BackoffSchedule, ServeConfig, Server};
use rasa_trace::{generate, tiny_cluster};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

struct Reply {
    status: u16,
    headers: BTreeMap<String, String>,
    body: String,
}

fn http(addr: SocketAddr, method: &str, target: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

#[test]
fn backoff_delays_stay_inside_the_equal_jitter_envelope() {
    let base = Duration::from_millis(50);
    let cap = Duration::from_secs(2);
    for seed in 0..32u64 {
        let mut schedule = BackoffSchedule::new(base, cap, seed);
        for attempt in 0..12u32 {
            let ceil = schedule.ceiling(attempt);
            let delay = schedule.next_delay(attempt);
            assert!(
                delay >= ceil / 2 && delay <= ceil,
                "seed {seed} attempt {attempt}: delay {delay:?} outside [{:?}, {ceil:?}]",
                ceil / 2
            );
        }
    }
}

#[test]
fn backoff_ceiling_doubles_then_caps() {
    let schedule = BackoffSchedule::new(Duration::from_millis(100), Duration::from_secs(1), 7);
    assert_eq!(schedule.ceiling(0), Duration::from_millis(100));
    assert_eq!(schedule.ceiling(1), Duration::from_millis(200));
    assert_eq!(schedule.ceiling(2), Duration::from_millis(400));
    assert_eq!(schedule.ceiling(3), Duration::from_millis(800));
    // capped from attempt 4 on, including absurd attempt counts
    assert_eq!(schedule.ceiling(4), Duration::from_secs(1));
    assert_eq!(schedule.ceiling(31), Duration::from_secs(1));
    assert_eq!(schedule.ceiling(u32::MAX), Duration::from_secs(1));
}

#[test]
fn backoff_seeds_desynchronize_concurrent_retriers() {
    // the point of jitter: two tenants failing simultaneously must not
    // retry in lockstep
    let base = Duration::from_millis(50);
    let cap = Duration::from_secs(2);
    let mut a = BackoffSchedule::new(base, cap, 1);
    let mut b = BackoffSchedule::new(base, cap, 2);
    let sa: Vec<Duration> = (0..8).map(|k| a.next_delay(k)).collect();
    let sb: Vec<Duration> = (0..8).map(|k| b.next_delay(k)).collect();
    assert_ne!(sa, sb, "different seeds must produce different schedules");
}

#[test]
fn queue_full_retry_after_tracks_the_deadline_budget() {
    // with a 3s default deadline, shed requests should be told to come
    // back in 3s — one deadline's worth of breathing room
    let server = Server::bind(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        default_deadline: Duration::from_millis(3000),
        request_timeout: Duration::from_secs(60),
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let bodies: Vec<String> = (0..16)
        .map(|i| {
            let mut s = tiny_cluster(300 + i);
            s.services = 12;
            s.target_containers = 48;
            s.machines = 4;
            serde_json::to_string(&generate(&s)).unwrap()
        })
        .collect();
    let barrier = Arc::new(Barrier::new(bodies.len()));
    let clients: Vec<_> = bodies
        .into_iter()
        .map(|body| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                http(addr, "POST", "/snapshot?tenant=burst", &body)
            })
        })
        .collect();
    let replies: Vec<Reply> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    let shed: Vec<&Reply> = replies
        .iter()
        .filter(|r| r.status == 429 && r.body.contains("queue full"))
        .collect();
    assert!(
        !shed.is_empty(),
        "16 simultaneous requests against a 1-deep queue must shed load"
    );
    for r in &shed {
        assert_eq!(
            r.headers.get("retry-after").map(String::as_str),
            Some("3"),
            "queue-full Retry-After must equal the default deadline in seconds"
        );
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn tenant_capacity_retry_after_is_thirty_seconds() {
    let server = Server::bind(ServeConfig {
        max_tenants: 0,
        drain_grace: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let body = serde_json::to_string(&generate(&tiny_cluster(9))).unwrap();
    let reply = http(addr, "POST", "/snapshot?tenant=overflow", &body);
    assert_eq!(reply.status, 429, "{}", reply.body);
    assert!(reply.body.contains("tenant capacity"), "{}", reply.body);
    assert_eq!(
        reply.headers.get("retry-after").map(String::as_str),
        Some("30"),
        "tenant-capacity Retry-After is a flat 30s"
    );

    handle.shutdown();
    join.join().unwrap();
}
