#![warn(missing_docs)]

//! # rasa-trace
//!
//! Synthetic cluster/trace generation — the repository's substitute for the
//! ByteDance production traces of Table II (M1–M4), which are not publicly
//! available at full fidelity.
//!
//! The generator controls exactly the properties the paper's algorithms
//! depend on:
//!
//! * **affinity skew** — per-service total affinity follows a power law
//!   `T(s) ∝ s^{-β}` with configurable `β > 1` (Assumption 4.1, validated
//!   by the paper's Fig 5 and by our reproduction of it);
//! * **scale ratios** — services : containers : machines follow the paper's
//!   Table II (scaled down per DESIGN.md §6, since our simplex is slower
//!   than Gurobi);
//! * **machine heterogeneity** — several SKUs with distinct capacities
//!   (the property that breaks APPLSCI19's packing, Section V-D);
//! * **compatibility classes** — a fraction of services require features
//!   (IPv6-style), exercising schedulable constraints and compatibility
//!   partitioning;
//! * **anti-affinity rules** — singleton spread rules plus multi-service
//!   disaster-control rules.
//!
//! [`s_clusters`] returns the S1–S4 analogues of M1–M4; [`t_clusters`]
//! returns the smaller T1–T4-style training clusters used to label and
//! train the algorithm-selection classifiers (Section IV-D).

pub mod generator;
pub mod persist;
pub mod specs;

pub use generator::{generate, ClusterSpec};
pub use persist::{load_jsonl, load_problem, save_jsonl, save_problem, PersistError};
pub use specs::{large_clusters, medium_clusters, s_clusters, t_clusters, tiny_cluster, xl_clusters};
