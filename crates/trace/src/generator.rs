//! The synthetic cluster generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_model::{FeatureMask, Problem, ProblemBuilder, ResourceVec, Service, ServiceId};

/// Full description of a synthetic cluster. All randomness derives from
/// `seed`, so a spec regenerates the identical problem every time.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Cluster name (e.g. "S1").
    pub name: String,
    /// Number of services `N`.
    pub services: usize,
    /// Approximate total container count `Σ d_s` (before the utilization
    /// guard, which may scale replicas down).
    pub target_containers: u64,
    /// Number of machines `M`.
    pub machines: usize,
    /// Power-law exponent `β > 1` of the total-affinity distribution
    /// (Assumption 4.1; the paper's clusters show β around 1.3–2).
    pub affinity_beta: f64,
    /// Fraction of services participating in the affinity graph.
    pub affinity_fraction: f64,
    /// Edge draws per affinity service (controls |E|).
    pub edge_density: f64,
    /// Mean services per application community (microservice graphs are
    /// modular; see the edge-generation comment in [`generate`]).
    pub community_size: usize,
    /// Probability that an edge draw crosses community boundaries (shared
    /// infrastructure traffic).
    pub cross_traffic: f64,
    /// Number of machine SKUs (heterogeneity).
    pub machine_types: usize,
    /// Fraction of machines providing the "alt network stack" feature.
    pub feature_machine_fraction: f64,
    /// Fraction of services requiring that feature.
    pub feature_service_fraction: f64,
    /// Fraction of services with a singleton anti-affinity (spread) rule.
    pub spread_rule_fraction: f64,
    /// Number of multi-service anti-affinity rules.
    pub group_rules: usize,
    /// Target peak resource utilization (total demand / total capacity).
    pub utilization: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            name: "synthetic".into(),
            services: 100,
            target_containers: 500,
            machines: 20,
            affinity_beta: 1.6,
            affinity_fraction: 0.6,
            edge_density: 3.0,
            community_size: 12,
            cross_traffic: 0.08,
            machine_types: 3,
            feature_machine_fraction: 0.3,
            feature_service_fraction: 0.1,
            spread_rule_fraction: 0.2,
            group_rules: 2,
            utilization: 0.55,
            seed: 0,
        }
    }
}

/// CPU request menu, in millicores (typical container T-shirt sizes).
const CPU_MENU: [f64; 5] = [250.0, 500.0, 1000.0, 2000.0, 4000.0];

/// Generate the cluster described by `spec`.
pub fn generate(spec: &ClusterSpec) -> Problem {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut builder = ProblemBuilder::new();

    // ---- machines: SKUs with distinct capacities ----
    // SKU k capacity: base × (1, 2, 4, ...) cycling, so machine_groups > 1.
    let base = ResourceVec::new(64_000.0, 262_144.0, 40_000.0, 4_000.0);
    let sku_caps: Vec<ResourceVec> = (0..spec.machine_types.max(1))
        .map(|k| base * [1.0, 2.0, 0.75, 4.0, 1.5][k % 5])
        .collect();
    let mut total_capacity = ResourceVec::ZERO;
    let feature = FeatureMask::bit(0);
    for mi in 0..spec.machines {
        let cap = sku_caps[mi % sku_caps.len()];
        let has_feature = (mi as f64 / spec.machines.max(1) as f64) < spec.feature_machine_fraction;
        let mask = if has_feature {
            feature
        } else {
            FeatureMask::EMPTY
        };
        builder.add_machine(cap, mask);
        total_capacity += cap;
    }

    // ---- services: replicas ~ heavy-tailed, demand from the menu ----
    let mut raw_replicas: Vec<f64> = (0..spec.services)
        .map(|_| {
            // Pareto-ish: most services are small, a few are large
            let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-6);
            u.powf(-0.7)
        })
        .collect();
    let raw_total: f64 = raw_replicas.iter().sum();
    let scale = spec.target_containers as f64 / raw_total.max(1e-9);
    for r in raw_replicas.iter_mut() {
        *r = (*r * scale).round().max(1.0);
    }

    let mut demands: Vec<ResourceVec> = Vec::with_capacity(spec.services);
    for _ in 0..spec.services {
        let cpu = CPU_MENU[rng.gen_range(0..CPU_MENU.len())];
        // memory loosely tracks cpu with noise; net/disk small
        let mem = cpu * rng.gen_range(2.0..6.0);
        let net = cpu * rng.gen_range(0.05..0.3);
        let disk = rng.gen_range(1.0..20.0);
        demands.push(ResourceVec::new(cpu, mem, net, disk));
    }

    // utilization guard: scale replicas so the dominant dimension stays at
    // `spec.utilization` of the cluster capacity
    let mut total_demand = ResourceVec::ZERO;
    for (r, d) in raw_replicas.iter().zip(&demands) {
        total_demand += *d * *r;
    }
    let dominant = total_demand.dominant_share(&total_capacity);
    if dominant > spec.utilization {
        let shrink = spec.utilization / dominant;
        for r in raw_replicas.iter_mut() {
            *r = (*r * shrink).floor().max(1.0);
        }
    }

    for (i, (&replicas, demand)) in raw_replicas.iter().zip(&demands).enumerate() {
        let needs_feature =
            (i as f64 / spec.services.max(1) as f64) < spec.feature_service_fraction;
        let mask = if needs_feature {
            feature
        } else {
            FeatureMask::EMPTY
        };
        builder.add_service_full(
            Service::new(
                ServiceId(0), // reassigned by the builder
                format!("{}-svc-{i}", spec.name),
                replicas as u32,
                *demand,
            )
            .with_features(mask),
        );
    }

    // ---- affinity edges: community structure + power-law budgets ----
    //
    // Production microservice graphs are *modular*: each application is a
    // community of dozens of services talking mostly to each other, with a
    // sparse layer of shared infrastructure calls across applications. The
    // paper's multi-stage partitioning (and the KaHIP baseline) exploit
    // exactly this modularity, so the generator must produce it. Within
    // the global ranking, per-service total affinity still follows the
    // power law `T(s) ∝ rank^{-β}` (Assumption 4.1) because endpoints are
    // sampled proportionally to their rank budget.
    let k_affinity = ((spec.services as f64) * spec.affinity_fraction).round() as usize;
    let k_affinity = k_affinity.min(spec.services);
    if k_affinity >= 2 {
        // affinity participants: a random subset; ranks assigned in subset order
        let mut ids: Vec<usize> = (0..spec.services).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let participants = &ids[..k_affinity];
        // communities: heavy-tailed sizes averaging ~community_size.
        // Ranks are dealt to communities through a shuffled permutation so
        // every application gets its own hot "gateway" services — in real
        // clusters the traffic hubs are spread across applications, not
        // concentrated in one.
        let mut community_of = vec![0usize; k_affinity];
        let mut num_communities = 0usize;
        {
            let mut perm: Vec<usize> = (0..k_affinity).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            let mut next = 0usize;
            while next < k_affinity {
                let size = (spec.community_size as f64 * rng.gen_range(0.5..1.8)).round() as usize;
                let size = size.max(2).min(k_affinity - next);
                for &rank in perm.iter().skip(next).take(size) {
                    community_of[rank] = num_communities;
                }
                next += size;
                num_communities += 1;
            }
        }
        // budget for rank r (1-based): r^{-β}; participants[i] has rank i+1
        let budgets: Vec<f64> = (1..=k_affinity)
            .map(|r| (r as f64).powf(-spec.affinity_beta))
            .collect();
        // per-community cumulative budget tables for intra-community draws
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_communities];
        for (i, &c) in community_of.iter().enumerate() {
            members[c].push(i);
        }
        let cumulative_global: Vec<f64> = budgets
            .iter()
            .scan(0.0, |acc, b| {
                *acc += b;
                Some(*acc)
            })
            .collect();
        let total_global = *cumulative_global.last().unwrap();
        let sample_global = |rng: &mut StdRng| -> usize {
            let x = rng.gen_range(0.0..total_global);
            cumulative_global
                .partition_point(|&c| c <= x)
                .min(k_affinity - 1)
        };
        let sample_in = |rng: &mut StdRng, comm: &[usize]| -> usize {
            let total: f64 = comm.iter().map(|&i| budgets[i]).sum();
            let mut x = rng.gen_range(0.0..total);
            for &i in comm {
                x -= budgets[i];
                if x <= 0.0 {
                    return i;
                }
            }
            comm[comm.len() - 1]
        };
        let draws = ((k_affinity as f64) * spec.edge_density).round() as usize;
        let mut accum: std::collections::BTreeMap<(usize, usize), f64> = Default::default();
        for _ in 0..draws.max(1) {
            let a = sample_global(&mut rng);
            // intra-community with probability (1 - cross_traffic)
            let b = if rng.gen_range(0.0f64..1.0) < spec.cross_traffic {
                sample_global(&mut rng)
            } else {
                sample_in(&mut rng, &members[community_of[a]])
            };
            if a == b {
                continue;
            }
            let (lo, hi) = (participants[a.min(b)], participants[a.max(b)]);
            let (lo, hi) = if lo < hi { (lo, hi) } else { (hi, lo) };
            // per-draw weight quantum with jitter, so totals follow the budgets
            *accum.entry((lo, hi)).or_insert(0.0) += rng.gen_range(0.5..1.5);
        }
        for ((a, b), w) in accum {
            builder.add_affinity(ServiceId(a as u32), ServiceId(b as u32), w);
        }
    }

    // ---- anti-affinity ----
    let spread_count = ((spec.services as f64) * spec.spread_rule_fraction) as usize;
    for (i, &raw) in raw_replicas.iter().enumerate().take(spread_count) {
        let s = ServiceId(i as u32);
        let replicas = raw as u32;
        // realistic spread rules leave room to collocate a few containers
        // per machine (operators cap skew, they do not forbid stacking)
        let h = (3 * replicas).div_ceil(spec.machines.max(1) as u32).max(2);
        builder.add_anti_affinity(vec![s], h);
    }
    for _ in 0..spec.group_rules {
        let a = rng.gen_range(0..spec.services);
        let b = rng.gen_range(0..spec.services);
        if a == b {
            continue;
        }
        let ra = raw_replicas[a] as u32;
        let rb = raw_replicas[b] as u32;
        let h = (2 * (ra + rb)).div_ceil(spec.machines.max(1) as u32).max(2);
        builder.add_anti_affinity(vec![ServiceId(a as u32), ServiceId(b as u32)], h);
    }

    builder.build().expect("generator produces valid problems")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rasa_graph::{fit_exponential, fit_power_law, AffinityGraph};

    fn spec() -> ClusterSpec {
        ClusterSpec {
            services: 200,
            target_containers: 1200,
            machines: 40,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.affinity_edges, b.affinity_edges);
    }

    #[test]
    fn respects_scale_knobs_roughly() {
        let p = generate(&spec());
        let st = p.stats();
        assert_eq!(st.services, 200);
        assert_eq!(st.machines, 40);
        assert!(st.containers >= 200, "at least one container per service");
        // within 2× of the requested container budget (utilization guard may shrink)
        assert!(st.containers <= 2 * 1200, "containers {}", st.containers);
        assert!(st.machine_groups >= 2, "heterogeneous SKUs expected");
    }

    #[test]
    fn utilization_stays_below_one() {
        let p = generate(&spec());
        let mut demand = ResourceVec::ZERO;
        for s in &p.services {
            demand += s.total_demand();
        }
        let mut cap = ResourceVec::ZERO;
        for m in &p.machines {
            cap += m.capacity;
        }
        let util = demand.dominant_share(&cap);
        assert!(util < 0.9, "dominant utilization {util}");
    }

    #[test]
    fn affinity_totals_follow_a_power_law_better_than_exponential() {
        // the property Fig 5 establishes for production clusters; steep
        // skew (β = 2.2) makes the distinction decisive — at the default
        // β ≈ 1.6 with hub services spread across communities the two fits
        // can come out within noise of each other (see EXPERIMENTS.md)
        let p = generate(&ClusterSpec {
            services: 400,
            target_containers: 2000,
            machines: 60,
            affinity_beta: 2.2,
            edge_density: 6.0,
            seed: 11,
            ..Default::default()
        });
        let g = AffinityGraph::from_problem(&p);
        let mut totals: Vec<f64> = g
            .all_total_affinities()
            .into_iter()
            .filter(|&t| t > 0.0)
            .collect();
        totals.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top40: Vec<f64> = totals.into_iter().take(40).collect();
        let pl = fit_power_law(&top40);
        let ex = fit_exponential(&top40);
        assert!(
            pl.r_squared > ex.r_squared,
            "power law R² {} must beat exponential R² {}",
            pl.r_squared,
            ex.r_squared
        );
        assert!(pl.decay > 0.5, "β̂ = {}", pl.decay);
    }

    #[test]
    fn feature_requirements_have_providers() {
        let p = generate(&spec());
        let feature_services = p
            .services
            .iter()
            .filter(|s| s.required_features != FeatureMask::EMPTY)
            .count();
        let feature_machines = p
            .machines
            .iter()
            .filter(|m| m.features != FeatureMask::EMPTY)
            .count();
        assert!(feature_services > 0);
        assert!(feature_machines > 0, "requirements must be satisfiable");
    }

    #[test]
    fn anti_affinity_rules_leave_slack() {
        let p = generate(&spec());
        for rule in &p.anti_affinity {
            let total: u64 = rule
                .services
                .iter()
                .map(|s| u64::from(p.services[s.idx()].replicas))
                .sum();
            let budget = u64::from(rule.max_per_machine) * p.num_machines() as u64;
            assert!(
                budget >= total,
                "rule capacity {budget} cannot host {total} containers"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec());
        let b = generate(&ClusterSpec { seed: 8, ..spec() });
        assert_ne!(a.affinity_edges, b.affinity_edges);
    }
}
