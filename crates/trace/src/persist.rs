//! Saving and loading generated problems as JSON artifacts, so experiment
//! inputs can be pinned and shared.

use rasa_model::Problem;
use std::io;
use std::path::Path;

/// Write `problem` to `path` as JSON.
pub fn save_problem(problem: &Problem, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(problem)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Load a problem saved by [`save_problem`].
pub fn load_problem(path: &Path) -> io::Result<Problem> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::specs::tiny_cluster;

    #[test]
    fn round_trip_preserves_the_problem() {
        let p = generate(&tiny_cluster(5));
        let dir = std::env::temp_dir().join("rasa_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        save_problem(&p, &path).unwrap();
        let q = load_problem(&path).unwrap();
        // JSON float formatting may drift by an ULP; compare structurally
        // with a tight tolerance.
        assert_eq!(p.num_services(), q.num_services());
        assert_eq!(p.num_machines(), q.num_machines());
        assert_eq!(p.affinity_edges.len(), q.affinity_edges.len());
        for (a, b) in p.affinity_edges.iter().zip(&q.affinity_edges) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert!((a.weight - b.weight).abs() < 1e-9);
        }
        assert_eq!(p.anti_affinity, q.anti_affinity);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_problem(Path::new("/nonexistent/rasa.json")).is_err());
    }
}
