//! Saving and loading generated problems as JSON artifacts, so experiment
//! inputs can be pinned and shared — plus generic JSONL streams
//! ([`save_jsonl`] / [`load_jsonl`]) for record-per-line data like the
//! online selection-sample stream.
//!
//! Loading goes through a typed [`PersistError`] that names the offending
//! path and — for malformed JSON — the 1-based line/column where parsing
//! stopped, so a truncated or hand-mangled artifact produces an actionable
//! message instead of a bare `InvalidData`.

use rasa_model::Problem;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why saving or loading a problem artifact failed.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io {
        /// The artifact path involved.
        path: PathBuf,
        /// The underlying filesystem error.
        source: io::Error,
    },
    /// The file exists but its contents are not a valid problem.
    Parse {
        /// The artifact path involved.
        path: PathBuf,
        /// 1-based line where parsing stopped (syntax errors only; shape
        /// errors found after parsing carry no position).
        line: Option<usize>,
        /// 1-based column where parsing stopped.
        column: Option<usize>,
        /// The underlying JSON error.
        source: serde_json::Error,
    },
    /// The in-memory problem could not be serialized.
    Serialize {
        /// The underlying JSON error.
        source: serde_json::Error,
    },
    /// The bytes were written but could not be made durable: `fsync`
    /// (or the flush before it) failed. The file may exist with partial
    /// or non-durable contents — callers treating a save as a commit
    /// point (journals, checkpoints) must treat this as a failed save.
    Sync {
        /// The artifact path involved.
        path: PathBuf,
        /// The underlying filesystem error.
        source: io::Error,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            PersistError::Parse {
                path,
                line,
                column,
                source,
            } => {
                write!(f, "{}: ", path.display())?;
                if let (Some(l), Some(c)) = (line, column) {
                    write!(f, "malformed JSON at line {l} column {c}: ")?;
                }
                write!(f, "{source}")
            }
            PersistError::Serialize { source } => {
                write!(f, "failed to serialize problem: {source}")
            }
            PersistError::Sync { path, source } => {
                write!(f, "{}: fsync failed: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Parse { source, .. } => Some(source),
            PersistError::Serialize { source } => Some(source),
            PersistError::Sync { source, .. } => Some(source),
        }
    }
}

/// Write `bytes` to `path` and make them durable: create, `write_all`,
/// `flush`, `sync_all`. A failed write is [`PersistError::Io`]; a write
/// that succeeded but could not be fsynced is the distinct
/// [`PersistError::Sync`] — previously that failure mode was silently
/// reported as success because saves went through `std::fs::write` alone.
fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    use std::io::Write;
    let io_err = |source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(bytes).map_err(io_err)?;
    file.flush()
        .and_then(|()| file.sync_all())
        .map_err(|source| PersistError::Sync {
            path: path.to_path_buf(),
            source,
        })
}

/// Write `problem` to `path` as JSON, durably (fsynced; see
/// [`PersistError::Sync`]).
pub fn save_problem(problem: &Problem, path: &Path) -> Result<(), PersistError> {
    let json =
        serde_json::to_string(problem).map_err(|source| PersistError::Serialize { source })?;
    write_durable(path, json.as_bytes())
}

/// Load a problem saved by [`save_problem`].
///
/// No admission audit is run on the result; pair with
/// `rasa_model::ProblemValidator` (or use the pipeline's built-in
/// admission gate) before trusting a file from outside the process.
pub fn load_problem(path: &Path) -> Result<Problem, PersistError> {
    let json = std::fs::read_to_string(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    serde_json::from_str(&json).map_err(|source| PersistError::Parse {
        path: path.to_path_buf(),
        line: source.line(),
        column: source.column(),
        source,
    })
}

/// Write `items` to `path` as JSONL — one compact JSON object per line,
/// durably (fsynced; see [`PersistError::Sync`]). The format is
/// append-friendly: streams from several runs can be concatenated and
/// still load.
pub fn save_jsonl<T: Serialize>(items: &[T], path: &Path) -> Result<(), PersistError> {
    let mut out = String::new();
    for item in items {
        let line =
            serde_json::to_string(item).map_err(|source| PersistError::Serialize { source })?;
        out.push_str(&line);
        out.push('\n');
    }
    write_durable(path, out.as_bytes())
}

/// Load a JSONL stream saved by [`save_jsonl`] (or appended to since).
/// Blank lines are skipped; a malformed line reports its 1-based position
/// in the file via [`PersistError::Parse`].
pub fn load_jsonl<T: Deserialize>(path: &Path) -> Result<Vec<T>, PersistError> {
    let text = std::fs::read_to_string(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let item = serde_json::from_str(line).map_err(|source| PersistError::Parse {
            path: path.to_path_buf(),
            line: Some(i + 1),
            column: source.column(),
            source,
        })?;
        out.push(item);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::specs::tiny_cluster;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rasa_trace_test");
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_the_problem() {
        let p = generate(&tiny_cluster(5));
        let path = temp_path("tiny.json");
        save_problem(&p, &path).expect("problem saves");
        let q = load_problem(&path).expect("problem loads back");
        // JSON float formatting may drift by an ULP; compare structurally
        // with a tight tolerance.
        assert_eq!(p.num_services(), q.num_services());
        assert_eq!(p.num_machines(), q.num_machines());
        assert_eq!(p.affinity_edges.len(), q.affinity_edges.len());
        for (a, b) in p.affinity_edges.iter().zip(&q.affinity_edges) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert!((a.weight - b.weight).abs() < 1e-9);
        }
        assert_eq!(p.anti_affinity, q.anti_affinity);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_reports_path() {
        let err = load_problem(Path::new("/nonexistent/rasa.json")).expect_err("must fail");
        assert!(matches!(err, PersistError::Io { .. }));
        assert!(err.to_string().contains("/nonexistent/rasa.json"));
    }

    #[test]
    fn truncated_artifact_reports_line_and_column() {
        let p = generate(&tiny_cluster(5));
        let path = temp_path("truncated.json");
        save_problem(&p, &path).expect("problem saves");
        let json = std::fs::read_to_string(&path).expect("readable");
        std::fs::write(&path, &json[..json.len() / 2]).expect("truncates");

        let err = load_problem(&path).expect_err("truncated file must fail");
        match &err {
            PersistError::Parse { path: p, line, .. } => {
                assert!(p.ends_with("truncated.json"));
                assert!(line.is_some(), "syntax errors carry a position");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("line"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_shape_reports_parse_without_position() {
        let path = temp_path("wrong_shape.json");
        // valid JSON, wrong type for a Problem
        std::fs::write(&path, "[1, 2, 3]").expect("writes");
        let err = load_problem(&path).expect_err("wrong shape must fail");
        assert!(matches!(err, PersistError::Parse { line: None, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_round_trips_and_skips_blank_lines() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Rec {
            id: u32,
            score: f64,
        }
        let items = vec![
            Rec { id: 1, score: 0.5 },
            Rec { id: 2, score: 0.75 },
        ];
        let path = temp_path("stream.jsonl");
        save_jsonl(&items, &path).expect("stream saves");
        // appended runs concatenate
        let mut text = std::fs::read_to_string(&path).expect("readable");
        text.push('\n'); // blank separator
        text.push_str("{\"id\":3,\"score\":1.0}\n");
        std::fs::write(&path, text).expect("appends");
        let back: Vec<Rec> = load_jsonl(&path).expect("stream loads");
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], items[0]);
        assert_eq!(back[2].id, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_to_unwritable_target_reports_typed_io_error() {
        // A read-only directory does not stop root, so use targets that
        // fail for every uid: the target path IS a directory, and the
        // target's parent is a regular file.
        let p = generate(&tiny_cluster(3));
        let dir_target = temp_path("is_a_directory");
        std::fs::create_dir_all(&dir_target).expect("dir creates");
        let err = save_problem(&p, &dir_target).expect_err("directory target must fail");
        assert!(matches!(err, PersistError::Io { .. }), "got {err:?}");
        assert!(err.to_string().contains("is_a_directory"));

        let file_parent = temp_path("not_a_dir");
        std::fs::write(&file_parent, b"plain file").expect("writes");
        let under_file = file_parent.join("stream.jsonl");
        let err = save_jsonl(&[1u32, 2, 3], &under_file).expect_err("file parent must fail");
        assert!(matches!(err, PersistError::Io { .. }), "got {err:?}");
        assert!(err.to_string().contains("not_a_dir"));
        std::fs::remove_file(&file_parent).ok();
    }

    #[test]
    fn sync_failures_are_a_distinct_variant() {
        // fsync failure cannot be provoked portably in a unit test;
        // assert the variant's contract (display + source chain) so the
        // journal layer can match on it.
        let err = PersistError::Sync {
            path: PathBuf::from("/tmp/wal/seg-1.wal"),
            source: io::Error::new(io::ErrorKind::Other, "EIO"),
        };
        assert!(err.to_string().contains("fsync failed"));
        assert!(err.to_string().contains("seg-1.wal"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn jsonl_malformed_line_reports_its_position() {
        let path = temp_path("bad_stream.jsonl");
        std::fs::write(&path, "{\"id\":1,\"score\":0.5}\n{broken\n").expect("writes");
        #[derive(serde::Deserialize, Debug)]
        #[allow(dead_code)]
        struct Rec {
            id: u32,
            score: f64,
        }
        let err = load_jsonl::<Rec>(&path).expect_err("broken line must fail");
        match &err {
            PersistError::Parse { line, .. } => assert_eq!(*line, Some(2)),
            other => panic!("expected Parse, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
