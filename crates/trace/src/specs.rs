//! Canonical cluster specs: the S1–S4 analogues of the paper's M1–M4
//! (Table II, scaled per DESIGN.md §6) and the T-style training clusters.

use crate::generator::ClusterSpec;

/// The four evaluation clusters, scaled 1/10 from M1, M2, M4 and 1/1 from
/// M3 (already small), preserving service : container : machine ratios:
///
/// | Paper | #svc | #ctr | #mach | Ours | #svc | #ctr | #mach |
/// |-------|------|------|-------|------|------|------|-------|
/// | M1 | 5,904 | 25,640 | 977 | S1 | 590 | 2,564 | 98 |
/// | M2 | 10,180 | 152,833 | 5,284 | S2 | 1,018 | 15,283 | 528 |
/// | M3 | 547 | 3,485 | 96 | S3 | 547 | 3,485 | 96 |
/// | M4 | 10,682 | 113,261 | 4,365 | S4 | 1,068 | 11,326 | 436 |
pub fn s_clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec {
            name: "S1".into(),
            services: 590,
            target_containers: 2_564,
            machines: 98,
            affinity_beta: 1.5,
            affinity_fraction: 0.55,
            edge_density: 3.0,
            machine_types: 3,
            seed: 101,
            ..Default::default()
        },
        ClusterSpec {
            name: "S2".into(),
            services: 1_018,
            target_containers: 15_283,
            machines: 528,
            affinity_beta: 1.4,
            affinity_fraction: 0.6,
            edge_density: 4.0,
            machine_types: 4,
            seed: 102,
            ..Default::default()
        },
        ClusterSpec {
            name: "S3".into(),
            services: 547,
            target_containers: 3_485,
            machines: 96,
            affinity_beta: 1.7,
            affinity_fraction: 0.5,
            edge_density: 3.0,
            machine_types: 2,
            seed: 103,
            ..Default::default()
        },
        ClusterSpec {
            name: "S4".into(),
            services: 1_068,
            target_containers: 11_326,
            machines: 436,
            affinity_beta: 1.45,
            affinity_fraction: 0.6,
            edge_density: 3.5,
            machine_types: 4,
            seed: 104,
            ..Default::default()
        },
    ]
}

/// First rung of the pipeline-bench ladder: half-scale S1 and S3
/// analogues, i.e. M1 ÷ 20 and M3 ÷ 2 from Table II.
///
/// Every rung preserves the paper's container : machine ratios (M1 26.2,
/// M3 36.3 ctr/machine here), so growing up the ladder changes problem
/// *size* without changing problem *shape*:
///
/// | Rung | Specs | #svc | #ctr | #mach | ctr/mach |
/// |--------|---------|------|-------|-------|----------|
/// | medium | M1 ÷ 20 | 295 | 1,282 | 49 | 26.2 |
/// | medium | M3 ÷ 2 | 274 | 1,742 | 48 | 36.3 |
pub fn medium_clusters() -> Vec<ClusterSpec> {
    let s = s_clusters();
    [&s[0], &s[2]]
        .iter()
        .map(|spec| ClusterSpec {
            name: format!("{}-half", spec.name),
            services: spec.services / 2,
            target_containers: spec.target_containers / 2,
            machines: spec.machines / 2,
            seed: spec.seed + 100,
            ..(*spec).clone()
        })
        .collect()
}

/// Second rung of the pipeline-bench ladder: the committed S1 + S3 pair
/// (M1 ÷ 10 and M3 at full size — M3 is already small in the paper), the
/// two smaller evaluation clusters. Ratios 26.2 and 36.3 ctr/machine,
/// exactly Table II's.
pub fn large_clusters() -> Vec<ClusterSpec> {
    s_clusters()
        .into_iter()
        .filter(|spec| spec.name == "S1" || spec.name == "S3")
        .collect()
}

/// Top rung of the pipeline-bench ladder: the committed S2 + S4 pair
/// (M2 ÷ 10 and M4 ÷ 10), the two larger evaluation clusters — ~15k and
/// ~11k containers over ~500 machines each, ratios 28.9 and 26.0
/// ctr/machine, approaching the paper's M-cluster shapes as closely as
/// the scaled reproduction goes.
pub fn xl_clusters() -> Vec<ClusterSpec> {
    s_clusters()
        .into_iter()
        .filter(|spec| spec.name == "S2" || spec.name == "S4")
        .collect()
}

/// Training clusters (the paper samples 1000 subproblems from four
/// clusters T1–T4 disjoint from the test set). Smaller and with varied
/// skew so the classifier sees both CG-friendly and MIP-friendly regimes.
pub fn t_clusters(base_seed: u64) -> Vec<ClusterSpec> {
    (0..4)
        .map(|i| ClusterSpec {
            name: format!("T{}", i + 1),
            services: 120 + 60 * i,
            target_containers: 500 + 800 * i as u64,
            machines: 24 + 16 * i,
            affinity_beta: 1.3 + 0.2 * i as f64,
            affinity_fraction: 0.5 + 0.1 * (i % 2) as f64,
            edge_density: 2.5 + i as f64,
            machine_types: 2 + i % 3,
            seed: base_seed + i as u64,
            ..Default::default()
        })
        .collect()
}

/// A very small cluster for examples and fast tests.
pub fn tiny_cluster(seed: u64) -> ClusterSpec {
    ClusterSpec {
        name: "tiny".into(),
        services: 30,
        target_containers: 120,
        machines: 10,
        affinity_beta: 1.6,
        affinity_fraction: 0.6,
        edge_density: 2.5,
        community_size: 6,
        cross_traffic: 0.08,
        machine_types: 2,
        feature_machine_fraction: 0.4,
        feature_service_fraction: 0.1,
        spread_rule_fraction: 0.15,
        group_rules: 1,
        utilization: 0.5,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn s_cluster_scales_match_design_doc() {
        let specs = s_clusters();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].services, 590);
        assert_eq!(specs[1].machines, 528);
        assert_eq!(specs[2].services, 547, "M3 kept at full scale");
        // ratio check: containers per machine within 2× of the paper's
        for (spec, paper_ratio) in specs.iter().zip([26.2, 28.9, 36.3, 25.9]) {
            let ratio = spec.target_containers as f64 / spec.machines as f64;
            assert!(
                (ratio / paper_ratio - 1.0).abs() < 0.5,
                "{}: ratio {ratio} vs paper {paper_ratio}",
                spec.name
            );
        }
    }

    #[test]
    fn tiny_cluster_generates_quickly_and_validly() {
        let p = generate(&tiny_cluster(1));
        assert_eq!(p.num_services(), 30);
        assert!(p.affinity_edges.len() > 5);
    }

    #[test]
    fn ladder_rungs_preserve_m_cluster_ratios() {
        // every rung keeps containers-per-machine within 2× of the paper's
        // M-ratios (26–37), the same shape invariant as the S-clusters
        for (rung, specs) in [
            ("medium", medium_clusters()),
            ("large", large_clusters()),
            ("xl", xl_clusters()),
        ] {
            assert_eq!(specs.len(), 2, "{rung}");
            for spec in &specs {
                let ratio = spec.target_containers as f64 / spec.machines as f64;
                assert!(
                    (24.0..40.0).contains(&ratio),
                    "{rung}/{}: ctr/machine ratio {ratio:.1} outside the M-cluster band",
                    spec.name
                );
            }
        }
        // rungs grow strictly in total containers
        let total = |specs: &[ClusterSpec]| -> u64 {
            specs.iter().map(|s| s.target_containers).sum()
        };
        let (m, l, x) = (
            total(&medium_clusters()),
            total(&large_clusters()),
            total(&xl_clusters()),
        );
        assert!(m < l && l < x, "ladder must grow: {m} < {l} < {x}");
    }

    #[test]
    fn medium_clusters_are_half_scale_s1_s3() {
        let m = medium_clusters();
        assert_eq!(m[0].name, "S1-half");
        assert_eq!(m[0].services, 295);
        assert_eq!(m[0].target_containers, 1_282);
        assert_eq!(m[0].machines, 49);
        assert_eq!(m[1].name, "S3-half");
        assert_eq!(m[1].target_containers, 1_742);
        // distinct seeds so the rung is not a subsample of the S-run
        let s = s_clusters();
        assert_ne!(m[0].seed, s[0].seed);
    }

    #[test]
    fn t_clusters_are_distinct_from_s_clusters() {
        let t = t_clusters(900);
        assert_eq!(t.len(), 4);
        for spec in &t {
            assert!(spec.services < 590, "training clusters stay small");
        }
    }
}
