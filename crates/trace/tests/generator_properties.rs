//! Property tests for the trace generator: every generated cluster must be
//! structurally sound and schedulable enough that the baseline first-fit
//! can place nearly everything.

use proptest::prelude::*;
use rasa_model::FeatureMask;
use rasa_trace::{generate, ClusterSpec};

fn spec_strategy() -> impl Strategy<Value = ClusterSpec> {
    (
        5usize..120,
        20u64..600,
        3usize..40,
        1.1f64..2.2,
        0.2f64..0.9,
        1.0f64..6.0,
        1usize..5,
        0.0f64..0.5,
        0.0f64..0.4,
        0u64..10_000,
    )
        .prop_map(
            |(services, containers, machines, beta, frac, density, types, fm, fs, seed)| {
                ClusterSpec {
                    name: format!("prop{seed}"),
                    services,
                    target_containers: containers,
                    machines,
                    affinity_beta: beta,
                    affinity_fraction: frac,
                    edge_density: density,
                    machine_types: types,
                    feature_machine_fraction: fm,
                    // never require more features than are provided
                    feature_service_fraction: fs.min(fm),
                    seed,
                    ..Default::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_problems_are_structurally_sound(spec in spec_strategy()) {
        let p = generate(&spec);
        prop_assert_eq!(p.num_services(), spec.services);
        prop_assert_eq!(p.num_machines(), spec.machines);
        // edges reference valid, distinct services with positive weights
        for e in &p.affinity_edges {
            prop_assert!(e.a.idx() < p.num_services());
            prop_assert!(e.b.idx() < p.num_services());
            prop_assert!(e.a != e.b);
            prop_assert!(e.weight > 0.0);
        }
        // every feature-requiring service has at least one host
        for s in &p.services {
            if s.required_features != FeatureMask::EMPTY {
                prop_assert!(
                    p.machines.iter().any(|m| m.can_host(s.required_features)),
                    "service {} has no compatible machine",
                    s.id
                );
            }
        }
        // anti-affinity rules reference valid services with positive caps
        for rule in &p.anti_affinity {
            prop_assert!(!rule.services.is_empty());
            prop_assert!(rule.max_per_machine >= 1);
        }
    }

    #[test]
    fn utilization_guard_holds(spec in spec_strategy()) {
        let p = generate(&spec);
        let mut demand = rasa_model::ResourceVec::ZERO;
        for s in &p.services {
            demand += s.total_demand();
        }
        let mut cap = rasa_model::ResourceVec::ZERO;
        for m in &p.machines {
            cap += m.capacity;
        }
        // the guard targets 0.55; allow slack for the per-service floor of
        // one replica on very small clusters
        prop_assert!(
            demand.dominant_share(&cap) < 1.0,
            "over-committed: {:.2}",
            demand.dominant_share(&cap)
        );
    }

    #[test]
    fn generation_is_deterministic(spec in spec_strategy()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.affinity_edges.len(), b.affinity_edges.len());
    }
}
