//! Warm-start regression: a seeded cluster perturbed by one machine death
//! must re-solve through the [`SolveCache`] to the same quality as a cold
//! solve of the perturbed problem, while replaying every subproblem the
//! death did not touch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, SelectorChoice, SolveCache};
use rasa_model::{
    validate, FeatureMask, Problem, ProblemBuilder, ResourceVec, Service, ServiceId,
};

/// A seeded two-zone cluster. Each zone's services require that zone's
/// feature and have affinity only among themselves, so the partitioner
/// yields (at least) one subproblem per zone and a machine death in one
/// zone cannot reshape the other zone's subproblems.
fn seeded_two_zone_cluster(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProblemBuilder::new();
    let mut id = 0u32;
    for zone in 0..2u8 {
        let feature = FeatureMask::bit(zone as u32);
        let mut zone_services = Vec::new();
        for i in 0..4 {
            let replicas = rng.gen_range(2..=4);
            let svc = Service::new(
                ServiceId(id),
                format!("z{zone}-s{i}"),
                replicas,
                ResourceVec::cpu_mem(1.0, 1.0),
            )
            .with_features(feature);
            zone_services.push(b.add_service_full(svc));
            id += 1;
        }
        // a chain plus one chord keeps the zone one connected community
        for w in zone_services.windows(2) {
            b.add_affinity(w[0], w[1], rng.gen_range(1.0..5.0));
        }
        b.add_affinity(zone_services[0], zone_services[3], rng.gen_range(1.0..5.0));
        b.add_machines(4, ResourceVec::cpu_mem(16.0, 16.0), feature);
    }
    b.build().unwrap()
}

/// The perturbation: the last zone-1 machine dies. Zeroing its capacity
/// (rather than removing it) keeps every machine id stable, the way a real
/// cluster keeps a dead node's identity on the books until it is drained.
fn kill_machine(problem: &Problem, index: usize) -> Problem {
    let mut dead = problem.clone();
    dead.machines[index].capacity = ResourceVec::ZERO;
    dead
}

#[test]
fn machine_death_resolve_matches_cold_solve_with_cache_hits() {
    let problem = seeded_two_zone_cluster(42);
    let pipeline = RasaPipeline::new(RasaConfig {
        // the MIP pool member solves these subproblems to optimality, so
        // warm and cold runs must agree bit-for-bit on the objective
        selector: SelectorChoice::AlwaysMip,
        ..Default::default()
    });

    // round 1: populate the cache on the healthy cluster
    let cache = SolveCache::new();
    let healthy = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));
    assert!(!healthy.is_degraded());
    let healthy_stats = healthy.cache.expect("cache stats");
    assert_eq!(healthy_stats.hits, 0);
    assert!(healthy_stats.misses >= 2, "two zones → at least two solves");

    // round 2: one machine in zone 1 dies
    let dead = kill_machine(&problem, problem.machines.len() - 1);
    let cold = pipeline.optimize(&dead, None, Deadline::none());
    let warm = pipeline.optimize_with_cache(&dead, None, Deadline::none(), Some(&cache));

    // the death invalidated zone 1's subproblem but zone 0's replayed
    let stats = warm.cache.expect("cache stats");
    assert!(stats.hits >= 1, "untouched zone must replay: {stats:?}");
    assert!(stats.misses >= 1, "dead zone must re-solve: {stats:?}");
    assert!(
        stats.invalidations >= 1,
        "stale zone-1 entry must be evicted: {stats:?}"
    );
    assert!(warm.subproblems.iter().any(|r| r.cache_hit));
    assert!(warm.subproblems.iter().any(|r| !r.cache_hit));

    // warm-started quality equals the cold solve of the same problem
    assert!(
        (warm.outcome.normalized_gained_affinity - cold.outcome.normalized_gained_affinity).abs()
            < 1e-9,
        "warm {} vs cold {}",
        warm.outcome.normalized_gained_affinity,
        cold.outcome.normalized_gained_affinity
    );
    assert!(validate(&dead, &warm.outcome.placement, true).is_empty());
    assert!(validate(&dead, &cold.outcome.placement, true).is_empty());

    // and the dead machine hosts nothing
    let dead_id = dead.machines.last().unwrap().id;
    for svc in &dead.services {
        assert_eq!(
            warm.outcome.placement.count(svc.id, dead_id),
            0,
            "container placed on the dead machine"
        );
    }
}

#[test]
fn steady_state_rounds_replay_everything() {
    let problem = seeded_two_zone_cluster(7);
    let pipeline = RasaPipeline::default();
    let cache = SolveCache::new();
    let first = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));
    let second = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));
    let stats = second.cache.expect("cache stats");
    assert_eq!(stats.misses, 0, "identical round must be all hits");
    assert!(stats.hits >= 2);
    assert_eq!(stats.invalidations, 0);
    assert!(second.subproblems.iter().all(|r| r.cache_hit));
    assert!(
        (second.outcome.normalized_gained_affinity - first.outcome.normalized_gained_affinity)
            .abs()
            < 1e-12
    );
}
