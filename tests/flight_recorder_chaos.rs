//! End-to-end flight-recorder drill: a chaos run with a mid-solve machine
//! death *and* an injected solver panic must leave a black-box dump on
//! disk whose span tree reaches the solver layer and whose event log
//! records the fallback-ladder transition — the exact artifact an on-call
//! engineer would open after a degraded production solve.

#![allow(clippy::unwrap_used)]

use rasa_core::{FaultInjection, RasaConfig, RasaPipeline};
use rasa_migrate::MigrateConfig;
use rasa_model::MachineId;
use rasa_obs::{EventKind, FlightConfig, FlightRecording, BLACKBOX_SCHEMA_VERSION};
use rasa_sim::chaos::{run_chaos, ChaosEvent, ChaosSchedule};
use rasa_trace::{generate, tiny_cluster};

#[test]
fn chaos_machine_death_black_boxes_the_solve() {
    let dump_dir = std::env::temp_dir().join(format!(
        "rasa_flight_chaos_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dump_dir);
    rasa_obs::recorder().configure(FlightConfig {
        dump_dir: Some(dump_dir.clone()),
        max_dumps: 64,
        ..FlightConfig::default()
    });

    // the optimizer under test: the full pipeline, sequential so the whole
    // solve nests into one recording, with every primary solve panicking —
    // each subproblem must descend the fallback ladder
    let pipeline = RasaPipeline::new(RasaConfig {
        parallel: false,
        fault_injection: FaultInjection::PanicAlways,
        ..Default::default()
    });
    let problem = generate(&tiny_cluster(3));
    let schedule = ChaosSchedule {
        seed: 3,
        events: vec![ChaosEvent::MidSolveFailure {
            machines: vec![MachineId(0)],
        }],
    };
    let report = run_chaos(&problem, &pipeline, &schedule, &MigrateConfig::default());
    rasa_obs::recorder().set_enabled(false);
    assert!(report.is_clean(), "violations: {:?}", report.violations);

    // the fault round must have produced a parseable black box
    let dumps: Vec<FlightRecording> = std::fs::read_dir(&dump_dir)
        .expect("dump dir exists")
        .map(|e| std::fs::read_to_string(e.unwrap().path()).unwrap())
        .map(|text| FlightRecording::from_json(&text).expect("dump parses"))
        .collect();
    assert!(!dumps.is_empty(), "no black-box dumps written");
    let round = dumps
        .iter()
        .find(|d| d.verdict == "mid_solve_failure")
        .expect("fault round was dumped");
    assert_eq!(round.schema_version, BLACKBOX_SCHEMA_VERSION);
    assert!(round.degraded);
    assert!(!round.sampled, "degraded dumps are unconditional");

    // span tree reaches the solver layer: chaos round → pipeline →
    // subproblem guard → ladder rung → an actual solver span
    assert_eq!(round.root.name, "chaos.round");
    for span in ["pipeline.run", "pipeline.solve", "solve.subproblem", "solve.rung"] {
        assert!(round.root.find(span).is_some(), "span {span} missing");
    }
    let solver_depth = ["mip.bnb", "lp.simplex", "cg.solve"]
        .iter()
        .filter_map(|s| round.root.depth_of(s))
        .max()
        .expect("no solver-layer span in the dump");
    assert!(
        solver_depth >= 5,
        "solver span too shallow: depth {solver_depth}"
    );

    // the injected panic forced the ladder: the transition event must name
    // the rung walked away from
    let transitions: Vec<_> = round.events_of(EventKind::FallbackTransition).collect();
    assert!(
        !transitions.is_empty(),
        "no fallback-ladder transition recorded"
    );
    assert!(
        transitions.iter().any(|e| e.field("to_rung").is_some()),
        "transition events carry the target rung"
    );

    let _ = std::fs::remove_dir_all(&dump_dir);
}
