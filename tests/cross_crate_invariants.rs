//! Property-based integration tests spanning crates: every scheduler in the
//! repository must emit constraint-respecting placements on randomized
//! clusters, and migration plans between any two schedules must verify.

use proptest::prelude::*;
use rasa_baselines::{Applsci19, K8sPlus, Original, Pop};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, Scheduler};
use rasa_migrate::{plan_migration, replay_plan, MigrateConfig};
use rasa_model::{gained_affinity, validate, ContainerAssignment};
use rasa_trace::{generate, ClusterSpec};
use std::time::Duration;

fn spec_strategy() -> impl Strategy<Value = ClusterSpec> {
    (
        10usize..40, // services
        40u64..160,  // containers
        6usize..16,  // machines
        1.2f64..2.0, // beta
        0.3f64..0.8, // affinity fraction
        1.5f64..4.0, // edge density
        1usize..4,   // machine types
        0u64..1000,  // seed
    )
        .prop_map(
            |(services, containers, machines, beta, frac, density, types, seed)| ClusterSpec {
                name: format!("prop-{seed}"),
                services,
                target_containers: containers,
                machines,
                affinity_beta: beta,
                affinity_fraction: frac,
                edge_density: density,
                machine_types: types,
                utilization: 0.5,
                seed,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_scheduler_respects_constraints(spec in spec_strategy()) {
        let problem = generate(&spec);
        let deadline = Deadline::after(Duration::from_secs(8));
        let rasa = RasaPipeline::new(RasaConfig::default());
        let k8s_plus = K8sPlus::default();
        let pop = Pop::default();
        let applsci = Applsci19::default();
        let schedulers: Vec<(&str, &dyn Scheduler)> = vec![
            ("ORIGINAL", &Original),
            ("K8s+", &k8s_plus),
            ("POP", &pop),
            ("APPLSCI19", &applsci),
            ("RASA", &rasa),
        ];
        for (name, s) in schedulers {
            let out = s.schedule(&problem, deadline);
            let violations = validate(&problem, &out.placement, false);
            prop_assert!(violations.is_empty(), "{}: {:?}", name, violations);
            // reported objective must match a recomputation
            let recomputed = gained_affinity(&problem, &out.placement);
            prop_assert!((recomputed - out.gained_affinity).abs() < 1e-6,
                "{}: reported {} vs recomputed {}", name, out.gained_affinity, recomputed);
            // no service over its SLA count
            for svc in &problem.services {
                prop_assert!(out.placement.placed_count(svc.id) <= svc.replicas,
                    "{}: {} overplaced", name, svc.id);
            }
        }
    }

    #[test]
    fn migration_between_any_two_schedules_verifies(spec in spec_strategy()) {
        let problem = generate(&spec);
        let from_placement = Original.schedule(&problem, Deadline::none()).placement;
        let to_placement = K8sPlus::default().schedule(&problem, Deadline::none()).placement;
        // only migrate when both schedulers placed identical per-service counts
        let counts_match = problem.services.iter().all(|s| {
            from_placement.placed_count(s.id) == to_placement.placed_count(s.id)
        });
        prop_assume!(counts_match);
        let from = ContainerAssignment::materialize(&problem, &from_placement);
        match plan_migration(&problem, &from, &to_placement, &MigrateConfig::default()) {
            Ok(plan) => {
                replay_plan(&problem, &from, &to_placement, &plan, 0.75)
                    .expect("verified plan");
            }
            Err(rasa_migrate::MigrateError::Stuck { .. }) => {
                // legal outcome for adversarial instances; nothing to verify
            }
            Err(e) => prop_assert!(false, "unexpected planning error: {e}"),
        }
    }

    #[test]
    fn rasa_dominates_original(spec in spec_strategy()) {
        let problem = generate(&spec);
        let rasa = RasaPipeline::new(RasaConfig::default())
            .schedule(&problem, Deadline::after(Duration::from_secs(8)));
        let orig = Original.schedule(&problem, Deadline::none());
        prop_assert!(
            rasa.gained_affinity >= orig.gained_affinity - 1e-6,
            "RASA {} < ORIGINAL {}", rasa.gained_affinity, orig.gained_affinity
        );
    }
}
