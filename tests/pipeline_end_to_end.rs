//! End-to-end integration tests: the full RASA pipeline on generated
//! clusters, including the optimize-and-migrate flow of Fig 3.

use rasa_core::{
    Deadline, MigrateConfig, PartitionStrategy, RasaConfig, RasaPipeline, Scheduler, SelectorChoice,
};
use rasa_migrate::replay_plan;
use rasa_model::{validate, ContainerAssignment};
use rasa_trace::{generate, tiny_cluster, ClusterSpec};
use std::time::Duration;

fn medium_cluster(seed: u64) -> rasa_model::Problem {
    generate(&ClusterSpec {
        name: "itest".into(),
        services: 56,
        target_containers: 260,
        machines: 16,
        affinity_beta: 1.5,
        affinity_fraction: 0.6,
        edge_density: 3.0,
        machine_types: 3,
        seed,
        ..Default::default()
    })
}

#[test]
fn pipeline_produces_feasible_complete_schedules() {
    let problem = medium_cluster(1);
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let run = pipeline.optimize(&problem, None, Deadline::after(Duration::from_secs(20)));
    // feasible except possibly SLA (capacity may genuinely not allow all)
    assert!(validate(&problem, &run.outcome.placement, false).is_empty());
    // in this sizing, capacity comfortably fits everything
    let violations = validate(&problem, &run.outcome.placement, true);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(run.outcome.normalized_gained_affinity > 0.0);
    assert!(!run.subproblems.is_empty());
}

#[test]
fn pipeline_beats_a_scattered_baseline_substantially() {
    use rasa_baselines::Original;
    let problem = medium_cluster(3);
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let rasa = pipeline.schedule(&problem, Deadline::after(Duration::from_secs(20)));
    let original = Original.schedule(&problem, Deadline::none());
    assert!(
        rasa.normalized_gained_affinity >= original.normalized_gained_affinity,
        "RASA {} vs ORIGINAL {}",
        rasa.normalized_gained_affinity,
        original.normalized_gained_affinity
    );
    // the paper reports >13× over ORIGINAL; on small clusters demand a clear win
    assert!(
        rasa.normalized_gained_affinity >= 2.0 * original.normalized_gained_affinity
            || rasa.normalized_gained_affinity > 0.8,
        "RASA {} vs ORIGINAL {}",
        rasa.normalized_gained_affinity,
        original.normalized_gained_affinity
    );
}

#[test]
fn pipeline_is_deterministic_for_a_seed() {
    let problem = generate(&tiny_cluster(5));
    let pipeline = RasaPipeline::new(RasaConfig {
        parallel: false, // deadline slicing differs under thread jitter
        ..Default::default()
    });
    let a = pipeline.optimize(&problem, None, Deadline::none());
    let b = pipeline.optimize(&problem, None, Deadline::none());
    assert_eq!(a.outcome.placement, b.outcome.placement);
    assert_eq!(a.partition_loss, b.partition_loss);
}

#[test]
fn parallel_and_sequential_agree_without_deadline() {
    let problem = generate(&tiny_cluster(6));
    let par = RasaPipeline::new(RasaConfig {
        parallel: true,
        ..Default::default()
    })
    .optimize(&problem, None, Deadline::none());
    let seq = RasaPipeline::new(RasaConfig {
        parallel: false,
        ..Default::default()
    })
    .optimize(&problem, None, Deadline::none());
    // identical subproblems and deterministic solvers → identical objective
    assert!(
        (par.outcome.gained_affinity - seq.outcome.gained_affinity).abs() < 1e-6,
        "par {} vs seq {}",
        par.outcome.gained_affinity,
        seq.outcome.gained_affinity
    );
}

#[test]
fn optimize_and_plan_round_trips_through_migration() {
    use rasa_baselines::Original;
    let problem = generate(&tiny_cluster(8));
    let start = Original.schedule(&problem, Deadline::none()).placement;
    let current = ContainerAssignment::materialize(&problem, &start);
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let migrate = MigrateConfig::default();
    let (run, plan) = pipeline
        .optimize_and_plan(&problem, &current, Deadline::none(), &migrate)
        .expect("plan");
    replay_plan(&problem, &current, &run.outcome.placement, &plan, 0.75)
        .expect("verified migration");
    assert!(run.outcome.normalized_gained_affinity > 0.3);
}

#[test]
fn all_partition_strategies_run_through_the_pipeline() {
    let problem = generate(&tiny_cluster(9));
    for strategy in [
        PartitionStrategy::NoPartition,
        PartitionStrategy::Random,
        PartitionStrategy::Kahip,
        PartitionStrategy::MultiStage,
    ] {
        let pipeline = RasaPipeline::new(RasaConfig {
            strategy,
            ..Default::default()
        });
        let run = pipeline.optimize(&problem, None, Deadline::after(Duration::from_secs(15)));
        assert!(
            validate(&problem, &run.outcome.placement, false).is_empty(),
            "{strategy:?}"
        );
    }
}

#[test]
fn all_selector_choices_run_through_the_pipeline() {
    let problem = generate(&tiny_cluster(10));
    for selector in [
        SelectorChoice::Heuristic,
        SelectorChoice::AlwaysCg,
        SelectorChoice::AlwaysMip,
    ] {
        let pipeline = RasaPipeline::new(RasaConfig {
            selector,
            ..Default::default()
        });
        let run = pipeline.optimize(&problem, None, Deadline::after(Duration::from_secs(15)));
        assert!(validate(&problem, &run.outcome.placement, false).is_empty());
        assert!(run.outcome.normalized_gained_affinity > 0.0);
    }
}

#[test]
fn deadline_is_respected_approximately() {
    let problem = medium_cluster(11);
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let budget = Duration::from_millis(1500);
    let start = std::time::Instant::now();
    let run = pipeline.optimize(&problem, None, Deadline::after(budget));
    let elapsed = start.elapsed();
    // partitioning + per-node LP solves can overshoot a little, but not 10×
    assert!(
        elapsed < budget * 8,
        "took {elapsed:?} against a {budget:?} budget"
    );
    assert!(validate(&problem, &run.outcome.placement, false).is_empty());
}
