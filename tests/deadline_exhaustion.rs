//! Deadline-exhaustion suite: every `Scheduler` implementation, handed an
//! already-expired `Deadline`, must return a *feasible* (possibly partial)
//! placement, must not panic, and must report `completed = false`. This is
//! the contract the fault-isolated solve layer (`rasa_core::solve_guard`)
//! and the chaos harness (`rasa_sim::chaos`) rely on: an out-of-budget
//! solver degrades, it never aborts.

use rasa_baselines::{Applsci19, K8sPlus, Original, Pop};
use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_model::validate;
use rasa_solver::{ColumnGeneration, MipBased, Scheduler};
use rasa_trace::{generate, tiny_cluster};
use std::time::Duration;

fn expired() -> Deadline {
    Deadline::after(Duration::ZERO)
}

#[test]
fn every_scheduler_survives_an_expired_deadline() {
    let problem = generate(&tiny_cluster(5));
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MipBased::new()),
        Box::new(ColumnGeneration::new()),
        Box::new(Original),
        Box::new(K8sPlus::default()),
        Box::new(Pop::default()),
        Box::new(Applsci19::default()),
    ];
    for s in &schedulers {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.schedule(&problem, expired())
        }))
        .unwrap_or_else(|_| panic!("{} panicked under an expired deadline", s.name()));
        assert!(
            !out.completed,
            "{} claims completion with zero budget",
            s.name()
        );
        // partial is fine; infeasible is not (SLA check off for partials)
        assert!(
            validate(&problem, &out.placement, false).is_empty(),
            "{} returned an infeasible placement under an expired deadline",
            s.name()
        );
    }
}

#[test]
fn pipeline_survives_an_expired_deadline() {
    let problem = generate(&tiny_cluster(5));
    for parallel in [false, true] {
        let pipeline = RasaPipeline::new(RasaConfig {
            parallel,
            ..Default::default()
        });
        let run = pipeline.optimize(&problem, None, expired());
        // the guarded solve layer falls back to greedy completion per
        // subproblem, so the merged result is feasible end to end
        assert!(
            validate(&problem, &run.outcome.placement, false).is_empty(),
            "pipeline (parallel={parallel}) produced an infeasible placement"
        );
        assert!(!run.outcome.completed);
    }
}

#[test]
fn sequential_slicing_under_a_tiny_live_budget_stays_feasible() {
    // not yet expired, but far too small for the solvers: the per-subproblem
    // slices shrink as the budget drains and the run must stay feasible
    let problem = generate(&tiny_cluster(6));
    let pipeline = RasaPipeline::new(RasaConfig {
        parallel: false,
        ..Default::default()
    });
    let run = pipeline.optimize(&problem, None, Deadline::after(Duration::from_micros(200)));
    assert!(validate(&problem, &run.outcome.placement, false).is_empty());
}
