//! Corruption-chaos acceptance drill: a deliberately poisoned
//! [`SolveCache`] entry must be caught by the certification gate, black-
//! boxed by the flight recorder, and re-solved through the fallback
//! ladder — and a long seeded corruption campaign must finish with zero
//! panics and zero uncertified placements.

#![allow(clippy::unwrap_used)]

use rasa_core::{Deadline, RasaConfig, RasaPipeline, SolveCache};
use rasa_model::{MachineId, ServiceId};
use rasa_obs::{EventKind, FlightConfig, FlightRecording, BLACKBOX_SCHEMA_VERSION};
use rasa_sim::corruption::run_corruption_campaign;
use rasa_trace::{generate, tiny_cluster};
use std::sync::Mutex;

/// The flight recorder is process-global; serialize the tests so the
/// campaign's own degraded rounds cannot dump into the poisoned-cache
/// test's directory mid-assertion.
static SERIAL: Mutex<()> = Mutex::new(());

/// Gate 2 on the replay path, end to end: poison every cached entry —
/// one structurally (an out-of-range machine that would index out of
/// bounds inside validation), the rest by objective — then assert the
/// warm round replays nothing, reproduces the honest objective, and
/// leaves a `certify_failed` black box naming the cache as the source.
#[test]
fn poisoned_cache_entry_is_certify_rejected_and_black_boxed() {
    let _serial = SERIAL.lock().unwrap();
    let dump_dir = std::env::temp_dir().join(format!(
        "rasa_corruption_chaos_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dump_dir);
    rasa_obs::recorder().configure(FlightConfig {
        dump_dir: Some(dump_dir.clone()),
        max_dumps: 64,
        ..FlightConfig::default()
    });

    // sequential so each round nests into a single recording
    let pipeline = RasaPipeline::new(RasaConfig {
        parallel: false,
        ..Default::default()
    });
    let problem = generate(&tiny_cluster(11));
    let cache = SolveCache::new();
    let cold = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));

    let fps = cache.fingerprints();
    assert!(!fps.is_empty(), "cold round populated the cache");
    for (i, fp) in fps.iter().enumerate() {
        let mut entry = cache.lookup(*fp).expect("cached entry");
        if i == 0 {
            // structural poison: a machine id far past the fleet
            entry.placement.add(ServiceId(0), MachineId(9_999), 1);
        } else {
            // objective poison: claimed affinity no longer matches
            entry.gained_affinity += 100.0;
        }
        cache.store(*fp, entry);
    }

    let warm = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));
    rasa_obs::recorder().set_enabled(false);

    let stats = warm.cache.expect("stats with cache");
    assert_eq!(stats.hits, 0, "no poisoned entry may replay");
    assert_eq!(stats.misses, fps.len(), "every poisoned entry re-solved");
    assert!(
        (warm.outcome.gained_affinity - cold.outcome.gained_affinity).abs() < 1e-9,
        "re-solve reproduces the honest objective: cold {} vs warm {}",
        cold.outcome.gained_affinity,
        warm.outcome.gained_affinity
    );

    // the fresh solves overwrote the poison, so a third round replays
    let round3 = pipeline.optimize_with_cache(&problem, None, Deadline::none(), Some(&cache));
    assert_eq!(round3.cache.expect("stats").hits, fps.len());

    // the warm round left a black box: verdict `certify_failed`, with a
    // certification-failure event per poisoned entry naming the cache
    let dumps: Vec<FlightRecording> = std::fs::read_dir(&dump_dir)
        .expect("dump dir exists")
        .map(|e| std::fs::read_to_string(e.unwrap().path()).unwrap())
        .map(|text| FlightRecording::from_json(&text).expect("dump parses"))
        .collect();
    let round = dumps
        .iter()
        .find(|d| d.verdict == "certify_failed")
        .expect("poisoned round was dumped");
    assert_eq!(round.schema_version, BLACKBOX_SCHEMA_VERSION);
    assert!(round.degraded, "cache poisoning degrades the round");
    assert_eq!(round.root.name, "pipeline.run");
    let failures: Vec<_> = round.events_of(EventKind::CertifyFailure).collect();
    assert_eq!(failures.len(), fps.len(), "one event per poisoned entry");
    assert!(
        failures.iter().all(|e| e.detail == "solve_cache"),
        "events name the replay path as the source"
    );
    assert!(
        failures
            .iter()
            .all(|e| e.field("claimed_objective").is_some()
                && e.field("recomputed_objective").is_some()),
        "events carry the claimed/recomputed objectives"
    );

    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// The acceptance bar from the issue: at least 50 seeded corruption
/// rounds — cycling every injector — with zero panics and zero
/// uncertified placements. The CI chaos job runs the same campaign via
/// the `chaos corruption` binary with the same seed.
#[test]
fn fifty_five_round_corruption_campaign_is_clean() {
    let _serial = SERIAL.lock().unwrap();
    let report = run_corruption_campaign(42, 55);
    assert_eq!(report.rounds.len(), 55);
    assert!(
        report.is_clean(),
        "panics: {}, uncertified: {}, dirty rounds: {:?}",
        report.panics,
        report.uncertified,
        report
            .rounds
            .iter()
            .filter(|r| r.panicked || !r.certified)
            .collect::<Vec<_>>()
    );
    assert!(
        report.rounds.iter().any(|r| r.quarantined > 0),
        "campaign exercised the admission gate"
    );
}
