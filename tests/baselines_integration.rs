//! Integration tests for the relative behaviour of RASA vs the baselines —
//! small-scale analogues of the orderings the paper's Figs 6, 8 and 9 show.
//!
//! Cluster sizes are deliberately small so the assertions hold under
//! unoptimized (debug) builds too; the full-scale orderings are produced by
//! the release-mode experiment binaries in `rasa-bench`.

use rasa_baselines::{Applsci19, K8sPlus, Original, Pop};
use rasa_core::{Deadline, RasaConfig, RasaPipeline, Scheduler, SelectorChoice};
use rasa_trace::{generate, ClusterSpec};
use std::time::Duration;

fn cluster(seed: u64) -> rasa_model::Problem {
    generate(&ClusterSpec {
        name: "bl".into(),
        services: 48,
        target_containers: 220,
        machines: 14,
        affinity_beta: 1.5,
        affinity_fraction: 0.6,
        edge_density: 3.0,
        community_size: 8,
        machine_types: 4,
        seed,
        ..Default::default()
    })
}

#[test]
fn fig9_ordering_rasa_leads() {
    // Average over 3 clusters to damp instance noise, like the paper's
    // averages over M1–M4.
    let deadline = || Deadline::after(Duration::from_secs(20));
    let mut totals = std::collections::BTreeMap::new();
    for seed in [21, 22, 23] {
        let problem = cluster(seed);
        let rasa_pipeline = RasaPipeline::new(RasaConfig::default());
        let results: Vec<(&str, f64)> = vec![
            (
                "RASA",
                rasa_pipeline
                    .schedule(&problem, deadline())
                    .normalized_gained_affinity,
            ),
            (
                "K8s+",
                K8sPlus::default()
                    .schedule(&problem, deadline())
                    .normalized_gained_affinity,
            ),
            (
                "POP",
                Pop::default()
                    .schedule(&problem, deadline())
                    .normalized_gained_affinity,
            ),
            (
                "APPLSCI19",
                Applsci19::default()
                    .schedule(&problem, deadline())
                    .normalized_gained_affinity,
            ),
            (
                "ORIGINAL",
                Original
                    .schedule(&problem, deadline())
                    .normalized_gained_affinity,
            ),
        ];
        for (name, v) in results {
            *totals.entry(name).or_insert(0.0) += v;
        }
    }
    let avg = |name: &str| totals[name] / 3.0;
    // the paper's headline ordering: RASA clearly above every baseline on
    // average (small tolerance absorbs instance noise at this scale)
    for other in ["K8s+", "POP", "ORIGINAL"] {
        assert!(
            avg("RASA") >= avg(other) - 0.04,
            "RASA {} vs {} {}",
            avg("RASA"),
            other,
            avg(other)
        );
    }
    // the APPLSCI19 margin depends on solver throughput: RASA's quality is
    // deadline-bound while APPLSCI19's cheap pack is not, so the strict
    // comparison only holds with optimized solver code (release builds —
    // the regime every recorded experiment runs in)
    let applsci_tolerance = if cfg!(debug_assertions) { 0.15 } else { 0.04 };
    assert!(
        avg("RASA") >= avg("APPLSCI19") - applsci_tolerance,
        "RASA {} vs APPLSCI19 {}",
        avg("RASA"),
        avg("APPLSCI19")
    );
    // the headline factor: RASA ≫ ORIGINAL (paper: 13.8×; demand ≥ 2× here)
    assert!(
        avg("RASA") >= 2.0 * avg("ORIGINAL"),
        "RASA {} vs ORIGINAL {}",
        avg("RASA"),
        avg("ORIGINAL")
    );
}

#[test]
fn pop_never_beats_the_unsplit_solve_without_time_pressure() {
    // On a small cluster where every part solves to optimality, random
    // splitting can only lose affinity (POP's granularity assumption).
    let problem = generate(&ClusterSpec {
        name: "pop".into(),
        services: 12,
        target_containers: 50,
        machines: 5,
        machine_types: 2,
        seed: 31,
        ..Default::default()
    });
    let whole = Pop::with_parts(1, 7).schedule(&problem, Deadline::none());
    for parts in [3, 6] {
        let split = Pop::with_parts(parts, 7).schedule(&problem, Deadline::none());
        assert!(
            split.gained_affinity <= whole.gained_affinity + 1e-6,
            "{parts} parts {} vs whole {}",
            split.gained_affinity,
            whole.gained_affinity
        );
    }
}

#[test]
fn selector_ablations_all_work_and_selection_is_sane() {
    let problem = cluster(41);
    let deadline = || Deadline::after(Duration::from_secs(20));
    let mut results = Vec::new();
    for selector in [
        SelectorChoice::AlwaysCg,
        SelectorChoice::AlwaysMip,
        SelectorChoice::Heuristic,
    ] {
        let label = selector.label();
        let run = RasaPipeline::new(RasaConfig {
            selector,
            ..Default::default()
        })
        .schedule(&problem, deadline());
        results.push((label, run.normalized_gained_affinity));
    }
    // all selections should be in the same ballpark on a small cluster
    let best = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    for (label, v) in &results {
        assert!(
            *v >= 0.5 * best,
            "{label} collapsed: {v} vs best {best} ({results:?})"
        );
    }
}

#[test]
fn k8s_plus_beats_original_on_affinity() {
    let mut wins = 0;
    for seed in [51, 52, 53] {
        let problem = cluster(seed);
        let plus = K8sPlus::default().schedule(&problem, Deadline::none());
        let orig = Original.schedule(&problem, Deadline::none());
        if plus.gained_affinity > orig.gained_affinity {
            wins += 1;
        }
    }
    assert!(wins >= 2, "K8s+ should usually beat ORIGINAL, won {wins}/3");
}
