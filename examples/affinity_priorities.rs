//! Priority-weighted affinity (paper §II-B: "the cluster manager can set up
//! multiple priority levels… assign a higher weight to the traffic as the
//! affinity of their services").
//!
//! Two tenant applications compete for the same machines; the
//! latency-critical one sets a high network-performance priority and wins
//! the collocation budget.
//!
//! Run with: `cargo run -p rasa-core --example affinity_priorities`

use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_model::{
    gained_affinity_of_edge, FeatureMask, Problem, ProblemBuilder, ResourceVec, Service, ServiceId,
};

/// Build the contended cluster; `critical_priority` is the priority weight
/// of the latency-critical app's services.
fn build(critical_priority: f64) -> Problem {
    let mut b = ProblemBuilder::new();
    // latency-critical app: api ↔ cache, raw traffic 50
    let api = b.add_service_full(
        Service::new(ServiceId(0), "api", 3, ResourceVec::cpu_mem(2000.0, 4096.0))
            .with_priority(critical_priority),
    );
    let cache = b.add_service_full(
        Service::new(
            ServiceId(0),
            "cache",
            3,
            ResourceVec::cpu_mem(2000.0, 8192.0),
        )
        .with_priority(critical_priority),
    );
    // batch app: worker ↔ queue, raw traffic 80 (more traffic, lower value)
    let worker = b.add_service("worker", 3, ResourceVec::cpu_mem(2000.0, 4096.0));
    let queue = b.add_service("queue", 3, ResourceVec::cpu_mem(2000.0, 8192.0));
    // machines fit exactly one app pair each — collocation is contended
    b.add_machines(
        3,
        ResourceVec::new(4500.0, 16384.0, 10_000.0, 100.0),
        FeatureMask::EMPTY,
    );
    b.add_affinity(api, cache, 50.0);
    b.add_affinity(worker, queue, 80.0);
    b.build().unwrap()
}

fn localized(problem: &Problem, placement: &rasa_model::Placement, edge: usize) -> f64 {
    gained_affinity_of_edge(problem, placement, edge) / problem.affinity_edges[edge].weight
}

fn main() {
    let pipeline = RasaPipeline::new(RasaConfig::default());

    println!("=== neutral priorities (traffic volume decides) ===");
    let neutral = build(1.0);
    let run = pipeline.optimize(&neutral, None, Deadline::none());
    println!(
        "api↔cache localized: {:>5.1}%   worker↔queue localized: {:>5.1}%",
        100.0 * localized(&neutral, &run.outcome.placement, 0),
        100.0 * localized(&neutral, &run.outcome.placement, 1),
    );

    println!("\n=== api/cache at priority 4× ===");
    let boosted = build(4.0);
    let run2 = pipeline.optimize(&boosted, None, Deadline::none());
    let crit = localized(&boosted, &run2.outcome.placement, 0);
    let batch = localized(&boosted, &run2.outcome.placement, 1);
    println!(
        "api↔cache localized: {:>5.1}%   worker↔queue localized: {:>5.1}%",
        100.0 * crit,
        100.0 * batch,
    );
    assert!(
        crit >= localized(&neutral, &run.outcome.placement, 0),
        "priority must not reduce the critical pair's localization"
    );
    println!(
        "\nPriority weighting shifted the contended collocation budget toward the critical app."
    );
}
