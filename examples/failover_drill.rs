//! Failover drill: a machine dies while a RASA migration is executing.
//! The executor loses the machine's containers, replans on the degraded
//! cluster, and restores the SLA.
//!
//! Run with: `cargo run -p rasa-core --example failover_drill`

use rasa_baselines::Original;
use rasa_core::{Deadline, MigrateConfig, RasaConfig, RasaPipeline};
use rasa_model::{validate, ContainerAssignment, MachineId, ResourceVec};
use rasa_sim::execute_with_failure;
use rasa_solver::Scheduler;
use rasa_trace::{generate, tiny_cluster};

fn main() {
    let problem = generate(&tiny_cluster(9));
    println!(
        "cluster: {} services / {} machines",
        problem.num_services(),
        problem.num_machines()
    );

    // running state + optimized target + migration plan
    let start = Original.schedule(&problem, Deadline::none()).placement;
    let current = ContainerAssignment::materialize(&problem, &start);
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let (run, plan) = pipeline
        .optimize_and_plan(
            &problem,
            &current,
            Deadline::none(),
            &MigrateConfig::default(),
        )
        .expect("plan");
    println!(
        "migration plan: {} moves in {} steps toward {:.1}% localization",
        plan.total_moves(),
        plan.steps.len(),
        100.0 * run.outcome.normalized_gained_affinity
    );

    // drill: the busiest machine dies halfway through execution
    let usage = run.outcome.placement.machine_usage(&problem);
    let victim = MachineId(
        usage
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.dominant_share(&problem.machines[a.0].capacity)
                    .partial_cmp(&b.1.dominant_share(&problem.machines[b.0].capacity))
                    .unwrap()
            })
            .map(|(i, _)| i as u32)
            .unwrap(),
    );
    let fail_step = plan.steps.len() / 2;
    println!("\n💥 injecting failure: {victim} dies after step {fail_step}");

    let mut state = current.clone();
    let report = execute_with_failure(
        &problem,
        &mut state,
        &plan,
        &run.outcome.placement,
        Some((fail_step, victim)),
        &MigrateConfig::default(),
    )
    .expect("recovery");
    println!(
        "executed {} steps; lost {} containers; recovery recreated/moved {} in {} extra steps",
        report.executed_steps, report.lost_containers, report.recovery_moves, report.recovery_steps
    );

    // verify: full SLA on the degraded cluster, nothing on the dead machine
    let final_placement = state.to_placement();
    let mut degraded = problem.clone();
    degraded.machines[victim.idx()].capacity = ResourceVec::ZERO;
    let violations = validate(&degraded, &final_placement, true);
    assert!(violations.is_empty(), "{violations:?}");
    for svc in &problem.services {
        assert_eq!(final_placement.count(svc.id, victim), 0);
    }
    println!(
        "\n✅ recovered: every service back at full replica count, {victim} empty, all constraints hold"
    );
}
