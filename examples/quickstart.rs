//! Quickstart: define a tiny microservice cluster by hand, run the RASA
//! pipeline, and inspect the optimized placement.
//!
//! Run with: `cargo run -p rasa-core --example quickstart`

use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_model::{normalized_gained_affinity, FeatureMask, ProblemBuilder, ResourceVec};

fn main() {
    // A web tier talking to a cache and a database-proxy sidecar; an
    // unrelated batch service that carries no affinity.
    let mut builder = ProblemBuilder::new();
    let web = builder.add_service("web", 4, ResourceVec::cpu_mem(1000.0, 2048.0));
    let cache = builder.add_service("cache", 4, ResourceVec::cpu_mem(500.0, 4096.0));
    let dbproxy = builder.add_service("db-proxy", 2, ResourceVec::cpu_mem(500.0, 1024.0));
    let _batch = builder.add_service("batch", 3, ResourceVec::cpu_mem(2000.0, 2048.0));
    builder.add_machines(
        4,
        ResourceVec::new(8000.0, 32768.0, 10_000.0, 500.0),
        FeatureMask::EMPTY,
    );
    // measured traffic volumes (the affinity weights)
    builder.add_affinity(web, cache, 120.0);
    builder.add_affinity(web, dbproxy, 40.0);
    // spread rule: at most 2 web containers per machine
    builder.add_anti_affinity(vec![web], 2);
    let problem = builder.build().expect("valid problem");

    let pipeline = RasaPipeline::new(RasaConfig::default());
    let run = pipeline.optimize(&problem, None, Deadline::none());

    println!("=== RASA quickstart ===");
    println!("total affinity (traffic): {:.1}", problem.total_affinity());
    println!(
        "gained affinity: {:.1} ({:.1}% of traffic localized)",
        run.outcome.gained_affinity,
        100.0 * run.outcome.normalized_gained_affinity
    );
    println!(
        "partition: {} subproblems, {} non-affinity services, loss {:.2}",
        run.subproblems.len(),
        run.partition.non_affinity,
        run.partition_loss
    );
    for report in &run.subproblems {
        println!(
            "  subproblem: {} services / {} machines → {:?}, gained {:.1}",
            report.services, report.machines, report.algorithm, report.gained_affinity
        );
    }
    println!("\nplacement (service → machine × count):");
    for svc in &problem.services {
        let spots: Vec<String> = run
            .outcome
            .placement
            .machines_of(svc.id)
            .map(|(m, c)| format!("{m}×{c}"))
            .collect();
        println!("  {:<10} {}", svc.name, spots.join(", "));
    }
    assert!(normalized_gained_affinity(&problem, &run.outcome.placement) > 0.9);
    println!("\nOK: >90% of traffic localized.");
}
