//! The production workflow (Fig 3): a churning cluster continuously
//! re-optimized by the half-hourly CronJob, with latency/error tracking —
//! a miniature of the Section V-F deployment.
//!
//! Run with: `cargo run -p rasa-core --release --example continuous_optimization`

use rasa_baselines::Original;
use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_sim::{run_production_experiment, CronJobConfig, DataCollector, ExperimentConfig};
use rasa_solver::Scheduler;
use rasa_trace::{generate, tiny_cluster};
use std::time::Duration;

fn main() {
    let problem = generate(&tiny_cluster(7));
    println!(
        "cluster: {} services / {} machines / {} edges",
        problem.num_services(),
        problem.num_machines(),
        problem.affinity_edges.len()
    );

    // start from the affinity-blind production placement
    let initial = Original.schedule(&problem, Deadline::none()).placement;

    let config = ExperimentConfig {
        ticks: 16,
        churn_fraction: 0.06,
        tracked_pairs: 3,
        cron: CronJobConfig {
            optimizer_budget: Duration::from_secs(2),
            collector: DataCollector {
                measurement_noise: 0.05,
            },
            ..Default::default()
        },
        seed: 1,
        ..Default::default()
    };
    let rasa = RasaPipeline::new(RasaConfig::default());
    let report = run_production_experiment(&problem, &initial, &rasa, &config);

    println!("\ntick-by-tick weighted latency (ms):");
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "tick", "with-RASA", "without", "collocated"
    );
    for t in 0..config.ticks {
        println!(
            "{:<6} {:>10.3} {:>12.3} {:>12.3}",
            t,
            report.weighted_latency_with[t],
            report.weighted_latency_without[t],
            report.weighted_latency_collocated[t]
        );
    }
    println!(
        "\nweighted latency improvement: {:.1}% (paper: 23.75%)",
        100.0 * report.latency_improvement()
    );
    println!(
        "weighted error-rate improvement: {:.1}% (paper: 24.09%)",
        100.0 * report.error_improvement()
    );
    println!(
        "migrations executed: {} (dry-runs on the other ticks); total moves: {}",
        report.migrations, report.total_moves
    );
    if let Some(max_frac) = report
        .moves_per_migration_fraction
        .iter()
        .cloned()
        .reduce(f64::max)
    {
        println!(
            "largest single migration touched {:.1}% of containers (paper: <5%)",
            100.0 * max_frac
        );
    }
}
