//! Compute and print an executable migration path (Algorithm 2): the
//! ordered delete/create command sets that move a running cluster to the
//! optimized mapping while honoring the 75%-alive SLA and resource limits.
//!
//! Run with: `cargo run -p rasa-core --example migration_planner`

use rasa_baselines::Original;
use rasa_core::{Deadline, MigrateConfig, RasaConfig, RasaPipeline};
use rasa_migrate::replay_plan;
use rasa_model::ContainerAssignment;
use rasa_solver::Scheduler;
use rasa_trace::{generate, tiny_cluster};

fn main() {
    let problem = generate(&tiny_cluster(3));

    // current state: the affinity-blind ORIGINAL placement
    let current_placement = Original.schedule(&problem, Deadline::none()).placement;
    let current = ContainerAssignment::materialize(&problem, &current_placement);

    // the Fig 3 flow: optimize, then plan the transition
    let pipeline = RasaPipeline::new(RasaConfig::default());
    let (run, plan) = pipeline
        .optimize_and_plan(
            &problem,
            &current,
            Deadline::none(),
            &MigrateConfig::default(),
        )
        .expect("migration plan");

    println!(
        "optimized schedule localizes {:.1}% of traffic (was {:.1}%)",
        100.0 * run.outcome.normalized_gained_affinity,
        100.0 * rasa_model::normalized_gained_affinity(&problem, &current_placement)
    );
    println!(
        "migration: {} containers move in {} sequential command sets\n",
        plan.total_moves(),
        plan.steps.len()
    );
    for (i, step) in plan.steps.iter().enumerate().take(6) {
        println!("step {i}:");
        for (c, m) in &step.deletes {
            println!("  (delete, {c}, {m})");
        }
        for (c, m) in &step.creates {
            println!("  (create, {c}, {m})");
        }
    }
    if plan.steps.len() > 6 {
        println!("  … {} more steps", plan.steps.len() - 6);
    }

    // prove the plan is executable
    replay_plan(&problem, &current, &run.outcome.placement, &plan, 0.75)
        .expect("plan verifies: SLA floor and capacities hold at every step");
    println!("\nplan verified: ≥75% of every service stayed alive; no machine overflowed.");
}
