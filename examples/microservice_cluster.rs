//! Compare RASA against the paper's baselines on a generated microservice
//! cluster — a miniature of the Fig 9 experiment.
//!
//! Run with: `cargo run -p rasa-core --release --example microservice_cluster`

use rasa_baselines::{Applsci19, K8sPlus, Original, Pop};
use rasa_core::{Deadline, RasaConfig, RasaPipeline};
use rasa_solver::Scheduler;
use rasa_trace::{generate, ClusterSpec};
use std::time::Duration;

fn main() {
    let spec = ClusterSpec {
        name: "demo".into(),
        services: 120,
        target_containers: 600,
        machines: 30,
        affinity_beta: 1.5,
        affinity_fraction: 0.6,
        edge_density: 3.0,
        machine_types: 3,
        seed: 42,
        ..Default::default()
    };
    let problem = generate(&spec);
    let stats = problem.stats();
    println!(
        "cluster: {} services, {} containers, {} machines, {} affinity edges",
        stats.services, stats.containers, stats.machines, stats.edges
    );

    let budget = Duration::from_secs(5);
    let rasa = RasaPipeline::new(RasaConfig::default());
    let k8s_plus = K8sPlus::default();
    let pop = Pop::default();
    let applsci = Applsci19::default();
    let algorithms: Vec<(&str, &dyn Scheduler)> = vec![
        ("ORIGINAL", &Original),
        ("K8s+", &k8s_plus),
        ("POP", &pop),
        ("APPLSCI19", &applsci),
        ("RASA", &rasa),
    ];

    println!(
        "\n{:<12} {:>16} {:>12} {:>10}",
        "algorithm", "gained affinity", "normalized", "time (s)"
    );
    for (name, alg) in algorithms {
        let out = alg.schedule(&problem, Deadline::after(budget));
        println!(
            "{:<12} {:>16.1} {:>11.1}% {:>10.2}",
            name,
            out.gained_affinity,
            100.0 * out.normalized_gained_affinity,
            out.elapsed.as_secs_f64()
        );
    }
}
