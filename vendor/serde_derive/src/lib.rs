//! Offline-compatible stand-in for `serde_derive`, generating impls of the
//! vendored `serde` crate's simplified `Serialize`/`Deserialize` traits
//! (value-tree based, not visitor based).
//!
//! The input is parsed directly from the `proc_macro::TokenStream` — no
//! `syn`/`quote`, which are unavailable offline. Supported shapes cover
//! everything this workspace derives:
//!   - structs with named fields
//!   - tuple structs (1-field newtypes serialize transparently)
//!   - fieldless enums (unit variants serialize as their name)
//!
//! `#[serde(...)]` attributes and generic parameters are not supported and
//! produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type.
enum Input {
    /// `struct Foo { a: A, b: B }` — field names in declaration order.
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Foo(A, B);` — field count.
    TupleStruct { name: String, arity: usize },
    /// `enum Foo { A, B }` — variant names.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Split a token sequence on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments (e.g. `BTreeMap<MachineId, u32>`) do not
/// split a field. Delimited groups are single `TokenTree`s, so only angle
/// brackets need explicit tracking.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().expect("non-empty").push(tt.clone());
    }
    out.retain(|chunk| !chunk.is_empty());
    out
}

/// Drop leading outer attributes (`#[...]`, including expanded `///` doc
/// comments) and a `pub` / `pub(...)` visibility prefix from a field or
/// variant chunk.
fn skip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match (chunk.get(i), chunk.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

fn parse_input(input: TokenStream, trait_name: &str) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // skip container attributes and visibility
    let body = skip_attrs_and_vis(&tokens);
    // reject #[serde(...)] anywhere in the raw input, up front
    for w in tokens.windows(2) {
        if let (TokenTree::Punct(p), TokenTree::Group(g)) = (&w[0], &w[1]) {
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    return Err(format!(
                        "derive({trait_name}): #[serde(...)] attributes are not supported by the vendored serde_derive"
                    ));
                }
            }
        }
    }
    let kind = match body.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("derive({trait_name}): expected `struct` or `enum`")),
    };
    i += 1;
    let name = match body.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("derive({trait_name}): expected type name")),
    };
    i += 1;
    if matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive({trait_name}) on `{name}`: generic types are not supported by the vendored serde_derive"
        ));
    }

    match kind.as_str() {
        "struct" => match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for chunk in split_top_level_commas(&inner) {
                    let chunk = skip_attrs_and_vis(&chunk);
                    match chunk.first() {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        _ => {
                            return Err(format!(
                                "derive({trait_name}) on `{name}`: unsupported field syntax"
                            ))
                        }
                    }
                }
                Ok(Input::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level_commas(&inner).len();
                Ok(Input::TupleStruct { name, arity })
            }
            _ => Err(format!(
                "derive({trait_name}) on `{name}`: unsupported struct body"
            )),
        },
        "enum" => match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for chunk in split_top_level_commas(&inner) {
                    let chunk = skip_attrs_and_vis(&chunk);
                    match (chunk.first(), chunk.get(1)) {
                        (Some(TokenTree::Ident(id)), rest) => {
                            if matches!(rest, Some(TokenTree::Group(_))) {
                                return Err(format!(
                                    "derive({trait_name}) on `{name}`: enum variants with data are not supported by the vendored serde_derive"
                                ));
                            }
                            variants.push(id.to_string());
                        }
                        _ => {
                            return Err(format!(
                                "derive({trait_name}) on `{name}`: unsupported variant syntax"
                            ))
                        }
                    }
                }
                Ok(Input::UnitEnum { name, variants })
            }
            _ => Err(format!(
                "derive({trait_name}) on `{name}`: unsupported enum body"
            )),
        },
        other => Err(format!(
            "derive({trait_name}): unsupported item kind `{other}`"
        )),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input, "Serialize") {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::Str({f:?}.to_string()), ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|k| format!("::serde::Serialize::serialize(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input, "Deserialize") {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let code = match parsed {
        Input::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::map_field(map, {f:?}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let map = v.as_map({name:?})?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let inits: String = (0..arity)
                .map(|k| {
                    format!("::serde::Deserialize::deserialize(::serde::seq_item(seq, {k}, {name:?})?)?,")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let seq = v.as_seq_len({arity}, {name:?})?;\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let s = v.as_str({name:?})?;\n\
                         match s {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(format!(\n\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated impl parses")
}
