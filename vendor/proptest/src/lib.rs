//! Offline-compatible stand-in for `proptest`, covering the surface this
//! workspace uses: the `proptest!` macro, `prop_assert!`-family macros,
//! `Strategy` with `prop_map`/`prop_flat_map`, range strategies over
//! primitives, tuple strategies, and `collection::vec`.
//!
//! Cases are generated from a seed derived deterministically from the test
//! name, so failures reproduce run-over-run. Unlike real proptest there is
//! no shrinking and no regression-file persistence: a failure reports the
//! case number and the assertion message.

/// Test-runner plumbing: config, RNG, error type, and the case loop.
pub mod test_runner {
    /// Error raised by a single generated case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be skipped (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator handed to strategies (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed via SplitMix64 expansion.
        pub fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x5EED;
            }
            TestRng { s }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a, used to derive a per-test base seed from its name.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
        h
    }

    /// Drive one property: generate cases until `config.cases` pass, panic
    /// on the first failure, tolerate a bounded number of rejections.
    pub fn run<F>(config: ProptestConfig, test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name.as_bytes());
        let max_rejects = (config.cases as u64).saturating_mul(16).max(256);
        let mut passed: u64 = 0;
        let mut rejected: u64 = 0;
        let mut case_index: u64 = 0;
        while passed < config.cases as u64 {
            let mut rng = TestRng::seed_from_u64(base ^ case_index.wrapping_mul(0x9E37_79B9));
            case_index += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{test_name}: too many rejected cases ({rejected}) — \
                             prop_assume! conditions are too strict"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case #{case_index} failed: {msg}");
                }
            }
        }
    }
}

/// Strategies: value generators composable with `prop_map`/`prop_flat_map`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Box the strategy (API-compatibility helper).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed dynamic strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

    trait StrategyObject {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObject for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy producing a fixed value (`proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + (self.end - self.start) * u
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    start + (end - start) * u
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`fn@vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// exclusive
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strategy),
                                __proptest_rng,
                            );
                        )*
                        let __proptest_outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                        __proptest_outcome
                    },
                );
            }
        )*
    };
}

/// Assert inside a property body; failure fails the current case with the
/// formatted message instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skip the current case unless `cond` holds (counts as rejected, not
/// failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for item in &v {
                prop_assert!(*item < 5);
            }
        }

        #[test]
        fn flat_map_and_assume_work(v in (1usize..4).prop_flat_map(|n| collection::vec(0.0f64..1.0, n))) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_property_panics_with_case_number() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "failing_property",
            |_rng| Err(TestCaseError::fail("forced failure")),
        );
    }
}
