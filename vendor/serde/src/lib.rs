//! Offline-compatible stand-in for `serde`, exposing the surface this
//! workspace uses: `derive(Serialize, Deserialize)` plus the trait bounds
//! `serde_json` needs.
//!
//! Instead of serde's visitor architecture, both traits go through a small
//! self-describing [`Value`] tree: `Serialize` renders into it,
//! `Deserialize` reads back out of it, and `serde_json` converts it to and
//! from JSON text. Struct fields become [`Value::Map`] entries with string
//! keys; ordered maps (`BTreeMap`) serialize as sequences of `[key, value]`
//! pairs so non-string keys (e.g. `MachineId`) round-trip exactly.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form — the interchange point between the
/// derive macros and `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    I64(i64),
    /// Unsigned integer (non-negative JSON integers).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// String-keyed record (JSON object) — struct fields in order.
    Map(Vec<(Value, Value)>),
}

/// Deserialization error: a message naming the type and the mismatch.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// The map entries, or an error naming `ty`.
    pub fn as_map(&self, ty: &str) -> Result<&[(Value, Value)], DeError> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(DeError::new(format!("{ty}: expected map, got {other:?}"))),
        }
    }

    /// The sequence elements, or an error naming `ty`.
    pub fn as_seq(&self, ty: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(DeError::new(format!("{ty}: expected seq, got {other:?}"))),
        }
    }

    /// A sequence of exactly `n` elements, or an error naming `ty`.
    pub fn as_seq_len(&self, n: usize, ty: &str) -> Result<&[Value], DeError> {
        let items = self.as_seq(ty)?;
        if items.len() == n {
            Ok(items)
        } else {
            Err(DeError::new(format!(
                "{ty}: expected {n} elements, got {}",
                items.len()
            )))
        }
    }

    /// The string contents, or an error naming `ty`.
    pub fn as_str(&self, ty: &str) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError::new(format!(
                "{ty}: expected string, got {other:?}"
            ))),
        }
    }
}

/// Look up a struct field by name in map entries (derive-macro helper).
pub fn map_field<'v>(
    entries: &'v [(Value, Value)],
    field: &str,
    ty: &str,
) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == field))
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("{ty}: missing field `{field}`")))
}

/// Index into a tuple-struct sequence (derive-macro helper).
pub fn seq_item<'v>(items: &'v [Value], index: usize, ty: &str) -> Result<&'v Value, DeError> {
    items
        .get(index)
        .ok_or_else(|| DeError::new(format!("{ty}: missing element {index}")))
}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Render into the interchange tree.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the interchange tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("bool: got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::new(format!(
                            concat!(stringify!($t), ": got {:?}"), other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!(concat!(stringify!($t), ": {} out of range"), raw))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let val = *self as i64;
                if val >= 0 { Value::U64(val as u64) } else { Value::I64(val) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u).map_err(|_| {
                        DeError::new(format!(concat!(stringify!($t), ": {} out of range"), u))
                    })?,
                    other => {
                        return Err(DeError::new(format!(
                            concat!(stringify!($t), ": got {:?}"), other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!(concat!(stringify!($t), ": {} out of range"), raw))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(DeError::new(format!(
                        concat!(stringify!($t), ": got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str("String").map(str::to_string)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq_len(N, "array")?;
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array: length changed during parse"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq_len(2, "pair")?;
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_seq_len(3, "triple")?;
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

// Ordered maps serialize as sequences of [key, value] pairs, keeping
// non-string keys (machine ids) exact instead of stringifying them.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq("BTreeMap")?
            .iter()
            .map(|pair| {
                let kv = pair.as_seq_len(2, "BTreeMap entry")?;
                Ok((K::deserialize(&kv[0])?, V::deserialize(&kv[1])?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::deserialize(&arr.serialize()).unwrap(), arr);
        let mut map = BTreeMap::new();
        map.insert(4u32, 9u32);
        map.insert(2u32, 1u32);
        assert_eq!(
            BTreeMap::<u32, u32>::deserialize(&map.serialize()).unwrap(),
            map
        );
    }
}
