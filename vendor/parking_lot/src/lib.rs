//! Offline-compatible stand-in for the `parking_lot` crate, implementing the
//! subset of its API this workspace uses on top of `std::sync`.
//!
//! Semantics match `parking_lot` where it differs from `std`: locks do not
//! poison — a panic while holding the lock leaves it usable for other
//! threads, which is exactly the behavior the fault-isolated solve layer
//! relies on when a solver worker panics mid-solve.

use std::sync::TryLockError;

/// A mutex that never poisons, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard(poisoned.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that never poisons, mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquire an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
