//! Offline-compatible stand-in for `criterion`, covering the API surface
//! this workspace's micro-benchmarks use: `Criterion::default()`,
//! `sample_size`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `criterion_group!`, and `criterion_main!`.
//!
//! Instead of criterion's statistical pipeline, each benchmark runs one
//! warm-up iteration plus a small fixed number of timed iterations and
//! prints mean time per iteration — enough to keep `cargo bench` and
//! bench-target builds under `cargo test` working and fast offline.

use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warm-up).
const MEASURE_ITERS: u32 = 3;

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch-size hint for [`Bencher::iter_batched`]; only API compatibility
/// here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Benchmark driver handed to the routine closure.
pub struct Bencher {
    iters: u32,
    /// Mean time per iteration, recorded for the summary line.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / self.iters;
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / self.iters;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the nominal sample size (kept for API compatibility; the stub
    /// always runs a small fixed number of iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: MEASURE_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name:<40} {:>12.3?}/iter", b.elapsed);
        self
    }
}

/// Declare a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u32;
        Criterion::default().bench_function("counter", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= MEASURE_ITERS);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut produced = 0u32;
        Criterion::default().sample_size(5).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    produced += 1;
                    vec![1u32; 8]
                },
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            );
        });
        assert!(produced >= MEASURE_ITERS);
    }
}
