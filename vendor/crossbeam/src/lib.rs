//! Offline-compatible stand-in for the `crossbeam` crate, implementing the
//! scoped-thread subset this workspace uses on top of `std::thread::scope`
//! (stable since Rust 1.63).
//!
//! The one semantic crossbeam adds over std scopes — a panicking worker is
//! reported as an `Err` from `scope()` instead of propagating the panic —
//! is preserved: every spawned closure runs under `catch_unwind` and the
//! first captured payload is returned as the error.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    /// Panic payload captured from a worker thread.
    pub type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// Scope handle passed to [`scope`]'s closure and to every spawned
    /// worker closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: Arc<Mutex<Vec<Payload>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope. The worker receives a reference
        /// to the scope so it can spawn further workers, like crossbeam's.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let panics = Arc::clone(&self.panics);
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope {
                    inner,
                    panics: Arc::clone(&panics),
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                    panics.lock().unwrap_or_else(|p| p.into_inner()).push(payload);
                }
            });
        }
    }

    /// Run `f` with a scope in which borrowing local state is allowed.
    /// Returns `Err` with the first captured panic payload if any worker
    /// panicked, mirroring `crossbeam::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: Arc<Mutex<Vec<Payload>>> = Arc::new(Mutex::new(Vec::new()));
        let collected = Arc::clone(&panics);
        let result = std::thread::scope(|s| {
            let scope = Scope { inner: s, panics };
            f(&scope)
        });
        let mut captured = std::mem::take(
            &mut *collected.lock().unwrap_or_else(|p| p.into_inner()),
        );
        if captured.is_empty() {
            Ok(result)
        } else {
            Err(captured.swap_remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers_and_collects_results() {
        let mut out = vec![0u32; 4];
        let slots: Vec<std::sync::Mutex<u32>> =
            (0..4).map(|_| std::sync::Mutex::new(0)).collect();
        crate::thread::scope(|s| {
            for i in 0..4 {
                let slots = &slots;
                s.spawn(move |_| {
                    *slots[i].lock().unwrap() = i as u32 * 10;
                });
            }
        })
        .unwrap();
        for (i, slot) in slots.iter().enumerate() {
            out[i] = *slot.lock().unwrap();
        }
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let result = crate::thread::scope(|s| {
            s.spawn(|_| panic!("worker dies"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn surviving_workers_finish_when_one_panics() {
        let done = std::sync::Mutex::new(0u32);
        let result = crate::thread::scope(|s| {
            for i in 0..4 {
                let done = &done;
                s.spawn(move |_| {
                    if i == 2 {
                        panic!("worker {i} dies");
                    }
                    *done.lock().unwrap() += 1;
                });
            }
        });
        assert!(result.is_err());
        assert_eq!(*done.lock().unwrap(), 3);
    }
}
