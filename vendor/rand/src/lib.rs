//! Offline-compatible stand-in for `rand` 0.8, implementing the API subset
//! this workspace uses: seedable deterministic generators (`StdRng`,
//! `SmallRng`), `Rng::gen_range` over integer and float ranges,
//! `Rng::gen_bool`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generators are xoshiro256** seeded via SplitMix64 — high-quality,
//! fast, and fully deterministic for a given seed, which is all the
//! reproducible experiments here require. Streams do **not** match the real
//! `rand` crate's output for the same seed.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a primitive type over its full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over half-open and inclusive intervals
/// (mirrors `rand::distributions::uniform::SampleUniform`). The blanket
/// [`SampleRange`] impls below unify `T` with the range's element type in
/// one step, which is what lets `x as f64 * rng.gen_range(0.5..1.8)` infer.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range samplable by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_in(rng, start, end, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Build from the system clock (non-reproducible convenience).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** core shared by [`StdRng`] and [`SmallRng`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_bytes(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // an all-zero state would be a fixed point
            if s.iter().all(|&w| w == 0) {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B];
            }
            Xoshiro256 { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug, PartialEq, Eq)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                fn next_u32(&mut self) -> u32 {
                    (self.0.step() >> 32) as u32
                }
                fn next_u64(&mut self) -> u64 {
                    self.0.step()
                }
            }

            impl SeedableRng for $name {
                type Seed = [u8; 32];
                fn from_seed(seed: [u8; 32]) -> Self {
                    $name(Xoshiro256::from_seed_bytes(seed))
                }
            }
        };
    }

    define_rng!(
        /// Deterministic seedable generator (stand-in for `rand::rngs::StdRng`).
        StdRng
    );
    define_rng!(
        /// Small fast generator (stand-in for `rand::rngs::SmallRng`).
        SmallRng
    );
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }
}
