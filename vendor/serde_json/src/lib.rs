//! Offline-compatible stand-in for `serde_json`: converts the vendored
//! `serde` crate's `Value` tree to and from JSON text.
//!
//! Encoding choices (mirrored by the vendored `serde` impls):
//! - structs are JSON objects with field-name keys;
//! - `BTreeMap` is a JSON array of `[key, value]` pairs (keys may be
//!   non-strings, e.g. machine ids);
//! - non-finite floats serialize as `null`, like `serde_json::Value` does.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
    /// 1-based line of the error position, when known (syntax errors only;
    /// shape/type errors discovered after parsing have no position).
    line: Option<usize>,
    /// 1-based column of the error position, when known.
    column: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: None,
            column: None,
        }
    }

    /// Attach a 1-based line/column position (overwrites any previous one).
    fn at(mut self, line: usize, column: usize) -> Self {
        self.line = Some(line);
        self.column = Some(column);
        self
    }

    /// 1-based line of the error, when the error is positional.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// 1-based column of the error, when the error is positional.
    pub fn column(&self) -> Option<usize> {
        self.column
    }
}

/// 1-based (line, column) of byte offset `pos` in `s`.
fn line_col(s: &str, pos: usize) -> (usize, usize) {
    let upto = &s.as_bytes()[..pos.min(s.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)?;
        if let (Some(l), Some(c)) = (self.line, self.column) {
            write!(f, " at line {l} column {c}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value of type `T` out of JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = match parser.parse_value() {
        Ok(v) => v,
        Err(e) => {
            let (l, c) = line_col(s, parser.pos);
            return Err(e.at(l, c));
        }
    };
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        let (l, c) = line_col(s, parser.pos);
        return Err(Error::new("trailing characters").at(l, c));
    }
    Ok(T::deserialize(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // add `.0` so integral floats re-parse as floats, like
                // serde_json does
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) =>
            write_bracketed(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, depth + 1)
            }),
        Value::Map(entries) =>
            write_bracketed(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                match k {
                    Value::Str(s) => write_string(s, out),
                    other => write_string(&to_plain(other), out),
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth + 1)
            }),
    }
}

/// Render a non-string map key as its compact JSON text (serde_json
/// stringifies integer keys the same way).
fn to_plain(v: &Value) -> String {
    let mut s = String::new();
    write_value(v, &mut s, None, 0);
    s
}

fn write_bracketed(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character (multi-byte safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u32>(&to_string(&42u32).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-5i64).unwrap()).unwrap(), -5);
        assert_eq!(
            from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(),
            1.25
        );
        assert_eq!(from_str::<f64>(&to_string(&3.0f64).unwrap()).unwrap(), 3.0);
        assert_eq!(
            from_str::<String>(&to_string("a\"b\\c\nd").unwrap()).unwrap(),
            "a\"b\\c\nd"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32], vec![2, 3]];
        assert_eq!(
            from_str::<Vec<Vec<u32>>>(&to_string(&v).unwrap()).unwrap(),
            v
        );
        let mut m = BTreeMap::new();
        m.insert(3u32, 1.5f64);
        assert_eq!(
            from_str::<BTreeMap<u32, f64>>(&to_string(&m).unwrap()).unwrap(),
            m
        );
        let opt: Vec<Option<u32>> = vec![Some(1), None];
        assert_eq!(
            from_str::<Vec<Option<u32>>>(&to_string(&opt).unwrap()).unwrap(),
            opt
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(
            from_str::<Vec<(u32, String)>>(&pretty).unwrap(),
            v
        );
    }
}
